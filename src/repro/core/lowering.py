"""Lowering pass: compile the AST once into a closure tree (the fast path).

The legacy dynamic stage (:mod:`repro.core.eval_expr` /
:mod:`repro.core.eval_stmt`) re-dispatches on every AST node at every step:
``getattr(self, f"_eval_{type(expr).__name__}")`` plus ``isinstance`` chains,
repeated for every loop iteration of the checked program.  This module removes
that overhead the way pre-compiled monitor representations do in runtime
verification: each node is resolved **once**, at compile time, into a Python
closure, and the closures call each other directly.

What is resolved at lowering time:

* **node-kind dispatch** — one dict lookup per node at lowering time
  (``_EXPR_LOWERERS`` / ``_STMT_LOWERERS`` dispatch tables) instead of an
  f-string + ``getattr`` per node per execution;
* **constant folding** — pure integer constant subexpressions are evaluated
  once, through the *same* arithmetic rules as the runtime
  (:class:`_FoldContext` reuses :class:`ExpressionEvaluatorMixin`), so a UB
  hit during folding (``INT_MAX + 1``, ``1/0``, an overflowing constant cast)
  becomes a closure that raises the identical catalogued error if and when
  the expression is actually reached;
* **identifier access** — the ``LValue`` (pointer + type) for an object
  binding is built once and memoized on the binding itself
  (:attr:`ObjectBinding.cached_lvalue`), instead of reconstructing the
  pointer dataclasses on every read;
* **evaluation order** — groups of unsequenced subexpressions are lowered
  into explicit interleaving points: under a fixed strategy the closure runs
  the pre-selected order straight-line, and under a scripted strategy
  (:mod:`repro.kframework.search`) it consults ``interp.operand_order`` at
  exactly the decision points the legacy walker has, so the search explores
  the same schedules over the lowered form.

Every undefinedness check still fires identically: the closures call the same
helper methods (``read_lvalue``, ``write_lvalue``, ``apply_binary``,
``_pointer_add``, ``call_function``, ...) that implement the paper's side
conditions, and the differential test
(``tests/core/test_lowering_differential.py``) holds the two engines to
verdict equality over the whole ubsuite and the Juliet sample.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.headers import BUILTIN_FUNCTIONS
from repro.core.config import CheckerOptions
from repro.core.conversions import convert, to_boolean
from repro.core.environment import (
    BreakSignal,
    ContinueSignal,
    FunctionBinding,
    GotoSignal,
    LValue,
    ReturnSignal,
)
from repro.core.eval_expr import ExpressionEvaluatorMixin
from repro.core.values import (
    CValue,
    FloatValue,
    IndeterminateValue,
    IntValue,
    PointerValue,
    StructValue,
    decode_value,
    encode_value,
)
from repro.errors import (
    ResourceLimitError,
    UBKind,
    UndefinedBehaviorError,
    UnsupportedFeatureError,
)
from repro.events import BranchEvent

#: A lowered expression: run it against an interpreter, get a value.
ExprThunk = Callable[["Interpreter"], CValue]  # noqa: F821  (runtime duck type)
#: A lowered statement: run it for its effect (may raise control signals).
StmtThunk = Callable[["Interpreter"], None]  # noqa: F821


class LoweringContext:
    """Compile-time state shared by all lowering functions of one unit.

    ``instrument=True`` compiles the *instrumented* variant of the IR: the
    closures emit execution events (branches, interleave choices) and route
    every load/store/arith through the generic interpreter helpers — which
    are the shared emission points — instead of the pre-derived plan fast
    paths.  Instrumented lowering never folds: folding elides the events of
    constant subtrees, and the golden-trace tests hold the instrumented
    lowered engine to *exact* event-sequence equality with the legacy
    walker.  The default (``instrument=False``) IR contains no emission
    code at all — this compile-time specialization is what keeps the
    null-probe fast path at PR-2 speed.
    """

    __slots__ = ("options", "profile", "max_steps", "fold", "folder", "instrument")

    def __init__(self, options: CheckerOptions, *, fold: bool = True,
                 instrument: bool = False) -> None:
        self.options = options
        self.profile = options.profile
        self.max_steps = options.max_steps
        self.fold = fold and not instrument
        self.instrument = instrument
        self.folder = _FoldContext(options)


class _FoldContext(ExpressionEvaluatorMixin):
    """A compile-time evaluator for constant expressions.

    It inherits the *actual* runtime arithmetic rules — ``apply_binary``,
    ``_arith_result``, ``_shift`` and friends from
    :class:`ExpressionEvaluatorMixin` only touch ``self.options`` /
    ``self.profile`` / ``self.pointer_registry`` — so whatever a constant
    expression would do at run time (including raising a catalogued
    :class:`UndefinedBehaviorError`) it does identically at fold time.
    """

    def __init__(self, options: CheckerOptions) -> None:
        self.options = options
        self.profile = options.profile
        self.pointer_registry: dict[int, PointerValue] = {}
        self.events = None  # folding is never observed by probes


#: Binary operators that are safe to fold over integer constants.  ``&&`` and
#: ``||`` are excluded: they sequence their operands (a fold would erase the
#: sequence point the legacy walker performs).
_FOLDABLE_BINARY_OPS = frozenset(
    ["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
     "==", "!=", "<", ">", "<=", ">="])

_FOLDABLE_UNARY_OPS = frozenset(["+", "-", "~", "!"])


class _FoldUB(Exception):
    """A constant expression turned out undefined while folding.

    Folding must not report the error at compile time — the expression might
    be dynamically unreachable (``if (0) { int x = 1/0; }`` is a defined
    program) — so the error's identity is captured and re-raised by the
    lowered closure if execution actually reaches the node.
    """

    def __init__(self, error: UndefinedBehaviorError) -> None:
        self.kind = error.kind
        self.message = error.message
        self.line = error.line
        super().__init__(error.message)


def _try_fold(expr: c_ast.Expression, L: LoweringContext) -> Optional[IntValue]:
    """Fold ``expr`` to an :class:`IntValue`, or return None if not constant.

    Raises :class:`_FoldUB` when the expression is constant but undefined
    under the current options (the UB-on-fold case).
    """
    folder = L.folder
    if isinstance(expr, c_ast.IntegerLiteral):
        return IntValue(expr.value, expr.type or ct.INT)
    if isinstance(expr, c_ast.CharLiteral):
        return IntValue(expr.value, ct.INT)
    if isinstance(expr, c_ast.SizeofType):
        try:
            return IntValue(ct.size_of(expr.type_name, L.profile), ct.ULONG)
        except ct.LayoutError as exc:
            raise _FoldUB(UndefinedBehaviorError(
                UBKind.INCOMPLETE_TYPE_OBJECT, f"sizeof: {exc}", line=expr.line))
    if isinstance(expr, c_ast.UnaryOp) and expr.op in _FOLDABLE_UNARY_OPS:
        operand = _try_fold(expr.operand, L)
        if operand is None:
            return None
        line = expr.line
        try:
            if expr.op == "!":
                return IntValue(
                    0 if to_boolean(operand, L.options, line=line) else 1, ct.INT)
            promoted = folder._promote(operand)
            assert isinstance(promoted, IntValue)
            if expr.op == "+":
                return promoted
            if expr.op == "-":
                return folder._arith_result(-promoted.value, promoted.type, line)
            return folder._arith_result(~promoted.value, promoted.type, line)
        except UndefinedBehaviorError as error:
            raise _FoldUB(error)
    if isinstance(expr, c_ast.BinaryOp) and expr.op in _FOLDABLE_BINARY_OPS:
        left = _try_fold(expr.left, L)
        if left is None:
            return None
        right = _try_fold(expr.right, L)
        if right is None:
            return None
        try:
            result = folder.apply_binary(expr.op, left, right, expr.line)
        except UndefinedBehaviorError as error:
            raise _FoldUB(error)
        except UnsupportedFeatureError:
            return None
        return result if isinstance(result, IntValue) else None
    if isinstance(expr, c_ast.Cast) and expr.target_type is not None \
            and expr.target_type.is_integer and not isinstance(expr.operand, c_ast.InitList):
        operand = _try_fold(expr.operand, L)
        if operand is None:
            return None
        try:
            converted = convert(operand, expr.target_type, L.options, line=expr.line,
                                explicit=True, pointer_registry=folder.pointer_registry)
        except UndefinedBehaviorError as error:
            raise _FoldUB(error)
        return converted if isinstance(converted, IntValue) else None
    return None


# ---------------------------------------------------------------------------
# Pre-selected operation plans
# ---------------------------------------------------------------------------
#
# The legacy walker re-derives, on every single evaluation, facts that are a
# pure function of the operand *types*: the common type of a binary operation,
# the representable range it overflows at, which conversion applies, how many
# bytes an identifier load moves.  The plans below compute those facts once
# per (site, type) pair and capture them in a specialized closure.  Plans are
# built from the same :mod:`repro.cfront.ctypes` rules the generic helpers
# use, and every raise reproduces the generic helper's error kind and message
# verbatim — the differential test suite holds the two to verdict equality.

#: Types whose equality/hash is structural (no nominal tag): safe keys for
#: process-wide plan caches.
_FLAT_INT_TYPES = (ct.IntType, ct.BoolType)


class IntTypeFacts:
    """Pre-derived representation facts of one flat integer type.

    This is the single source of truth for "what can this type hold":
    the representable range, the bit width, the wrap mask, and the sign
    threshold.  The concrete plans below capture these numbers in
    specialized closures; the abstract evaluator (:mod:`repro.symbolic`)
    consumes the *same* facts objects for its interval containment and
    emptiness tests, so a concrete overflow check and the symbolic proof
    of its absence can never disagree about the bounds.
    """

    __slots__ = ("type", "lo", "hi", "bits", "signed", "mask", "half")

    def __init__(self, result_type: ct.CType, lo: int, hi: int, bits: int,
                 signed: bool, mask: int, half: int) -> None:
        self.type = result_type
        self.lo = lo
        self.hi = hi
        self.bits = bits
        self.signed = signed
        self.mask = mask
        self.half = half

    def wrap(self, value: int) -> int:
        """``conversions._int_to_int`` on the value alone (no IntValue)."""
        if self.lo <= value <= self.hi:
            return value
        wrapped = value & self.mask
        if self.signed and wrapped >= self.half:
            wrapped -= 1 << self.bits
        return wrapped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IntTypeFacts({self.type}, [{self.lo}, {self.hi}], "
                f"bits={self.bits}, signed={self.signed})")


_INT_TYPE_FACTS: dict = {}


def int_type_facts(target: ct.CType,
                   profile: ct.ImplementationProfile) -> Optional[IntTypeFacts]:
    """The :class:`IntTypeFacts` of a flat integer type (process-wide memo).

    None for anything that is not a plain :class:`ct.IntType` (records,
    pointers, floats, ``_Bool`` — the latter converts by ``!= 0``, not by
    wrapping, so it has no wrap facts).
    """
    if not isinstance(target, ct.IntType) or isinstance(target, ct.BoolType):
        return None
    key = (target, profile)
    facts = _INT_TYPE_FACTS.get(key)
    if facts is None and key not in _INT_TYPE_FACTS:
        lo, hi = ct.integer_range(target, profile)
        bits = ct.integer_bits(target, profile)
        signed = ct.is_signed_type(target, profile)
        facts = IntTypeFacts(target.unqualified(), lo, hi, bits, signed,
                             (1 << bits) - 1, 1 << (bits - 1))
        if len(_INT_TYPE_FACTS) < 65536:
            _INT_TYPE_FACTS[key] = facts
    return facts


class IntBinaryFacts:
    """Pre-derived facts of one integer binary-operation site.

    ``common`` carries the usual-arithmetic-conversions result type's
    representation facts; ``check_arithmetic`` whether the site's overflow /
    shift / division side conditions are armed.  Shared verbatim between the
    concrete closure plans and the abstract transfer functions.
    """

    __slots__ = ("op", "common", "check_arithmetic", "line")

    def __init__(self, op: str, common: IntTypeFacts, check_arithmetic: bool,
                 line: int) -> None:
        self.op = op
        self.common = common
        self.check_arithmetic = check_arithmetic
        self.line = line


def int_binary_facts(op: str, left_type: ct.CType, right_type: ct.CType,
                     options: CheckerOptions,
                     line: int = 0) -> Optional[IntBinaryFacts]:
    """Facts of a binary site over two flat integer operand types, or None.

    None exactly when :func:`_int_binary_plan` would decline the site:
    non-flat operand types, or a common type that is not a plain integer
    type — those stay on the generic checked path (concretely) and are
    INCONCLUSIVE territory (symbolically).
    """
    if not isinstance(left_type, _FLAT_INT_TYPES) or \
            not isinstance(right_type, _FLAT_INT_TYPES):
        return None
    profile = options.profile
    try:
        common = ct.usual_arithmetic_conversions(left_type, right_type, profile)
    except (TypeError, AssertionError):
        return None
    facts = int_type_facts(common, profile)
    if facts is None:
        return None
    return IntBinaryFacts(op, facts, options.check_arithmetic, line)


_INT_CONV_PLANS: dict = {}


def _int_conversion_plan(target: ct.CType, profile: ct.ImplementationProfile):
    """A ``int -> IntValue`` closure replicating ``conversions._int_to_int``
    for a fixed integer target type, or None if the target is not planable."""
    if not isinstance(target, _FLAT_INT_TYPES):
        return None
    key = (target, profile)
    plan = _INT_CONV_PLANS.get(key)
    if plan is None and key not in _INT_CONV_PLANS:
        if isinstance(target, ct.BoolType):
            def plan(value: int) -> IntValue:
                return IntValue(1 if value != 0 else 0, ct.BOOL)
        else:
            facts = int_type_facts(target, profile)
            lo, hi = facts.lo, facts.hi
            bits, signed = facts.bits, facts.signed
            mask, half = facts.mask, facts.half
            result_type = facts.type

            def plan(value: int) -> IntValue:
                if lo <= value <= hi:
                    return IntValue(value, result_type)
                wrapped = value & mask
                if signed and wrapped >= half:
                    wrapped -= 1 << bits
                return IntValue(wrapped, result_type)
        if len(_INT_CONV_PLANS) < 65536:
            _INT_CONV_PLANS[key] = plan
    return plan


_RELATIONAL_OPS = frozenset(["<", ">", "<=", ">="])
_EQUALITY_OPS = frozenset(["==", "!="])

_INT_ZERO = IntValue(0, ct.INT)
_INT_ONE = IntValue(1, ct.INT)


def _int_binary_plan(op: str, left_type: ct.CType, right_type: ct.CType,
                     options: CheckerOptions, line: int):
    """An ``(int, int) -> IntValue`` closure replicating ``apply_binary`` for
    two fixed integer operand types, or None when not planable.

    Only built for flat integer operand types whose common type is an
    integer type; everything else (floats, pointers, enums, indeterminate
    operands) stays on the generic checked path.
    """
    facts = int_binary_facts(op, left_type, right_type, options, line)
    if facts is None:
        return None
    common_facts = facts.common
    common = common_facts.type
    lo, hi = common_facts.lo, common_facts.hi
    bits, signed = common_facts.bits, common_facts.signed
    mask, half = common_facts.mask, common_facts.half
    check_arithmetic = facts.check_arithmetic

    def conv(value: int) -> int:
        # _int_to_int on the way to the common type (value only).
        if lo <= value <= hi:
            return value
        wrapped = value & mask
        if signed and wrapped >= half:
            wrapped -= 1 << bits
        return wrapped

    def arith_result(value: int, overflow_possible: bool = True) -> IntValue:
        # Replicates ExpressionEvaluatorMixin._arith_result for `common`.
        if lo <= value <= hi:
            return IntValue(value, common)
        if signed:
            if check_arithmetic and overflow_possible:
                raise UndefinedBehaviorError(
                    UBKind.SIGNED_OVERFLOW,
                    f"Signed integer overflow: result {value} does not fit in {common}.",
                    line=line)
            wrapped = value & mask
            if wrapped >= half:
                wrapped -= 1 << bits
            return IntValue(wrapped, common)
        return IntValue(value & mask, common)

    if op in _RELATIONAL_OPS or op in _EQUALITY_OPS:
        comparator = {"<": operator.lt, ">": operator.gt, "<=": operator.le,
                      ">=": operator.ge, "==": operator.eq, "!=": operator.ne}[op]

        def compare(a: int, b: int) -> IntValue:
            return _INT_ONE if comparator(conv(a), conv(b)) else _INT_ZERO
        return compare

    if op == "+":
        def add(a: int, b: int) -> IntValue:
            return arith_result(conv(a) + conv(b))
        return add
    if op == "-":
        def sub(a: int, b: int) -> IntValue:
            return arith_result(conv(a) - conv(b))
        return sub
    if op == "*":
        def mul(a: int, b: int) -> IntValue:
            return arith_result(conv(a) * conv(b))
        return mul
    if op in ("/", "%"):
        is_div = op == "/"

        def divmod_(a: int, b: int) -> IntValue:
            a = conv(a)
            b = conv(b)
            if b == 0:
                if check_arithmetic:
                    raise UndefinedBehaviorError(
                        UBKind.DIVISION_BY_ZERO, "Division or modulus by zero.",
                        line=line)
                return IntValue(0, common)
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            if is_div:
                return arith_result(quotient)
            return arith_result(a - quotient * b)
        return divmod_
    if op in ("&", "|", "^"):
        bitop = {"&": operator.and_, "|": operator.or_, "^": operator.xor}[op]

        def bitwise(a: int, b: int) -> IntValue:
            return arith_result(bitop(conv(a), conv(b)), overflow_possible=False)
        return bitwise
    if op in ("<<", ">>"):
        is_left = op == "<<"

        def shift(a: int, b: int) -> IntValue:
            a = conv(a)
            b = conv(b)
            if check_arithmetic and (b < 0 or b >= bits):
                raise UndefinedBehaviorError(
                    UBKind.SHIFT_TOO_FAR,
                    f"Shift amount {b} is negative or >= width of the type "
                    f"({bits} bits).", line=line)
            b = max(0, min(b, bits - 1))
            if is_left:
                if check_arithmetic and signed and a < 0:
                    raise UndefinedBehaviorError(
                        UBKind.SHIFT_NEGATIVE, "Left shift of a negative value.",
                        line=line)
                result = a << b
                if signed and check_arithmetic and not lo <= result <= hi:
                    raise UndefinedBehaviorError(
                        UBKind.SHIFT_OVERFLOW,
                        f"Left shift of {a} by {b} overflows {common}.", line=line)
                return arith_result(result, overflow_possible=not signed)
            # Arithmetic right shift, as in the generic rule.
            return IntValue(a >> b, common)
        return shift
    return None


class _BinaryPlanCache:
    """Per-site cache of integer binary-op plans, keyed by operand types.

    ``disabled=True`` (instrumented lowering) always answers None, keeping
    every operation on the generic ``apply_binary`` path whose checks emit
    the arith-check / UB events.
    """

    __slots__ = ("op", "options", "line", "plans", "disabled")

    def __init__(self, op: str, options: CheckerOptions, line: int,
                 disabled: bool = False) -> None:
        self.op = op
        self.options = options
        self.line = line
        self.plans: dict = {}
        self.disabled = disabled

    def lookup(self, left_type: ct.CType, right_type: ct.CType):
        if self.disabled:
            return None
        key = (left_type, right_type)
        plans = self.plans
        if key in plans:
            return plans[key]
        plan = _int_binary_plan(self.op, left_type, right_type, self.options, self.line)
        plans[key] = plan
        return plan


# -- lvalue access plans ----------------------------------------------------
#
# For loads/stores through computed lvalues (subscripts, members, derefs) the
# pointer offset varies but the lvalue *type* at a given site almost never
# does.  A per-site cache keyed by lvalue type pre-derives the access size,
# alignment, and check applicability once; a site-local cache is safe for any
# type (within one translation unit a tag means one record type).

class _AccessPlanCache:
    """Per-site cache of (size, align, uninit-check, const) per lvalue type.

    ``disabled=True`` (instrumented lowering) always answers None, keeping
    every access on the generic ``read_lvalue``/``write_lvalue`` path whose
    lvalue-conversion events the probes observe.
    """

    __slots__ = ("plans", "disabled")

    def __init__(self, disabled: bool = False) -> None:
        self.plans: dict = {}
        self.disabled = disabled

    def plan_for(self, ltype: ct.CType, profile: ct.ImplementationProfile):
        if self.disabled:
            return None
        plans = self.plans
        if ltype in plans:
            return plans[ltype]
        if isinstance(ltype, (ct.ArrayType, ct.FunctionType)):
            plan = None    # decay / function designator: generic path
        elif ltype.is_record:
            # Whole-record accesses stay on read_lvalue/write_lvalue: the
            # generic store attaches copy provenance and runs the
            # overlapping-assignment check (§6.5.16.1:3).
            plan = None
        else:
            try:
                size = ct.size_of(ltype, profile)
            except ct.LayoutError:
                plan = None  # incomplete type: generic path raises identically
            else:
                try:
                    align = ct.align_of(ltype, profile)
                except ct.LayoutError:
                    align = 1  # check_alignment swallows LayoutError
                uninit = ltype.is_scalar and not ct.is_character_type(ltype)
                plan = (size, align, uninit, ltype.const,
                        _int_conversion_plan(ltype, profile))
        plans[ltype] = plan
        return plan


def _read_with_plan(interp, lvalue: LValue, plan, line: int) -> CValue:
    """Replicates ``read_lvalue`` with the type facts pre-derived."""
    size, align, uninit, _const, _intconv = plan
    pointer = lvalue.pointer
    ltype = lvalue.type
    if align > 1 and interp.options.check_memory and pointer.offset % align != 0:
        raise UndefinedBehaviorError(
            UBKind.UNALIGNED_ACCESS,
            f"Access at offset {pointer.offset} is not aligned to {align} bytes "
            f"for type {ltype}.", line=line)
    data = interp.memory.read_bytes(pointer, size, line=line, lvalue_type=ltype)
    value = decode_value(data, ltype, interp.profile)
    if (uninit and interp.options.check_uninitialized
            and isinstance(value, IndeterminateValue)
            and any(type(b).__name__ == "UnknownByte" for b in data)):
        raise UndefinedBehaviorError(
            UBKind.UNINITIALIZED_READ,
            f"Read of an uninitialized (indeterminate) value of type {ltype}.",
            line=line)
    return value


def _write_with_plan(interp, lvalue: LValue, plan, value: CValue, line: int) -> None:
    """Replicates ``write_lvalue`` with the type facts pre-derived."""
    _size, align, _uninit, is_const, _intconv = plan
    ltype = lvalue.type
    if is_const and interp.options.check_const:
        raise UndefinedBehaviorError(
            UBKind.CONST_VIOLATION,
            "Assignment to an lvalue with const-qualified type.", line=line)
    pointer = lvalue.pointer
    if align > 1 and interp.options.check_memory and pointer.offset % align != 0:
        raise UndefinedBehaviorError(
            UBKind.UNALIGNED_ACCESS,
            f"Access at offset {pointer.offset} is not aligned to {align} bytes "
            f"for type {ltype}.", line=line)
    data = encode_value(value, ltype, interp.profile)
    interp.memory.write_bytes(pointer, data, line=line, lvalue_type=ltype)


# -- binding access plans ---------------------------------------------------
#
# Loads/stores through a plain identifier always hit offset 0 of the bound
# object, so the alignment check can never fire; what remains is the size of
# the access, whether the uninitialized-read side condition applies, and the
# const-ness of the lvalue — all fixed per binding.

_PLAN_ARRAY = 0       # array-to-pointer decay: return the cached pointer
_PLAN_SCALAR = 1      # sized load/store with pre-derived check flags
_PLAN_GENERIC = 2     # anything exotic: defer to the generic helpers


def _binding_access_plan(binding, profile: ct.ImplementationProfile):
    plan = binding.access_plan
    if plan is None:
        btype = binding.type
        if isinstance(btype, ct.ArrayType):
            decayed = PointerValue(base=binding.base, offset=0,
                                   type=ct.PointerType(pointee=btype.element))
            plan = (_PLAN_ARRAY, decayed, None, False, False)
        elif isinstance(btype, ct.FunctionType):
            plan = (_PLAN_GENERIC, None, None, False, False)
        elif btype.is_record:
            # Generic path for whole-record loads/stores: provenance and the
            # overlapping-assignment check live in read/write_lvalue.
            plan = (_PLAN_GENERIC, None, None, False, False)
        else:
            try:
                size = ct.size_of(btype, profile)
            except ct.LayoutError:
                plan = (_PLAN_GENERIC, None, None, False, False)
            else:
                uninit_check = btype.is_scalar and not ct.is_character_type(btype)
                plan = (_PLAN_SCALAR, size, _int_conversion_plan(btype, profile),
                        uninit_check, btype.const)
        binding.access_plan = plan
    return plan


def _read_binding(interp, binding, line: int) -> CValue:
    """Replicates ``read_lvalue`` for a whole-object identifier lvalue."""
    plan = binding.access_plan
    if plan is None:
        plan = _binding_access_plan(binding, interp.profile)
    tag = plan[0]
    if tag == _PLAN_SCALAR:
        btype = binding.type
        lvalue = binding.cached_lvalue
        if lvalue is None:
            lvalue = _binding_lvalue(binding)
        data = interp.memory.read_bytes(lvalue.pointer, plan[1], line=line,
                                        lvalue_type=btype)
        value = decode_value(data, btype, interp.profile)
        if (plan[3] and interp.options.check_uninitialized
                and isinstance(value, IndeterminateValue)
                and any(type(b).__name__ == "UnknownByte" for b in data)):
            raise UndefinedBehaviorError(
                UBKind.UNINITIALIZED_READ,
                f"Read of an uninitialized (indeterminate) value of type {btype}.",
                line=line)
        return value
    if tag == _PLAN_ARRAY:
        return plan[1]
    return interp.read_lvalue(_binding_lvalue(binding), line)


def _write_binding(interp, binding, value: CValue, line: int) -> None:
    """Replicates ``write_lvalue`` for a whole-object identifier lvalue."""
    plan = binding.access_plan
    if plan is None:
        plan = _binding_access_plan(binding, interp.profile)
    if plan[0] != _PLAN_SCALAR:
        interp.write_lvalue(_binding_lvalue(binding), value, line)
        return
    btype = binding.type
    if plan[4] and interp.options.check_const:
        raise UndefinedBehaviorError(
            UBKind.CONST_VIOLATION,
            "Assignment to an lvalue with const-qualified type.", line=line)
    lvalue = binding.cached_lvalue
    if lvalue is None:
        lvalue = _binding_lvalue(binding)
    data = encode_value(value, btype, interp.profile)
    interp.memory.write_bytes(lvalue.pointer, data, line=line, lvalue_type=btype)


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------
#
# Every lowered closure begins with the same prologue the legacy walker's
# ``Interpreter.step`` performs — inlined, because a per-node method call is
# precisely the overhead this pass removes.  A *folded* subtree accounts for
# one step (its root), so loops over folded expressions still make progress
# toward the ``max_steps`` resource limit.

def lower_expr(expr: c_ast.Expression, L: LoweringContext) -> ExprThunk:
    """Lower an expression to a value-producing closure."""
    if L.fold:
        try:
            folded = _try_fold(expr, L)
        except _FoldUB as fold_error:
            return _lower_fold_error(expr, fold_error, L)
        if folded is not None:
            return _lower_constant(expr, folded, L)
    lowerer = _EXPR_LOWERERS.get(type(expr))
    if lowerer is None:
        return _lower_unsupported_expr(expr, L)
    return lowerer(expr, L)


def _subtree_step_cost(expr: c_ast.Expression) -> int:
    """Steps the legacy walker charges for evaluating a constant subtree.

    The walker steps once per node it visits, and for the foldable node
    kinds it visits every node of the subtree (no short-circuiting), so a
    folded closure charges the subtree's node count — keeping the step
    accounting, and hence the ``max_steps`` resource verdicts, aligned
    between the two engines.  (``sizeof(type)`` carries no children in the
    AST, so its count is naturally 1.)
    """
    return sum(1 for _ in c_ast.walk(expr))


def lower_lvalue(expr: c_ast.Expression, L: LoweringContext) -> Callable:
    """Lower an expression to an :class:`LValue`-producing closure."""
    lowerer = _LVALUE_LOWERERS.get(type(expr))
    if lowerer is None:
        return _lower_not_an_lvalue(expr, L)
    return lowerer(expr, L)


def _lower_constant(expr: c_ast.Expression, value: IntValue,
                    L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps
    step_cost = _subtree_step_cost(expr)

    def run(interp) -> CValue:
        interp._steps += step_cost
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        return value
    return run


def _lower_fold_error(expr: c_ast.Expression, fold_error: _FoldUB,
                      L: LoweringContext) -> ExprThunk:
    """A constant expression that is undefined: raise when (if) reached.

    A fresh error object is raised per execution — the interpreter annotates
    errors in place with the current function, so sharing one instance across
    runs would leak one run's location into the next.
    """
    line = expr.line
    max_steps = L.max_steps
    step_cost = _subtree_step_cost(expr)
    kind, message, err_line = fold_error.kind, fold_error.message, fold_error.line

    def run(interp) -> CValue:
        interp._steps += step_cost
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise UndefinedBehaviorError(kind, message, line=err_line)
    return run


def _lower_unsupported_expr(expr: c_ast.Expression, L: LoweringContext) -> ExprThunk:
    name = type(expr).__name__
    line = expr.line
    max_steps = L.max_steps

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise UnsupportedFeatureError(f"cannot evaluate {name}")
    return run


def _lower_IntegerLiteral(expr: c_ast.IntegerLiteral, L: LoweringContext) -> ExprThunk:
    return _lower_constant(expr, IntValue(expr.value, expr.type or ct.INT), L)


def _lower_FloatLiteral(expr: c_ast.FloatLiteral, L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps
    value = FloatValue(expr.value, expr.type or ct.DOUBLE)

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        return value
    return run


def _lower_CharLiteral(expr: c_ast.CharLiteral, L: LoweringContext) -> ExprThunk:
    return _lower_constant(expr, IntValue(expr.value, ct.INT), L)


def _lower_StringLiteral(expr: c_ast.StringLiteral, L: LoweringContext) -> ExprThunk:
    text = expr.value
    line = expr.line
    max_steps = L.max_steps

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        pointer, array_type = interp.string_literal_object(text)
        return pointer.with_type(ct.PointerType(pointee=array_type.element))
    return run


def _lookup_binding(interp, name: str, line: int):
    """Inlined :meth:`Interpreter.lookup_binding` (the fast path's hot lookup)."""
    frames = interp.frames
    if frames:
        binding = frames[-1].lookup(name)
        if binding is not None:
            return binding
    binding = interp.global_bindings.get(name)
    if binding is not None:
        return binding
    binding = interp.function_bindings.get(name)
    if binding is not None:
        return binding
    raise UndefinedBehaviorError(
        UBKind.BAD_FUNCTION_CALL, f"Use of undeclared identifier '{name}'.", line=line)


def _binding_lvalue(binding) -> LValue:
    """The (memoized) lvalue designating an object binding."""
    lvalue = binding.cached_lvalue
    if lvalue is None:
        lvalue = LValue(
            pointer=PointerValue(base=binding.base, offset=0,
                                 type=ct.PointerType(pointee=binding.type)),
            type=binding.type)
        binding.cached_lvalue = lvalue
    return lvalue


def _lower_object_binding(expr: c_ast.Identifier, L: LoweringContext):
    """A closure resolving an identifier to its object binding.

    This is ``eval_lvalue``'s Identifier case minus the LValue construction:
    same step accounting, same errors — used by the specialized assignment
    and increment/decrement closures that operate on bindings directly.
    """
    name = expr.name
    line = expr.line
    max_steps = L.max_steps

    def resolve(interp):
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        binding = _lookup_binding(interp, name, line)
        if isinstance(binding, FunctionBinding):
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                f"Function designator '{name}' used where an object is required.",
                line=line)
        return binding
    return resolve


def _lower_Identifier(expr: c_ast.Identifier, L: LoweringContext) -> ExprThunk:
    name = expr.name
    line = expr.line
    max_steps = L.max_steps

    if L.instrument:
        # Instrumented: load through the generic read_lvalue so the
        # lvalue-conversion event fires exactly where the walker's does.
        def run_instr(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            binding = _lookup_binding(interp, name, line)
            if isinstance(binding, FunctionBinding):
                return PointerValue(base=None, offset=0, function=binding.name,
                                    type=ct.PointerType(pointee=binding.type))
            return interp.read_lvalue(_binding_lvalue(binding), line)
        return run_instr

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        binding = _lookup_binding(interp, name, line)
        if isinstance(binding, FunctionBinding):
            return PointerValue(base=None, offset=0, function=binding.name,
                                type=ct.PointerType(pointee=binding.type))
        return _read_binding(interp, binding, line)
    return run


def _lower_UnaryOp(expr: c_ast.UnaryOp, L: LoweringContext) -> ExprThunk:
    op = expr.op
    line = expr.line
    max_steps = L.max_steps

    if op == "&":
        operand_lv = lower_lvalue(expr.operand, L)

        def run_addr(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            lvalue = operand_lv(interp)
            return PointerValue(base=lvalue.base, offset=lvalue.offset,
                                type=ct.PointerType(pointee=lvalue.type),
                                function=lvalue.pointer.function)
        return run_addr

    if op == "*":
        operand_run = lower_expr(expr.operand, L)
        deref_plans = _AccessPlanCache(L.instrument)

        def run_deref(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            value = operand_run(interp)
            lvalue = interp._deref_to_lvalue(value, line)
            plan = deref_plans.plan_for(lvalue.type, interp.profile)
            if plan is not None:
                return _read_with_plan(interp, lvalue, plan, line)
            return interp.read_lvalue(lvalue, line)
        return run_deref

    if op == "sizeof":
        operand_node = expr.operand

        def run_sizeof(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            operand_type = interp.type_of_expression(operand_node)
            try:
                size = ct.size_of(operand_type, interp.profile)
            except ct.LayoutError as exc:
                raise UndefinedBehaviorError(
                    UBKind.INCOMPLETE_TYPE_OBJECT,
                    f"sizeof applied to {operand_type}: {exc}", line=line)
            return IntValue(size, ct.ULONG)
        return run_sizeof

    if op in ("++pre", "--pre", "++post", "--post"):
        delta = 1 if op.startswith("++") else -1
        is_post = op.endswith("post")

        if isinstance(expr.operand, c_ast.Identifier) and not L.instrument:
            resolve_binding = _lower_object_binding(expr.operand, L)

            def run_incdec_ident(interp) -> CValue:
                interp._steps += 1
                if interp._steps > max_steps:
                    raise ResourceLimitError(f"execution exceeded {max_steps} steps")
                if line:
                    interp.current_line = line
                binding = resolve_binding(interp)
                old = _read_binding(interp, binding, line)
                access = binding.access_plan
                intconv = (access[2] if access is not None
                           and access[0] == _PLAN_SCALAR else None)
                if isinstance(old, PointerValue):
                    new = interp._pointer_add(old, delta, line)
                elif isinstance(old, FloatValue):
                    new = FloatValue(old.value + delta, old.type)
                else:
                    old_int = interp._require_arithmetic(old, line, "operand of ++/--")
                    promoted = interp._promote(old_int)
                    assert isinstance(promoted, IntValue)
                    result = interp._arith_result(promoted.value + delta,
                                                  promoted.type, line)
                    if intconv is not None:
                        # The plan conversion is idempotent, so one application
                        # equals the legacy walker's convert-then-convert.
                        converted_plan = intconv(result.value)
                        _write_binding(interp, binding, converted_plan, line)
                        return old if is_post else converted_plan
                    new = convert(result, binding.type, interp.options, line=line,
                                  pointer_registry=interp.pointer_registry)
                if isinstance(new, (PointerValue, FloatValue)):
                    converted_new: CValue = new
                else:
                    converted_new = convert(new, binding.type, interp.options,
                                            line=line,
                                            pointer_registry=interp.pointer_registry)
                _write_binding(interp, binding, converted_new, line)
                return old if is_post else converted_new
            return run_incdec_ident

        operand_lv = lower_lvalue(expr.operand, L)

        def run_incdec(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            lvalue = operand_lv(interp)
            old = interp.read_lvalue(lvalue, line)
            if isinstance(old, PointerValue):
                new = interp._pointer_add(old, delta, line)
            elif isinstance(old, FloatValue):
                new = FloatValue(old.value + delta, old.type)
            else:
                old_int = interp._require_arithmetic(old, line, "operand of ++/--")
                promoted = interp._promote(old_int)
                assert isinstance(promoted, IntValue)
                result = interp._arith_result(promoted.value + delta, promoted.type, line)
                new = convert(result, lvalue.type, interp.options, line=line,
                              pointer_registry=interp.pointer_registry)
            converted_new = new if isinstance(new, (PointerValue, FloatValue)) else convert(
                new, lvalue.type, interp.options, line=line,
                pointer_registry=interp.pointer_registry)
            interp.write_lvalue(lvalue, converted_new, line)
            return old if is_post else converted_new
        return run_incdec

    operand_run = lower_expr(expr.operand, L)

    if op == "!":
        def run_not(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            value = operand_run(interp)
            return IntValue(
                0 if to_boolean(value, interp.options, line=line) else 1, ct.INT)
        return run_not

    if op in ("+", "-", "~"):
        def run_arith(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            value = operand_run(interp)
            value = interp._require_arithmetic(value, line, f"operand of unary {op}")
            if op == "+":
                return interp._promote(value)
            if op == "-":
                promoted = interp._promote(value)
                if isinstance(promoted, FloatValue):
                    return FloatValue(-promoted.value, promoted.type)
                return interp._arith_result(-promoted.value, promoted.type, line)
            promoted = interp._promote(value)
            if not isinstance(promoted, IntValue):
                raise UndefinedBehaviorError(
                    UBKind.BAD_FUNCTION_CALL,
                    "Operand of '~' must have integer type.", line=line)
            return interp._arith_result(~promoted.value, promoted.type, line)
        return run_arith

    def run_unsupported(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise UnsupportedFeatureError(f"unary operator {op!r}")
    return run_unsupported


def _lower_SizeofType(expr: c_ast.SizeofType, L: LoweringContext) -> ExprThunk:
    # Normally folded; this path only runs with folding disabled.
    type_name = expr.type_name
    line = expr.line
    max_steps = L.max_steps

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        try:
            size = ct.size_of(type_name, interp.profile)
        except ct.LayoutError as exc:
            raise UndefinedBehaviorError(
                UBKind.INCOMPLETE_TYPE_OBJECT, f"sizeof: {exc}", line=line)
        return IntValue(size, ct.ULONG)
    return run


def _lower_Cast(expr: c_ast.Cast, L: LoweringContext) -> ExprThunk:
    target = expr.target_type
    line = expr.line
    max_steps = L.max_steps

    if isinstance(expr.operand, c_ast.InitList):
        operand_node = expr.operand

        def run_compound_literal(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            return interp.build_compound_literal(target, operand_node, line)
        return run_compound_literal

    operand_run = lower_expr(expr.operand, L)

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        value = operand_run(interp)
        return convert(value, target, interp.options, line=line, explicit=True,
                       pointer_registry=interp.pointer_registry)
    return run


def _run_unsequenced_pair(interp, site, run0, run1):
    """Evaluate two unsequenced operands in the strategy-chosen order.

    Only reached when the interpreter's order is not pre-resolved (scripted
    strategies and the evaluation-order search).  The ``note_operand`` /
    ``note_group_end`` boundary hooks let the search engine segment the
    execution-event stream into per-operand footprints — its commutativity
    filter — and are no-ops on every other strategy.
    """
    order = interp.operand_order(2, site)
    strategy = interp.strategy
    if order[0] == 0:
        strategy.note_operand(site, 0)
        value0 = run0(interp)
        strategy.note_operand(site, 1)
        value1 = run1(interp)
    else:
        strategy.note_operand(site, 1)
        value1 = run1(interp)
        strategy.note_operand(site, 0)
        value0 = run0(interp)
    strategy.note_group_end(site)
    return value0, value1


def _lower_BinaryOp(expr: c_ast.BinaryOp, L: LoweringContext) -> ExprThunk:
    op = expr.op
    line = expr.line
    max_steps = L.max_steps
    left_run = lower_expr(expr.left, L)
    right_run = lower_expr(expr.right, L)

    if op == "&&" or op == "||":
        is_and = op == "&&"

        if L.instrument:
            def run_logical_instr(interp) -> CValue:
                interp._steps += 1
                if interp._steps > max_steps:
                    raise ResourceLimitError(f"execution exceeded {max_steps} steps")
                if line:
                    interp.current_line = line
                left = left_run(interp)
                interp.memory.sequence_point()
                left_true = to_boolean(left, interp.options, line=line)
                if interp.events is not None:
                    interp.events.emit(BranchEvent(left_true, line))
                if is_and:
                    if not left_true:
                        return IntValue(0, ct.INT)
                elif left_true:
                    return IntValue(1, ct.INT)
                right = right_run(interp)
                return IntValue(1 if to_boolean(right, interp.options, line=line) else 0,
                                ct.INT)
            return run_logical_instr

        def run_logical(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            left = left_run(interp)
            interp.memory.sequence_point()
            left_true = to_boolean(left, interp.options, line=line)
            if is_and:
                if not left_true:
                    return IntValue(0, ct.INT)
            elif left_true:
                return IntValue(1, ct.INT)
            right = right_run(interp)
            return IntValue(1 if to_boolean(right, interp.options, line=line) else 0,
                            ct.INT)
        return run_logical

    # The value computations of the two operands are unsequenced: this is an
    # explicit interleaving point.  The site object handed to the strategy is
    # the same node the legacy walker passes (``exprs[0]`` of
    # ``_eval_unsequenced``), so scripted searches see identical decision
    # points in identical order.
    site = expr.left
    plan_cache = _BinaryPlanCache(op, L.options, line, L.instrument)

    if L.instrument:
        # Instrumented: consult the strategy at every interleaving point
        # (the choice event fires inside operand_order, as in the walker)
        # and apply the operator through the generic checked path.
        def run_instr(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            left, right = _run_unsequenced_pair(interp, site, left_run, right_run)
            return interp.apply_binary(op, left, right, line)
        return run_instr

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        mode = interp.order_mode
        if mode == 0:
            left = left_run(interp)
            right = right_run(interp)
        elif mode == 1:
            right = right_run(interp)
            left = left_run(interp)
        else:
            left, right = _run_unsequenced_pair(interp, site, left_run, right_run)
        if type(left) is IntValue and type(right) is IntValue:
            plan = plan_cache.lookup(left.type, right.type)
            if plan is not None:
                return plan(left.value, right.value)
        return interp.apply_binary(op, left, right, line)
    return run


def _lower_Assignment(expr: c_ast.Assignment, L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps
    value_run = lower_expr(expr.value, L)
    target_is_identifier = isinstance(expr.target, c_ast.Identifier) and not L.instrument
    if target_is_identifier:
        resolve_binding = _lower_object_binding(expr.target, L)
    else:
        target_lv = lower_lvalue(expr.target, L)

    if expr.op == "=":
        site = expr

        if L.instrument:
            def run_simple_instr(interp) -> CValue:
                interp._steps += 1
                if interp._steps > max_steps:
                    raise ResourceLimitError(f"execution exceeded {max_steps} steps")
                if line:
                    interp.current_line = line
                lvalue, value = _run_unsequenced_pair(interp, site, target_lv,
                                                      value_run)
                if isinstance(value, StructValue) and lvalue.type.is_record:
                    converted: CValue = value
                else:
                    converted = convert(value, lvalue.type, interp.options, line=line,
                                        pointer_registry=interp.pointer_registry)
                interp.write_lvalue(lvalue, converted, line)
                return converted
            return run_simple_instr

        if target_is_identifier:
            def run_simple_ident(interp) -> CValue:
                interp._steps += 1
                if interp._steps > max_steps:
                    raise ResourceLimitError(f"execution exceeded {max_steps} steps")
                if line:
                    interp.current_line = line
                mode = interp.order_mode
                if mode == 0:
                    binding = resolve_binding(interp)
                    value = value_run(interp)
                elif mode == 1:
                    value = value_run(interp)
                    binding = resolve_binding(interp)
                else:
                    binding, value = _run_unsequenced_pair(interp, site,
                                                           resolve_binding,
                                                           value_run)
                plan = binding.access_plan
                if plan is None:
                    plan = _binding_access_plan(binding, interp.profile)
                if type(value) is IntValue and plan[0] == _PLAN_SCALAR \
                        and plan[2] is not None:
                    converted: CValue = plan[2](value.value)
                elif isinstance(value, StructValue) and binding.type.is_record:
                    converted = value
                else:
                    converted = convert(value, binding.type, interp.options, line=line,
                                        pointer_registry=interp.pointer_registry)
                _write_binding(interp, binding, converted, line)
                return converted
            return run_simple_ident

        write_plans = _AccessPlanCache(L.instrument)

        def run_simple(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            mode = interp.order_mode
            if mode == 0:
                lvalue = target_lv(interp)
                value = value_run(interp)
            elif mode == 1:
                value = value_run(interp)
                lvalue = target_lv(interp)
            else:
                lvalue, value = _run_unsequenced_pair(interp, site, target_lv,
                                                      value_run)
            plan = write_plans.plan_for(lvalue.type, interp.profile)
            if type(value) is IntValue and plan is not None and plan[4] is not None:
                converted: CValue = plan[4](value.value)
            elif isinstance(value, StructValue) and lvalue.type.is_record:
                converted = value
            else:
                converted = convert(value, lvalue.type, interp.options, line=line,
                                    pointer_registry=interp.pointer_registry)
            if plan is not None:
                _write_with_plan(interp, lvalue, plan, converted, line)
            else:
                interp.write_lvalue(lvalue, converted, line)
            return converted
        return run_simple

    op = expr.op[:-1]
    plan_cache = _BinaryPlanCache(op, L.options, line, L.instrument)

    if target_is_identifier:
        def run_compound_ident(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            binding = resolve_binding(interp)
            old = _read_binding(interp, binding, line)
            rhs = value_run(interp)
            if type(old) is IntValue and type(rhs) is IntValue:
                plan = plan_cache.lookup(old.type, rhs.type)
                result = (plan(old.value, rhs.value) if plan is not None
                          else interp.apply_binary(op, old, rhs, line))
            else:
                result = interp.apply_binary(op, old, rhs, line)
            if isinstance(result, PointerValue):
                converted: CValue = result
            else:
                access = binding.access_plan
                if type(result) is IntValue and access is not None \
                        and access[0] == _PLAN_SCALAR and access[2] is not None:
                    converted = access[2](result.value)
                else:
                    converted = convert(result, binding.type, interp.options,
                                        line=line,
                                        pointer_registry=interp.pointer_registry)
            _write_binding(interp, binding, converted, line)
            return converted
        return run_compound_ident

    access_plans = _AccessPlanCache(L.instrument)

    def run_compound(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        lvalue = target_lv(interp)
        access = access_plans.plan_for(lvalue.type, interp.profile)
        old = (_read_with_plan(interp, lvalue, access, line) if access is not None
               else interp.read_lvalue(lvalue, line))
        rhs = value_run(interp)
        if type(old) is IntValue and type(rhs) is IntValue:
            plan = plan_cache.lookup(old.type, rhs.type)
            result = (plan(old.value, rhs.value) if plan is not None
                      else interp.apply_binary(op, old, rhs, line))
        else:
            result = interp.apply_binary(op, old, rhs, line)
        if isinstance(result, PointerValue):
            converted = result
        elif type(result) is IntValue and access is not None \
                and access[4] is not None:
            converted = access[4](result.value)
        else:
            converted = convert(result, lvalue.type, interp.options, line=line,
                                pointer_registry=interp.pointer_registry)
        if access is not None:
            _write_with_plan(interp, lvalue, access, converted, line)
        else:
            interp.write_lvalue(lvalue, converted, line)
        return converted
    return run_compound


def _lower_Conditional(expr: c_ast.Conditional, L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps
    condition_run = lower_expr(expr.condition, L)
    then_run = lower_expr(expr.then, L)
    otherwise_run = lower_expr(expr.otherwise, L)

    if L.instrument:
        def run_instr(interp) -> CValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            condition = condition_run(interp)
            interp.memory.sequence_point()
            taken = to_boolean(condition, interp.options, line=line)
            if interp.events is not None:
                interp.events.emit(BranchEvent(taken, line))
            if taken:
                return then_run(interp)
            return otherwise_run(interp)
        return run_instr

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        condition = condition_run(interp)
        interp.memory.sequence_point()
        if to_boolean(condition, interp.options, line=line):
            return then_run(interp)
        return otherwise_run(interp)
    return run


def _lower_Comma(expr: c_ast.Comma, L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps
    left_run = lower_expr(expr.left, L)
    right_run = lower_expr(expr.right, L)

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        left_run(interp)
        interp.memory.sequence_point()
        return right_run(interp)
    return run


def _subscript_core(expr: c_ast.ArraySubscript, L: LoweringContext):
    """The (step-free) shared core of subscript as lvalue and as rvalue."""
    line = expr.line
    array_run = lower_expr(expr.array, L)
    index_run = lower_expr(expr.index, L)
    site = expr.array
    instrument = L.instrument

    def core(interp) -> LValue:
        mode = None if instrument else interp.order_mode
        if mode == 0:
            base_value = array_run(interp)
            index_value = index_run(interp)
        elif mode == 1:
            index_value = index_run(interp)
            base_value = array_run(interp)
        else:
            base_value, index_value = _run_unsequenced_pair(interp, site,
                                                            array_run, index_run)
        if isinstance(index_value, PointerValue) and not isinstance(
                base_value, PointerValue):
            base_value, index_value = index_value, base_value  # i[a] form
        pointer = interp._require_pointer(base_value, line, "subscripted value")
        index = interp._require_int(index_value, line, "array subscript")
        element_type = pointer.pointee_type
        new_pointer = interp._pointer_add(pointer, index, line)
        return LValue(pointer=new_pointer, type=element_type)
    return core


def _lower_ArraySubscript(expr: c_ast.ArraySubscript, L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps
    core = _subscript_core(expr, L)
    plan_cache = _AccessPlanCache(L.instrument)

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        lvalue = core(interp)
        plan = plan_cache.plan_for(lvalue.type, interp.profile)
        if plan is not None:
            return _read_with_plan(interp, lvalue, plan, line)
        return interp.read_lvalue(lvalue, line)
    return run


def _member_core(expr: c_ast.Member, L: LoweringContext):
    """The (step-free) shared core of member access as lvalue and rvalue."""
    line = expr.line
    member = expr.member
    if expr.arrow:
        object_run = lower_expr(expr.object, L)
    else:
        object_lv = lower_lvalue(expr.object, L)
    arrow = expr.arrow

    def core(interp) -> LValue:
        if arrow:
            pointer_value = object_run(interp)
            pointer = interp._require_pointer(pointer_value, line, "'->' operand")
            record_type = pointer.pointee_type
            base_pointer = pointer
        else:
            inner = object_lv(interp)
            record_type = inner.type
            base_pointer = inner.pointer
        record_type = interp.resolve_record(record_type, line)
        if not isinstance(record_type, (ct.StructType, ct.UnionType)) \
                or record_type.fields is None:
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                f"Member access on non-record or incomplete type {record_type}.",
                line=line)
        layout = ct.struct_layout(record_type, interp.profile)
        field_layout = layout.field(member)
        if field_layout is None:
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                f"{record_type} has no member named '{member}'.", line=line)
        field_type = field_layout.type
        if record_type.const:
            field_type = field_type.with_qualifiers(const=True)
        pointer = PointerValue(
            base=base_pointer.base,
            offset=base_pointer.offset + field_layout.offset,
            type=ct.PointerType(pointee=field_type),
            function=base_pointer.function)
        return LValue(pointer=pointer, type=field_type)
    return core


def _lower_Member(expr: c_ast.Member, L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps
    core = _member_core(expr, L)
    plan_cache = _AccessPlanCache(L.instrument)

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        lvalue = core(interp)
        plan = plan_cache.plan_for(lvalue.type, interp.profile)
        if plan is not None:
            return _read_with_plan(interp, lvalue, plan, line)
        return interp.read_lvalue(lvalue, line)
    return run


def _lower_Call(expr: c_ast.Call, L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps
    argument_runs = [lower_expr(argument, L) for argument in expr.arguments]
    argument_count = len(argument_runs)
    site = expr.arguments[0] if expr.arguments else None
    function_node = expr.function

    if isinstance(function_node, c_ast.Identifier):
        name = function_node.name
        function_value_run = lower_expr(function_node, L)

        def resolve(interp):
            # Mirrors Interpreter.eval_call's designator resolution: a local
            # or global object shadowing the function name forces a value
            # evaluation (function pointers), otherwise the binding is used.
            binding = interp.function_bindings.get(name)
            local = interp.frames[-1].lookup(name) if interp.frames else None
            global_obj = interp.global_bindings.get(name)
            if local is not None or (global_obj is not None and binding is None):
                value = function_value_run(interp)
                return interp._function_from_value(value, line)
            if binding is not None:
                return name, binding.type
            if name in BUILTIN_FUNCTIONS:
                return name, None
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                f"Call to undeclared function '{name}'.", line=line)
    else:
        function_run = lower_expr(function_node, L)

        def resolve(interp):
            return interp._function_from_value(function_run(interp), line)

    instrument = L.instrument

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        callee_name, callee_type = resolve(interp)
        if argument_count:
            mode = None if instrument else interp.order_mode
            if mode == 0:
                values = [argument_run(interp) for argument_run in argument_runs]
            elif mode == 1:
                values = [None] * argument_count
                for index in range(argument_count - 1, -1, -1):
                    values[index] = argument_runs[index](interp)
            elif argument_count == 1:
                order = interp.operand_order(argument_count, site)
                values = [None] * argument_count
                for position in order:
                    values[position] = argument_runs[position](interp)
            else:
                order = interp.operand_order(argument_count, site)
                strategy = interp.strategy
                values = [None] * argument_count
                for position in order:
                    strategy.note_operand(site, position)
                    values[position] = argument_runs[position](interp)
                strategy.note_group_end(site)
        else:
            values = []
        arguments = interp._convert_arguments(values, callee_name, callee_type, line)
        # Sequence point after evaluating the designator and the arguments,
        # before the call (§6.5.2.2:10).
        interp.memory.sequence_point()
        return interp.call_function(callee_name, arguments, line,
                                    declared_type=callee_type)
    return run


def _lower_InitList(expr: c_ast.InitList, L: LoweringContext) -> ExprThunk:
    line = expr.line
    max_steps = L.max_steps

    def run(interp) -> CValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise UnsupportedFeatureError(
            "initializer list used outside of a declaration or compound literal")
    return run


_EXPR_LOWERERS = {
    c_ast.IntegerLiteral: _lower_IntegerLiteral,
    c_ast.FloatLiteral: _lower_FloatLiteral,
    c_ast.CharLiteral: _lower_CharLiteral,
    c_ast.StringLiteral: _lower_StringLiteral,
    c_ast.Identifier: _lower_Identifier,
    c_ast.UnaryOp: _lower_UnaryOp,
    c_ast.SizeofType: _lower_SizeofType,
    c_ast.Cast: _lower_Cast,
    c_ast.BinaryOp: _lower_BinaryOp,
    c_ast.Assignment: _lower_Assignment,
    c_ast.Conditional: _lower_Conditional,
    c_ast.Comma: _lower_Comma,
    c_ast.ArraySubscript: _lower_ArraySubscript,
    c_ast.Member: _lower_Member,
    c_ast.Call: _lower_Call,
    c_ast.InitList: _lower_InitList,
}


# ---------------------------------------------------------------------------
# Lvalue lowering (mirrors Interpreter.eval_lvalue case by case)
# ---------------------------------------------------------------------------

def _lower_lvalue_Identifier(expr: c_ast.Identifier, L: LoweringContext):
    name = expr.name
    line = expr.line
    max_steps = L.max_steps

    def run(interp) -> LValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        binding = _lookup_binding(interp, name, line)
        if isinstance(binding, FunctionBinding):
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                f"Function designator '{name}' used where an object is required.",
                line=line)
        return _binding_lvalue(binding)
    return run


def _lower_lvalue_UnaryOp(expr: c_ast.UnaryOp, L: LoweringContext):
    if expr.op != "*":
        return _lower_not_an_lvalue(expr, L)
    line = expr.line
    max_steps = L.max_steps
    operand_run = lower_expr(expr.operand, L)

    def run(interp) -> LValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        value = operand_run(interp)
        return interp._deref_to_lvalue(value, line)
    return run


def _lower_lvalue_ArraySubscript(expr: c_ast.ArraySubscript, L: LoweringContext):
    line = expr.line
    max_steps = L.max_steps
    core = _subscript_core(expr, L)

    def run(interp) -> LValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        return core(interp)
    return run


def _lower_lvalue_Member(expr: c_ast.Member, L: LoweringContext):
    line = expr.line
    max_steps = L.max_steps
    core = _member_core(expr, L)

    def run(interp) -> LValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        return core(interp)
    return run


def _lower_lvalue_StringLiteral(expr: c_ast.StringLiteral, L: LoweringContext):
    text = expr.value
    line = expr.line
    max_steps = L.max_steps

    def run(interp) -> LValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        pointer, array_type = interp.string_literal_object(text)
        return LValue(pointer=pointer.with_type(ct.PointerType(pointee=array_type)),
                      type=array_type)
    return run


def _lower_lvalue_Cast(expr: c_ast.Cast, L: LoweringContext):
    line = expr.line
    max_steps = L.max_steps

    if isinstance(expr.operand, c_ast.InitList):
        target = expr.target_type
        operand_node = expr.operand

        def run_compound_literal(interp) -> LValue:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            return interp.compound_literal_lvalue(target, operand_node, line)
        return run_compound_literal

    def run(interp) -> LValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, "Cast expression used as an lvalue.", line=line)
    return run


def _lower_lvalue_Comma(expr: c_ast.Comma, L: LoweringContext):
    line = expr.line
    max_steps = L.max_steps
    left_run = lower_expr(expr.left, L)
    right_lv = lower_lvalue(expr.right, L)

    def run(interp) -> LValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        left_run(interp)
        interp.memory.sequence_point()
        return right_lv(interp)
    return run


def _lower_not_an_lvalue(expr: c_ast.Expression, L: LoweringContext):
    name = type(expr).__name__
    line = expr.line
    max_steps = L.max_steps

    def run(interp) -> LValue:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL,
            f"Expression of kind {name} is not an lvalue.", line=line)
    return run


_LVALUE_LOWERERS = {
    c_ast.Identifier: _lower_lvalue_Identifier,
    c_ast.UnaryOp: _lower_lvalue_UnaryOp,
    c_ast.ArraySubscript: _lower_lvalue_ArraySubscript,
    c_ast.Member: _lower_lvalue_Member,
    c_ast.StringLiteral: _lower_lvalue_StringLiteral,
    c_ast.Cast: _lower_lvalue_Cast,
    c_ast.Comma: _lower_lvalue_Comma,
}


# ---------------------------------------------------------------------------
# Statement lowering
# ---------------------------------------------------------------------------

class LoweredBlock:
    """A lowered compound statement that still supports ``goto`` seeking.

    Mirrors ``StatementExecutorMixin.exec_compound`` / ``_run_items`` /
    ``_run_goto_loop``: each item keeps its AST node alongside its closure so
    the label search walks the same tree the legacy executor walks.
    """

    __slots__ = ("node", "items")

    def __init__(self, node: c_ast.Compound,
                 items: list[tuple[c_ast.Node, StmtThunk, object]]) -> None:
        self.node = node
        self.items = items

    def run(self, interp, *, new_scope: bool = True) -> None:
        frame = interp.current_frame()
        if new_scope:
            frame.push_scope()
        try:
            self.run_items(interp, None)
        except GotoSignal as signal:
            if self._contains_label(signal.label):
                self._run_goto_loop(interp, signal.label)
            else:
                raise
        finally:
            if new_scope:
                scope = frame.pop_scope()
                for base in scope.owned_bases:
                    interp.memory.kill(base)

    def _run_goto_loop(self, interp, label: str) -> None:
        while True:
            try:
                self.run_items(interp, label)
                return
            except GotoSignal as signal:
                if self._contains_label(signal.label):
                    label = signal.label
                    continue
                raise

    def run_items(self, interp, start_label: Optional[str]) -> None:
        seeking = start_label
        for node, thunk, extra in self.items:
            if seeking is not None:
                if not _item_contains_label(node, seeking):
                    continue
                if isinstance(node, c_ast.Label) and node.name == seeking:
                    seeking = None
                    if extra is not None:
                        extra(interp)  # the label's inner statement
                    continue
                if isinstance(node, c_ast.Compound):
                    assert isinstance(extra, LoweredBlock)
                    extra.run_items(interp, seeking)
                    seeking = None
                    continue
                # The label sits inside a structured statement; jumping into
                # it is unsupported, exactly as in the legacy executor.
                raise UnsupportedFeatureError(
                    f"goto into a nested statement (label '{seeking}')")
            thunk(interp)

    def _contains_label(self, label: str) -> bool:
        return any(isinstance(node, c_ast.Label) and node.name == label
                   for node in c_ast.walk(self.node))


def _item_contains_label(item: c_ast.Node, label: str) -> bool:
    return any(isinstance(node, c_ast.Label) and node.name == label
               for node in c_ast.walk(item))


def lower_block(block: c_ast.Compound, L: LoweringContext) -> LoweredBlock:
    items: list[tuple[c_ast.Node, StmtThunk, object]] = []
    for item in block.items:
        thunk = lower_stmt(item, L)
        extra: object = None
        if isinstance(item, c_ast.Label) and item.statement is not None:
            extra = lower_stmt(item.statement, L)
        elif isinstance(item, c_ast.Compound):
            extra = lower_block(item, L)
        items.append((item, thunk, extra))
    return LoweredBlock(block, items)


def lower_stmt(stmt, L: LoweringContext) -> StmtThunk:
    if isinstance(stmt, c_ast.Declaration):
        return _lower_Declaration(stmt, L)
    if isinstance(stmt, c_ast.StaticAssert):
        return _lower_StaticAssert(stmt, L)
    lowerer = _STMT_LOWERERS.get(type(stmt))
    if lowerer is None:
        return _lower_unsupported_stmt(stmt, L)
    return lowerer(stmt, L)


def _lower_unsupported_stmt(stmt, L: LoweringContext) -> StmtThunk:
    name = type(stmt).__name__
    line = stmt.line
    max_steps = L.max_steps

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise UnsupportedFeatureError(f"cannot execute {name}")
    return run


def _lower_Declaration(stmt: c_ast.Declaration, L: LoweringContext) -> StmtThunk:
    # Declarations stay on the shared (legacy) path: object creation and
    # initializer semantics live in Interpreter.exec_local_declaration, and
    # they run once per scope entry rather than once per expression step.
    line = stmt.line
    max_steps = L.max_steps

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        interp.exec_local_declaration(stmt)
    return run


def _lower_StaticAssert(stmt: c_ast.StaticAssert, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        # Checked statically; nothing to do at run time.
    return run


def _lower_ExpressionStmt(stmt: c_ast.ExpressionStmt, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps
    expression_run = lower_expr(stmt.expression, L) if stmt.expression is not None else None

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        if expression_run is not None:
            expression_run(interp)
        # End of a full expression: sequence point.
        interp.memory.sequence_point()
    return run


def _lower_Return(stmt: c_ast.Return, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps
    value_run = lower_expr(stmt.value, L) if stmt.value is not None else None

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        value = value_run(interp) if value_run is not None else None
        interp.memory.sequence_point()
        raise ReturnSignal(value, line=line)
    return run


def _lower_Break(stmt: c_ast.Break, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise BreakSignal()
    return run


def _lower_Continue(stmt: c_ast.Continue, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise ContinueSignal()
    return run


def _lower_Goto(stmt: c_ast.Goto, L: LoweringContext) -> StmtThunk:
    label = stmt.label
    line = stmt.line
    max_steps = L.max_steps

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        raise GotoSignal(label)
    return run


def _lower_Label(stmt: c_ast.Label, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps
    inner_run = lower_stmt(stmt.statement, L) if stmt.statement is not None else None

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        if inner_run is not None:
            inner_run(interp)
    return run


def _lower_Compound(stmt: c_ast.Compound, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps
    block = lower_block(stmt, L)

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        block.run(interp, new_scope=True)
    return run


def _lower_If(stmt: c_ast.If, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps
    condition_run = lower_expr(stmt.condition, L)
    then_run = lower_stmt(stmt.then, L) if stmt.then is not None else None
    otherwise_run = lower_stmt(stmt.otherwise, L) if stmt.otherwise is not None else None

    if L.instrument:
        def run_instr(interp) -> None:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            if line:
                interp.current_line = line
            condition = condition_run(interp)
            interp.memory.sequence_point()
            taken = to_boolean(condition, interp.options, line=line)
            if interp.events is not None:
                interp.events.emit(BranchEvent(taken, line))
            if taken:
                if then_run is not None:
                    then_run(interp)
            elif otherwise_run is not None:
                otherwise_run(interp)
        return run_instr

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        condition = condition_run(interp)
        interp.memory.sequence_point()
        if to_boolean(condition, interp.options, line=line):
            if then_run is not None:
                then_run(interp)
        elif otherwise_run is not None:
            otherwise_run(interp)
    return run


def _lower_While(stmt: c_ast.While, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps
    condition_run = lower_expr(stmt.condition, L)
    body_run = lower_stmt(stmt.body, L) if stmt.body is not None else None
    instrument = L.instrument

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        memory = interp.memory
        options = interp.options
        while True:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            condition = condition_run(interp)
            memory.sequence_point()
            taken = to_boolean(condition, options, line=line)
            if instrument and interp.events is not None:
                interp.events.emit(BranchEvent(taken, line))
            if not taken:
                return
            try:
                if body_run is not None:
                    body_run(interp)
            except BreakSignal:
                return
            except ContinueSignal:
                continue
    return run


def _lower_DoWhile(stmt: c_ast.DoWhile, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps
    condition_run = lower_expr(stmt.condition, L)
    body_run = lower_stmt(stmt.body, L) if stmt.body is not None else None
    instrument = L.instrument

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        memory = interp.memory
        options = interp.options
        while True:
            interp._steps += 1
            if interp._steps > max_steps:
                raise ResourceLimitError(f"execution exceeded {max_steps} steps")
            try:
                if body_run is not None:
                    body_run(interp)
            except BreakSignal:
                return
            except ContinueSignal:
                pass
            condition = condition_run(interp)
            memory.sequence_point()
            taken = to_boolean(condition, options, line=line)
            if instrument and interp.events is not None:
                interp.events.emit(BranchEvent(taken, line))
            if not taken:
                return
    return run


def _lower_For(stmt: c_ast.For, L: LoweringContext) -> StmtThunk:
    line = stmt.line
    max_steps = L.max_steps
    init = stmt.init
    if init is None:
        init_runs: list[StmtThunk] = []
        init_expr_run = None
    elif isinstance(init, list):
        init_runs = [lower_stmt(declaration, L) for declaration in init]
        init_expr_run = None
    elif isinstance(init, c_ast.Declaration):
        init_runs = [lower_stmt(init, L)]
        init_expr_run = None
    else:
        init_runs = []
        init_expr_run = lower_expr(init, L)
    condition_run = lower_expr(stmt.condition, L) if stmt.condition is not None else None
    step_run = lower_expr(stmt.step, L) if stmt.step is not None else None
    body_run = lower_stmt(stmt.body, L) if stmt.body is not None else None
    instrument = L.instrument

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        frame = interp.current_frame()
        frame.push_scope()
        memory = interp.memory
        options = interp.options
        try:
            for init_run in init_runs:
                init_run(interp)
            if init_expr_run is not None:
                init_expr_run(interp)
                memory.sequence_point()
            while True:
                interp._steps += 1
                if interp._steps > max_steps:
                    raise ResourceLimitError(f"execution exceeded {max_steps} steps")
                if condition_run is not None:
                    condition = condition_run(interp)
                    memory.sequence_point()
                    taken = to_boolean(condition, options, line=line)
                    if instrument and interp.events is not None:
                        interp.events.emit(BranchEvent(taken, line))
                    if not taken:
                        return
                try:
                    if body_run is not None:
                        body_run(interp)
                except BreakSignal:
                    return
                except ContinueSignal:
                    pass
                if step_run is not None:
                    step_run(interp)
                    memory.sequence_point()
        finally:
            scope = frame.pop_scope()
            for base in scope.owned_bases:
                memory.kill(base)
    return run


def _lower_Switch(stmt: c_ast.Switch, L: LoweringContext) -> StmtThunk:
    from repro.cfront.parser import fold_constant

    line = stmt.line
    max_steps = L.max_steps
    expression_run = lower_expr(stmt.expression, L)

    body = stmt.body
    if not isinstance(body, c_ast.Compound):
        if isinstance(body, (c_ast.Case, c_ast.Default)):
            body = c_ast.Compound(line=stmt.line, items=[body])
        else:
            body = None

    if body is not None:
        # Per item: (node, run-thunk, case/default inner thunk, pre-folded
        # case label value, fallback label-expression thunk).
        entries = []
        for item in body.items:
            inner_run = None
            label_value = None
            label_run = None
            if isinstance(item, (c_ast.Case, c_ast.Default)):
                item_run = None
                if item.statement is not None:
                    inner_run = lower_stmt(item.statement, L)
                if isinstance(item, c_ast.Case) and item.expression is not None:
                    label_value = fold_constant(item.expression, L.profile)
                    if label_value is None:
                        label_run = lower_expr(item.expression, L)
            else:
                item_run = lower_stmt(item, L)
            entries.append((item, item_run, inner_run, label_value, label_run))
    else:
        entries = []

    def run(interp) -> None:
        interp._steps += 1
        if interp._steps > max_steps:
            raise ResourceLimitError(f"execution exceeded {max_steps} steps")
        if line:
            interp.current_line = line
        value = expression_run(interp)
        interp.memory.sequence_point()
        selector = value.value if isinstance(value, IntValue) else interp._require_int(
            value, line, "switch controlling expression")
        if body is None:
            return
        frame = interp.current_frame()
        frame.push_scope()
        try:
            start_index = None
            default_index = None
            for index, (item, _item_run, _inner, label_value, label_run) in enumerate(entries):
                if isinstance(item, c_ast.Case) and item.expression is not None:
                    if label_value is not None:
                        case_value = label_value
                    else:
                        case_value = interp._require_int(
                            label_run(interp), item.line, "case label")
                    if case_value == selector:
                        start_index = index
                        break
                elif isinstance(item, c_ast.Default):
                    if default_index is None:
                        default_index = index
            if start_index is None:
                start_index = default_index
            if start_index is None:
                return
            for item, item_run, inner_run, _label_value, _label_run in entries[start_index:]:
                if isinstance(item, (c_ast.Case, c_ast.Default)):
                    if inner_run is not None:
                        inner_run(interp)
                else:
                    item_run(interp)
        except BreakSignal:
            pass
        finally:
            scope = frame.pop_scope()
            for base in scope.owned_bases:
                interp.memory.kill(base)
    return run


_STMT_LOWERERS = {
    c_ast.ExpressionStmt: _lower_ExpressionStmt,
    c_ast.Return: _lower_Return,
    c_ast.Break: _lower_Break,
    c_ast.Continue: _lower_Continue,
    c_ast.Goto: _lower_Goto,
    c_ast.Label: _lower_Label,
    c_ast.Compound: _lower_Compound,
    c_ast.If: _lower_If,
    c_ast.While: _lower_While,
    c_ast.DoWhile: _lower_DoWhile,
    c_ast.For: _lower_For,
    c_ast.Switch: _lower_Switch,
}


# ---------------------------------------------------------------------------
# Unit lowering
# ---------------------------------------------------------------------------

class LoweredFunction:
    """A function body compiled to closures; ``run_body`` replaces
    ``exec_compound(definition.body, new_scope=False)`` in the call path."""

    __slots__ = ("name", "block")

    def __init__(self, name: str, block: LoweredBlock) -> None:
        self.name = name
        self.block = block

    def run_body(self, interp) -> None:
        self.block.run(interp, new_scope=False)


class LoweredUnit:
    """All lowered function bodies of one translation unit, for one options
    fingerprint (constant folding honors the check flags, so a unit lowered
    for one configuration must not serve another)."""

    __slots__ = ("functions", "fold", "instrument")

    def __init__(self, functions: dict[str, LoweredFunction], *, fold: bool,
                 instrument: bool = False) -> None:
        self.functions = functions
        self.fold = fold
        self.instrument = instrument


def lower_unit(unit: c_ast.TranslationUnit, options: CheckerOptions, *,
               fold: bool = True, instrument: bool = False) -> LoweredUnit:
    """Lower every function body of ``unit`` for the given configuration.

    ``fold=False`` disables constant folding; the evaluation-order search
    uses it so that scripted strategies meet exactly the decision points the
    legacy walker presents (folding erases interleaving points of constant
    subexpressions, which is unobservable for a fixed order but would shift
    a script's decision indices).

    ``instrument=True`` compiles the event-emitting variant of the IR for
    runs with probes attached (see :class:`LoweringContext`); it implies
    ``fold=False`` so the instrumented lowered engine and the legacy walker
    produce identical event sequences (folding would elide the events of
    constant subtrees).
    """
    L = LoweringContext(options, fold=fold, instrument=instrument)
    functions: dict[str, LoweredFunction] = {}
    for declaration in unit.declarations:
        if isinstance(declaration, c_ast.FunctionDef) and declaration.body is not None:
            functions[declaration.name] = LoweredFunction(
                declaration.name, lower_block(declaration.body, L))
    return LoweredUnit(functions, fold=L.fold, instrument=instrument)
