"""Compile the lowered IR into flat register bytecode (the compiled engine).

The PR-2 lowered closures removed per-node *dispatch*, but every mini-step
still pays a CPython frame: one closure call per AST node per execution.
This module removes the frames as well, the way a template-JIT baseline
tier does: each function whose body fits the *native subset* is compiled
once into a flat ``tuple``-of-tuples instruction array (integer opcodes,
pre-resolved register/slot operands, the same pre-derived arithmetic plans
the lowered engine builds inlined into the instruction stream) executed by
a single ``while``-loop dispatch in :mod:`repro.core.vm`.

The native subset
-----------------

* flat integer (``IntType``/``BoolType``) local scalars -> virtual
  registers holding raw Python ints (or the ``UNINIT`` sentinel);
* local one-dimensional flat-integer arrays and unit-level flat scalars /
  arrays -> memory *slots* accessed with pre-derived element sizes against
  the arena-backed byte store;
* calls to unit functions and builtins, ``if``/``while``/``do``/``for``,
  ``&&``/``||``/``?:``/comma, casts between flat integer types.

Anything else — pointers, floats, structs, ``&`` anywhere in the function,
``goto``/``switch``/labels, static or extern locals, variadic definitions —
aborts compilation of that *function* (:class:`_Unsupported`), and the
function transparently runs on the lowered closures instead.  Falling back
is always verdict-safe: the compiled engine is an accelerator for the
common case, never an alternative semantics.

Parity contract
---------------

The bytecode replicates the *lowered* engine observation-for-observation:

* **steps** are aggregated per basic block and flushed before every
  side-effecting boundary (calls, declarations, returns, jumps), so
  ``max_steps`` resource verdicts and stdout prefixes agree;
* **arithmetic** uses raw-int ports of the same
  :func:`~repro.core.lowering._int_binary_plan` /
  :func:`~repro.core.lowering._int_conversion_plan` rules with identical
  messages, and every slow path boxes the value back into a
  :class:`~repro.core.values.CValue` and calls the *actual* shared helper
  (``_read_binding``, ``_write_with_plan``, ``_pointer_add``,
  ``_check_usable``, ``to_boolean``, ...), so error kinds, messages, and
  report order are the lowered engine's by construction;
* **uninitialized reads**: a register read of an indeterminate value
  raises exactly where the lowered ``_read_binding`` would — consumers
  carry the read-site message and check the ``UNINIT`` sentinel on their
  (free) slow path; value-discard positions get an explicit ``RDCHK``;
* **sequencing**: memory writes keep feeding ``Memory.locs_written``
  (plain ``(base, offset)`` tuples, equal to the ``ByteLocation`` entries
  the generic path adds) and ``SEQPT`` clears them at every lowered
  sequence point; conflicts *between register operations* are resolved
  statically — any potential conflict makes the function fall back, so
  the lowered engine produces the report.

Whole-unit compilation is memoized per options on
:class:`repro.api.kcc.CompiledUnit`; functions that do not compile simply
stay absent from :attr:`CompiledProgram.functions`.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Optional

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.headers import BUILTIN_FUNCTIONS
from repro.core.config import CheckerOptions
from repro.core.lowering import (
    _FLAT_INT_TYPES,
    _FoldUB,
    _subtree_step_cost,
    _try_fold,
    LoweringContext,
)
from repro.errors import UBKind, UndefinedBehaviorError


class UninitType:
    """Singleton sentinel for an indeterminate register value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNINIT"


#: The indeterminate register value.  Consumers test ``value.__class__ is
#: int`` on the fast path, so the sentinel automatically routes to the slow
#: path that replicates the lowered engine's indeterminate-value handling.
UNINIT = UninitType()


class _Unsupported(Exception):
    """The function under compilation leaves the native subset."""


# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------
#
# Instructions are plain tuples with the opcode at index 0.  Numbering is
# by dispatch hotness: the vm's if/elif chain tests them in order.

OP_BINOP = 0  # (op, dst, a, b, plan, slow)
OP_LDE = 1  # (op, dst, slot, idx, esize, smode, line, info)
OP_STEP = 2  # (op, n)
OP_JZ = 3  # (op, src, target, line, rdmsg, rdline)
OP_CONV = 4  # (op, dst, src, plan, slow)
OP_STE = 5  # (op, addr, src, esize, mask, line, info)
OP_JMP = 6  # (op, target)
OP_CHKE = 7  # (op, dst, slot, idx, esize, line, info)
OP_MOV = 8  # (op, dst, src)
OP_JNZ = 9  # (op, src, target, line, rdmsg, rdline)
OP_LDG = 10  # (op, dst, slot, size, smode, line, info)
OP_STG = 11  # (op, slot, src, size, mask, line, info)
OP_SEQPT = 12  # (op,)
OP_INC = 13  # (op, dst, src, plan, slow)
OP_LDA = 14  # (op, dst, addr, esize, smode, line, info)
OP_UNOP = 15  # (op, dst, src, plan, slow)
OP_NOT = 16  # (op, dst, src, line, rdmsg, rdline)
OP_BOOL = 17  # (op, dst, src, line, rdmsg, rdline)
OP_LOADI = 18  # (op, dst, value)
OP_RDCHK = 19  # (op, src, msg, line)
OP_CALL = 20  # (op, dst, name, ctype, args, line)
OP_RET = 21  # (op, src, rtype, rdmsg, rdline)
OP_DECL = 22  # (op, node, slot, line)
OP_BINDR = 23  # (op, dst, name, size, signed, is_bool)
OP_PUSHSC = 24  # (op,)
OP_POPSC = 25  # (op,)
OP_RAISE = 26  # (op, kind, message, line)
OP_STR = 27  # (op, dst, text)

#: Opcodes that can never raise: the only instructions allowed between a
#: deferred register read and its consuming check without reordering the
#: report (see :meth:`_FnCompiler.protect_read`).
_SAFE_OPS = frozenset(
    (OP_STEP, OP_MOV, OP_LOADI, OP_JMP, OP_SEQPT, OP_PUSHSC, OP_POPSC, OP_STR)
)

#: The register-destination operand positions of each opcode, used by the
#: compile-time clobber scan behind :meth:`_FnCompiler.snapshot`.  Opcodes
#: absent here write no registers.  (``OP_INC`` position 2 and ``OP_CALL``
#: position 1 may hold -1 for "no destination"; register numbers are never
#: negative, so the scan needs no special case.)
_DST_FIELDS = {
    OP_BINOP: (1,),
    OP_LDE: (1,),
    OP_CONV: (1,),
    OP_CHKE: (1,),
    OP_MOV: (1,),
    OP_LDG: (1,),
    OP_INC: (1, 2),
    OP_LDA: (1,),
    OP_UNOP: (1,),
    OP_NOT: (1,),
    OP_BOOL: (1,),
    OP_LOADI: (1,),
    OP_CALL: (1,),
    OP_BINDR: (1,),
    OP_STR: (1,),
}

#: ``smode`` load decode: 0 unsigned, 1 signed two's-complement, 2 _Bool.
_SMODE_UNSIGNED = 0
_SMODE_SIGNED = 1
_SMODE_BOOL = 2


class FnCode:
    """One compiled function body."""

    __slots__ = (
        "name",
        "code",
        "n_regs",
        "r_init",
        "n_slots",
        "rtype",
        "max_steps",
        "limit_message",
    )

    def __init__(
        self,
        name: str,
        code: tuple,
        n_regs: int,
        r_init: tuple,
        n_slots: int,
        rtype: ct.CType,
        max_steps: int,
    ) -> None:
        self.name = name
        self.code = code
        self.n_regs = n_regs
        self.r_init = r_init
        self.n_slots = n_slots
        self.rtype = rtype
        self.max_steps = max_steps
        self.limit_message = f"execution exceeded {max_steps} steps"


class CompiledProgram:
    """All natively compiled functions of one translation unit."""

    __slots__ = ("functions", "order_mode", "options")

    def __init__(
        self, functions: dict, order_mode: int, options: CheckerOptions
    ) -> None:
        self.functions = functions
        self.order_mode = order_mode
        self.options = options


# ---------------------------------------------------------------------------
# Raw arithmetic plans
# ---------------------------------------------------------------------------
#
# Raw-int ports of lowering's `_int_binary_plan` / `_int_conversion_plan`:
# same rules, same error kinds and messages, but ``int -> int`` so the VM
# never boxes on the fast path.  Comparisons yield 0/1.

_RAW_CONV_PLANS: dict = {}


def raw_conversion_plan(target: ct.CType, profile: ct.ImplementationProfile):
    """``int -> int`` port of ``_int_conversion_plan`` (None if unplanable)."""
    if not isinstance(target, _FLAT_INT_TYPES):
        return None
    key = (target, profile)
    plan = _RAW_CONV_PLANS.get(key)
    if plan is None and key not in _RAW_CONV_PLANS:
        if isinstance(target, ct.BoolType):
            def plan(value: int) -> int:
                return 1 if value != 0 else 0
        else:
            lo, hi = ct.integer_range(target, profile)
            bits = ct.integer_bits(target, profile)
            signed = ct.is_signed_type(target, profile)
            mask = (1 << bits) - 1
            half = 1 << (bits - 1)

            def plan(value: int) -> int:
                if lo <= value <= hi:
                    return value
                wrapped = value & mask
                if signed and wrapped >= half:
                    wrapped -= 1 << bits
                return wrapped
        if len(_RAW_CONV_PLANS) < 65536:
            _RAW_CONV_PLANS[key] = plan
    return plan


_RELATIONAL = {"<": True, ">": True, "<=": True, ">=": True, "==": True, "!=": True}


def raw_binary_plan(
    op: str,
    left_type: ct.CType,
    right_type: ct.CType,
    options: CheckerOptions,
    line: int,
):
    """``(int, int) -> int`` port of ``_int_binary_plan``.

    Returns ``(plan, common_type)`` or ``None`` when the operand types are
    not planable — which makes the compiling function fall back, keeping
    the generic checked path authoritative.
    """
    if not isinstance(left_type, _FLAT_INT_TYPES) or not isinstance(
        right_type, _FLAT_INT_TYPES
    ):
        return None
    profile = options.profile
    try:
        common = ct.usual_arithmetic_conversions(left_type, right_type, profile)
    except (TypeError, AssertionError):
        return None
    if not isinstance(common, ct.IntType):
        return None
    lo, hi = ct.integer_range(common, profile)
    bits = ct.integer_bits(common, profile)
    signed = ct.is_signed_type(common, profile)
    mask = (1 << bits) - 1
    half = 1 << (bits - 1)
    check_arithmetic = options.check_arithmetic

    def conv(value: int) -> int:
        if lo <= value <= hi:
            return value
        wrapped = value & mask
        if signed and wrapped >= half:
            wrapped -= 1 << bits
        return wrapped

    def arith_result(value: int, overflow_possible: bool = True) -> int:
        if lo <= value <= hi:
            return value
        if signed:
            if check_arithmetic and overflow_possible:
                raise UndefinedBehaviorError(
                    UBKind.SIGNED_OVERFLOW,
                    f"Signed integer overflow: result {value} does not fit in {common}.",
                    line=line,
                )
            wrapped = value & mask
            if wrapped >= half:
                wrapped -= 1 << bits
            return wrapped
        return value & mask

    if op in _RELATIONAL:
        import operator as _operator
        comparator = {
            "<": _operator.lt,
            ">": _operator.gt,
            "<=": _operator.le,
            ">=": _operator.ge,
            "==": _operator.eq,
            "!=": _operator.ne,
        }[op]

        def compare(a: int, b: int) -> int:
            return 1 if comparator(conv(a), conv(b)) else 0
        return compare, ct.INT

    if op == "+":
        def add(a: int, b: int) -> int:
            return arith_result(conv(a) + conv(b))
        return add, common
    if op == "-":
        def sub(a: int, b: int) -> int:
            return arith_result(conv(a) - conv(b))
        return sub, common
    if op == "*":
        def mul(a: int, b: int) -> int:
            return arith_result(conv(a) * conv(b))
        return mul, common
    if op in ("/", "%"):
        is_div = op == "/"

        def divmod_(a: int, b: int) -> int:
            a = conv(a)
            b = conv(b)
            if b == 0:
                if check_arithmetic:
                    raise UndefinedBehaviorError(
                        UBKind.DIVISION_BY_ZERO,
                        "Division or modulus by zero.",
                        line=line,
                    )
                return 0
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            if is_div:
                return arith_result(quotient)
            return arith_result(a - quotient * b)
        return divmod_, common
    if op in ("&", "|", "^"):
        import operator as _operator
        bitop = {"&": _operator.and_, "|": _operator.or_, "^": _operator.xor}[op]

        def bitwise(a: int, b: int) -> int:
            return arith_result(bitop(conv(a), conv(b)), overflow_possible=False)
        return bitwise, common
    if op in ("<<", ">>"):
        is_left = op == "<<"

        def shift(a: int, b: int) -> int:
            a = conv(a)
            b = conv(b)
            if check_arithmetic and (b < 0 or b >= bits):
                raise UndefinedBehaviorError(
                    UBKind.SHIFT_TOO_FAR,
                    f"Shift amount {b} is negative or >= width of the type "
                    f"({bits} bits).",
                    line=line,
                )
            b = max(0, min(b, bits - 1))
            if is_left:
                if check_arithmetic and signed and a < 0:
                    raise UndefinedBehaviorError(
                        UBKind.SHIFT_NEGATIVE,
                        "Left shift of a negative value.",
                        line=line,
                    )
                result = a << b
                if signed and check_arithmetic and not lo <= result <= hi:
                    raise UndefinedBehaviorError(
                        UBKind.SHIFT_OVERFLOW,
                        f"Left shift of {a} by {b} overflows {common}.",
                        line=line,
                    )
                return arith_result(result, overflow_possible=not signed)
            return a >> b
        return shift, common
    return None


def raw_unary_plan(op: str, operand_type: ct.CType, options: CheckerOptions, line: int):
    """Raw plan for unary ``+``/``-``/``~`` (promote, operate, overflow-check).

    Returns ``(plan, promoted_type)`` or None.  Mirrors the lowered
    ``run_arith`` path: ``_promote`` then ``_arith_result`` on the promoted
    type — the overflow message names the promoted type.
    """
    if not isinstance(operand_type, _FLAT_INT_TYPES):
        return None
    profile = options.profile
    promoted = ct.promote_integer(operand_type, profile)
    if not isinstance(promoted, _FLAT_INT_TYPES):
        return None
    to_promoted = raw_conversion_plan(promoted, profile)
    if to_promoted is None:
        return None
    lo, hi = ct.integer_range(promoted, profile)
    bits = ct.integer_bits(promoted, profile)
    signed = ct.is_signed_type(promoted, profile)
    mask = (1 << bits) - 1
    half = 1 << (bits - 1)
    check_arithmetic = options.check_arithmetic
    result_type = promoted.unqualified()

    def arith_result(value: int) -> int:
        if lo <= value <= hi:
            return value
        if signed:
            if check_arithmetic:
                raise UndefinedBehaviorError(
                    UBKind.SIGNED_OVERFLOW,
                    f"Signed integer overflow: result {value} does not fit in "
                    f"{result_type}.",
                    line=line,
                )
            wrapped = value & mask
            if wrapped >= half:
                wrapped -= 1 << bits
            return wrapped
        return value & mask

    if op == "+":
        return to_promoted, result_type
    if op == "-":
        def negate(value: int) -> int:
            return arith_result(-to_promoted(value))
        return negate, result_type
    if op == "~":
        def invert(value: int) -> int:
            return arith_result(~to_promoted(value))
        return invert, result_type
    return None


def raw_incdec_plan(delta: int, var_type: ct.CType, options: CheckerOptions, line: int):
    """Raw plan for ``++``/``--`` on a register variable.

    Composes promote -> ``_arith_result(value + delta)`` at the promoted
    type -> conversion back to the variable type, exactly the lowered
    ``run_incdec_ident`` integer path.
    """
    if not isinstance(var_type, _FLAT_INT_TYPES):
        return None
    profile = options.profile
    promoted = ct.promote_integer(var_type, profile)
    if not isinstance(promoted, _FLAT_INT_TYPES):
        return None
    to_promoted = raw_conversion_plan(promoted, profile)
    to_var = raw_conversion_plan(var_type, profile)
    if to_promoted is None or to_var is None:
        return None
    lo, hi = ct.integer_range(promoted, profile)
    bits = ct.integer_bits(promoted, profile)
    signed = ct.is_signed_type(promoted, profile)
    mask = (1 << bits) - 1
    half = 1 << (bits - 1)
    check_arithmetic = options.check_arithmetic
    promoted_type = promoted.unqualified()

    def plan(value: int) -> int:
        result = to_promoted(value) + delta
        if not lo <= result <= hi:
            if signed:
                if check_arithmetic:
                    raise UndefinedBehaviorError(
                        UBKind.SIGNED_OVERFLOW,
                        f"Signed integer overflow: result {result} does not fit "
                        f"in {promoted_type}.",
                        line=line,
                    )
                result = result & mask
                if result >= half:
                    result -= 1 << bits
            else:
                result = result & mask
        return to_var(result)
    return plan


# ---------------------------------------------------------------------------
# Compile-time variable model
# ---------------------------------------------------------------------------

class _RegVar:
    """A flat integer scalar living in a virtual register."""

    __slots__ = ("reg", "ctype", "read_msg", "signed", "is_bool", "size")

    def __init__(
        self, reg: int, ctype: ct.CType, profile: ct.ImplementationProfile
    ) -> None:
        self.reg = reg
        self.ctype = ctype
        self.size = ct.size_of(ctype, profile)
        self.is_bool = isinstance(ctype, ct.BoolType)
        self.signed = ct.is_signed_type(ctype, profile)
        # The message `_read_binding` raises on an uninitialized read of this
        # binding; None when the uninit side condition does not apply
        # (character types stay exempt, matching the walker).
        if ctype.is_scalar and not ct.is_character_type(ctype):
            self.read_msg = (
                "Read of an uninitialized (indeterminate) value " f"of type {ctype}."
            )
        else:
            self.read_msg = None


class _MemVar:
    """A memory-resident variable (local/global array, global scalar)."""

    __slots__ = (
        "slot", "ctype", "is_array", "elem", "esize", "smode", "length", "info"
    )

    def __init__(
        self, slot: int, ctype: ct.CType, profile: ct.ImplementationProfile
    ) -> None:
        self.slot = slot
        self.ctype = ctype
        self.is_array = isinstance(ctype, ct.ArrayType)
        elem = ctype.element if self.is_array else ctype
        self.elem = elem
        self.esize = ct.size_of(elem, profile)
        self.length = ctype.length if self.is_array else None
        if isinstance(elem, ct.BoolType):
            self.smode = _SMODE_BOOL
        elif ct.is_signed_type(elem, profile):
            self.smode = _SMODE_SIGNED
        else:
            self.smode = _SMODE_UNSIGNED
        # Slow-path info: everything vm._slow_* needs to rebuild the exact
        # lowered access (access plan fields + element type + uninit flag).
        uninit = elem.is_scalar and not ct.is_character_type(elem)
        try:
            align = ct.align_of(elem, profile)
        except ct.LayoutError:
            align = 1
        from repro.core.lowering import _int_conversion_plan
        self.info = (
            elem,
            self.esize,
            align,
            uninit,
            elem.const,
            _int_conversion_plan(elem, profile),
        )


class _Value:
    """Compile-time description of an expression result."""

    __slots__ = ("reg", "ctype", "read_msg", "read_line")

    def __init__(
        self,
        reg: int,
        ctype: Optional[ct.CType],
        read_msg: Optional[str] = None,
        read_line: int = 0,
    ) -> None:
        self.reg = reg
        self.ctype = ctype  # None: void (discard-only)
        self.read_msg = read_msg  # uninit-read message of a direct var read
        self.read_line = read_line  # the read site (where lowered reports)


_BAD = object()  # scope marker: name exists but is not natively accessible


class _FnCompiler:
    """Compiles one function definition to :class:`FnCode`.

    Raises :class:`_Unsupported` as soon as the body leaves the native
    subset; the caller then simply omits the function from the program.
    """

    def __init__(
        self,
        definition: c_ast.FunctionDef,
        unit_globals: dict,
        unit_functions: dict,
        options: CheckerOptions,
        order_mode: int,
        L: LoweringContext,
    ) -> None:
        self.definition = definition
        self.unit_globals = unit_globals  # name -> CType (objects)
        self.unit_functions = unit_functions  # name -> FunctionType
        self.options = options
        self.profile = options.profile
        self.order_mode = order_mode
        self.L = L
        self.code: list = []
        self.scopes: list[dict] = [{}]
        self.n_regs = 0
        self.n_slots = 0
        self.consts: dict[int, int] = {}
        self.pending_steps = 0
        self.dirty = False  # memory locs possibly nonempty
        self.pending_names: set[str] = set()  # register writes this region
        self.loop_stack: list[tuple] = []  # (break_l, cont_l, scope_depth)
        self.labels: dict[int, int] = {}  # label id -> pc
        self.next_label = 0
        self.global_slots: dict[str, _MemVar] = {}
        self.check_seq = options.check_sequencing
        self.check_uninit = options.check_uninitialized

    # -- infrastructure ----------------------------------------------------

    def new_reg(self) -> int:
        reg = self.n_regs
        self.n_regs += 1
        return reg

    def const_reg(self, value: int) -> int:
        # Constants live in registers pre-loaded by ``r_init``; they are
        # only ever read, so one register per distinct value suffices.
        reg = self.consts.get(value)
        if reg is None:
            reg = self.new_reg()
            self.consts[value] = reg
        return reg

    def new_label(self) -> int:
        label = self.next_label
        self.next_label = 1 + label
        return label

    def bind(self, label: int) -> None:
        self.flush_steps()
        self.labels[label] = len(self.code)

    def emit(self, ins: tuple) -> None:
        self.code.append(ins)

    def flush_steps(self) -> None:
        if self.pending_steps:
            self.emit((OP_STEP, self.pending_steps))
            self.pending_steps = 0

    def emit_jmp(self, label: int) -> None:
        self.flush_steps()
        self.emit((OP_JMP, label))

    def emit_jz(self, value: _Value, label: int, line: int) -> None:
        self.flush_steps()
        self.emit((OP_JZ, value.reg, label, line, value.read_msg, value.read_line))

    def emit_jnz(self, value: _Value, label: int, line: int) -> None:
        self.flush_steps()
        self.emit((OP_JNZ, value.reg, label, line, value.read_msg, value.read_line))

    def emit_seqpt(self) -> None:
        """A lowered ``memory.sequence_point()`` site."""
        if self.dirty:
            self.emit((OP_SEQPT,))
            self.dirty = False
        self.pending_names.clear()

    def protect_read(self, value: _Value, mark: int) -> None:
        """Eagerly check a deferred register read overtaken by later code.

        A direct register read costs no instruction; its uninitialized-read
        check rides along to the consumer.  That is only report-order-safe
        while nothing between the read site and the consumer can raise.
        When a potentially raising instruction was emitted after ``mark``
        (the end of the read's own stream) — a sibling operand with a
        bounds check, a folded-UB raise, a call — the lowered engine would
        report the read *first*, so insert the check eagerly at ``mark``.
        """
        if value.read_msg is None or not self.check_uninit:
            return
        if all(ins[0] in _SAFE_OPS for ins in self.code[mark:]):
            return
        self.code.insert(mark, (OP_RDCHK, value.reg, value.read_msg, value.read_line))
        for label, pc in self.labels.items():
            if pc >= mark:
                self.labels[label] = pc + 1
        value.read_msg = None

    def snapshot(self, value: _Value, mark: int) -> _Value:
        """Copy a held register value that later code clobbers.

        A variable read costs no instruction — the value IS the variable's
        register.  When a sibling subtree compiled after it assigns that
        same variable (``i + (i = 2)``), the register no longer holds the
        value the earlier operand computed by the time the consumer reads
        it.  Scan the code emitted since ``mark`` (the end of the value's
        own stream) for a write to the register; if one exists, insert a
        MOV into a fresh temporary at ``mark`` — before the clobbering
        stream runs — and hand the consumer the temporary.  No-op, and no
        run-time cost, in the overwhelmingly common unclobbered case.
        """
        for ins in self.code[mark:]:
            for field in _DST_FIELDS.get(ins[0], ()):
                if ins[field] == value.reg:
                    break
            else:
                continue
            break
        else:
            return value
        temp = self.new_reg()
        self.code.insert(mark, (OP_MOV, temp, value.reg))
        for label, pc in self.labels.items():
            if pc >= mark:
                self.labels[label] = pc + 1
        return _Value(temp, value.ctype, value.read_msg, value.read_line)

    # -- static sequencing of register operations --------------------------
    #
    # The lowered engine detects unsequenced conflicts through the byte
    # locations of *memory* writes.  Register variables never touch memory
    # here, so conflicts between register operations are resolved at compile
    # time instead: a read or write of a register written earlier in the
    # same region *may* be the conflict the generic path reports — fall
    # back and let it.

    def sim_read(self, name: str) -> None:
        if self.check_seq and name in self.pending_names:
            raise _Unsupported("potentially unsequenced register read")

    def sim_write(self, name: str) -> None:
        if self.check_seq:
            if name in self.pending_names:
                raise _Unsupported("potentially unsequenced register write")
            self.pending_names.add(name)

    # -- scope handling ----------------------------------------------------

    def lookup(self, name: str):
        for scope in reversed(self.scopes):
            var = scope.get(name)
            if var is not None:
                return var
        var = self.global_slots.get(name)
        if var is not None:
            return var
        gtype = self.unit_globals.get(name)
        if gtype is not None:
            if isinstance(gtype, ct.ArrayType):
                if gtype.length is None or not isinstance(
                    gtype.element, _FLAT_INT_TYPES
                ):
                    raise _Unsupported(f"global '{name}' outside native subset")
            elif not isinstance(gtype, _FLAT_INT_TYPES):
                raise _Unsupported(f"global '{name}' outside native subset")
            var = _MemVar(self.new_slot(), gtype, self.profile)
            self.global_slots[name] = var
            return var
        return None

    def new_slot(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    # -- entry point -------------------------------------------------------

    def compile(self) -> FnCode:
        definition = self.definition
        ftype = definition.type
        if not isinstance(ftype, ct.FunctionType) or ftype.variadic:
            raise _Unsupported("variadic or untyped definition")
        if definition.body is None:
            raise _Unsupported("definition without a body")
        rtype = ftype.return_type
        if not (rtype.is_void or isinstance(rtype, _FLAT_INT_TYPES)):
            raise _Unsupported("non-flat return type")
        # Parameters: flat scalars become registers bound from the freshly
        # written parameter objects; any other parameter type poisons its
        # name (touching it falls back) but not the function.
        scope = self.scopes[0]
        for index, param_type in enumerate(ftype.parameters):
            if index >= len(definition.parameter_names):
                raise _Unsupported("unnamed parameter")
            name = definition.parameter_names[index]
            if param_type.is_void:
                continue
            if isinstance(param_type, _FLAT_INT_TYPES):
                var = _RegVar(self.new_reg(), param_type, self.profile)
                scope[name] = var
                self.emit((OP_BINDR, var.reg, name, var.size, var.signed, var.is_bool))
            else:
                scope[name] = _BAD
        # The function-body compound charges no step and pushes no scope
        # (LoweredFunction.run_body runs it with new_scope=False).
        for item in definition.body.items:
            self.compile_block_item(item)
        self.flush_steps()
        self.emit((OP_RET, -1, None, None, 0))
        code = self._patch_jumps()
        r_init = [UNINIT] * self.n_regs
        for value, reg in self.consts.items():
            r_init[reg] = value
        return FnCode(
            definition.name,
            code,
            self.n_regs,
            tuple(r_init),
            self.n_slots,
            rtype,
            self.options.max_steps,
        )

    def _patch_jumps(self) -> tuple:
        labels = self.labels
        patched = []
        for ins in self.code:
            op = ins[0]
            if op == OP_JMP:
                patched.append((op, labels[ins[1]]))
            elif op == OP_JZ or op == OP_JNZ:
                patched.append((op, ins[1], labels[ins[2]], ins[3], ins[4], ins[5]))
            else:
                patched.append(ins)
        return tuple(patched)

    # -- statements --------------------------------------------------------

    def compile_block_item(self, item) -> None:
        if isinstance(item, c_ast.Declaration):
            self.compile_declaration(item)
        elif isinstance(item, c_ast.StaticAssert):
            self.pending_steps += 1  # lowered charges the node, then no-ops
        elif isinstance(item, c_ast.Statement):
            self.compile_statement(item)
        else:
            raise _Unsupported(f"block item {type(item).__name__}")

    def compile_statement(self, stmt) -> None:
        handler = self._STMTS.get(type(stmt))
        if handler is None:
            raise _Unsupported(f"statement {type(stmt).__name__}")
        handler(self, stmt)

    def stmt_expression(self, stmt: c_ast.ExpressionStmt) -> None:
        self.pending_steps += 1
        if stmt.expression is not None:
            value = self.compile_expr(stmt.expression, discard=True)
            self._discard_check(value, stmt.expression)
        self.emit_seqpt()

    def _discard_check(self, value: _Value, expr) -> None:
        """A discarded value whose computation was a bare variable read still
        raises the lowered uninitialized-read error; check it explicitly."""
        if value.read_msg is not None and self.check_uninit:
            self.emit((OP_RDCHK, value.reg, value.read_msg, value.read_line))

    def stmt_compound(self, stmt: c_ast.Compound) -> None:
        self.pending_steps += 1
        self.push_scope()
        try:
            for item in stmt.items:
                self.compile_block_item(item)
        finally:
            self.pop_scope()

    def push_scope(self) -> None:
        self.scopes.append({})
        self.emit((OP_PUSHSC,))

    def pop_scope(self) -> None:
        self.scopes.pop()
        self.emit((OP_POPSC,))

    def stmt_if(self, stmt: c_ast.If) -> None:
        self.pending_steps += 1
        condition = self.compile_expr(stmt.condition)
        self.emit_seqpt()
        pending_before = set(self.pending_names)
        else_label = self.new_label()
        self.emit_jz(condition, else_label, stmt.line)
        self.compile_statement(stmt.then)
        dirty_then = self.dirty
        pending_then = self.pending_names
        if stmt.otherwise is not None:
            end_label = self.new_label()
            self.emit_jmp(end_label)
            self.bind(else_label)
            self.dirty = False
            self.pending_names = set(pending_before)
            self.compile_statement(stmt.otherwise)
            self.bind(end_label)
        else:
            self.bind(else_label)
            self.pending_names = set(pending_before)
        self.dirty = self.dirty or dirty_then
        self.pending_names |= pending_then

    def stmt_while(self, stmt: c_ast.While) -> None:
        self.pending_steps += 1
        top = self.new_label()
        end = self.new_label()
        self.bind(top)
        self.pending_steps += 1  # per-iteration charge
        condition = self.compile_expr(stmt.condition)
        self.emit_seqpt()
        self.emit_jz(condition, end, stmt.line)
        self.loop_stack.append((end, top, len(self.scopes)))
        self.compile_statement(stmt.body)
        self.loop_stack.pop()
        self.emit_jmp(top)
        self.bind(end)
        self.dirty = True  # conservative across the loop join
        self.pending_names.clear()

    def stmt_dowhile(self, stmt: c_ast.DoWhile) -> None:
        self.pending_steps += 1
        top = self.new_label()
        cont = self.new_label()
        end = self.new_label()
        self.bind(top)
        self.pending_steps += 1
        self.loop_stack.append((end, cont, len(self.scopes)))
        self.compile_statement(stmt.body)
        self.loop_stack.pop()
        self.bind(cont)
        condition = self.compile_expr(stmt.condition)
        self.emit_seqpt()
        self.emit_jnz(condition, top, stmt.line)
        self.bind(end)
        self.dirty = True
        self.pending_names.clear()

    def stmt_for(self, stmt: c_ast.For) -> None:
        self.pending_steps += 1
        self.push_scope()
        try:
            init = stmt.init
            if isinstance(init, c_ast.Declaration):
                self.compile_declaration(init)
            elif isinstance(init, list):
                for declaration in init:
                    self.compile_declaration(declaration)
            elif init is not None:
                value = self.compile_expr(init, discard=True)
                self._discard_check(value, init)
                self.emit_seqpt()
            top = self.new_label()
            cont = self.new_label()
            end = self.new_label()
            self.bind(top)
            self.pending_steps += 1
            if stmt.condition is not None:
                condition = self.compile_expr(stmt.condition)
                self.emit_seqpt()
                self.emit_jz(condition, end, stmt.line)
            self.loop_stack.append((end, cont, len(self.scopes)))
            self.compile_statement(stmt.body)
            self.loop_stack.pop()
            self.bind(cont)
            if stmt.step is not None:
                value = self.compile_expr(stmt.step, discard=True)
                self._discard_check(value, stmt.step)
                self.emit_seqpt()
            self.emit_jmp(top)
            self.bind(end)
            self.dirty = True
            self.pending_names.clear()
        finally:
            self.pop_scope()

    def stmt_break(self, stmt: c_ast.Break) -> None:
        if not self.loop_stack:
            raise _Unsupported("break outside a native loop")
        self.pending_steps += 1
        break_label, _cont, scope_depth = self.loop_stack[-1]
        self.flush_steps()
        for _ in range(len(self.scopes) - scope_depth):
            self.emit((OP_POPSC,))
        self.emit_jmp(break_label)

    def stmt_continue(self, stmt: c_ast.Continue) -> None:
        if not self.loop_stack:
            raise _Unsupported("continue outside a native loop")
        self.pending_steps += 1
        _break, cont_label, scope_depth = self.loop_stack[-1]
        self.flush_steps()
        for _ in range(len(self.scopes) - scope_depth):
            self.emit((OP_POPSC,))
        self.emit_jmp(cont_label)

    def stmt_return(self, stmt: c_ast.Return) -> None:
        self.pending_steps += 1
        if stmt.value is None:
            self.emit_seqpt()
            self.flush_steps()
            self.emit((OP_RET, -1, None, None, 0))
            return
        value = self.compile_expr(stmt.value)
        if value.ctype is None:
            raise _Unsupported("returning a void value")
        self.emit_seqpt()
        self.flush_steps()
        self.emit((OP_RET, value.reg, value.ctype, value.read_msg, value.read_line))

    def stmt_static_assert(self, stmt: c_ast.StaticAssert) -> None:
        self.pending_steps += 1  # lowered charges the node, then no-ops

    _STMTS = {}

    # -- declarations ------------------------------------------------------

    def compile_declaration(self, decl: c_ast.Declaration) -> None:
        if decl.storage not in (None, "auto", "register"):
            raise _Unsupported(f"storage class {decl.storage!r}")
        ctype = decl.type
        if ctype is None or isinstance(ctype, ct.FunctionType):
            raise _Unsupported("local function declaration")
        self.pending_steps += 1  # the Declaration statement node
        if isinstance(ctype, _FLAT_INT_TYPES):
            self._declare_register(decl, ctype)
            return
        if (
            isinstance(ctype, ct.ArrayType)
            and isinstance(ctype.element, _FLAT_INT_TYPES)
            and ctype.length is not None
        ):
            self._declare_array(decl, ctype)
            return
        raise _Unsupported(f"declaration of type {ctype}")

    def _declare_register(self, decl: c_ast.Declaration, ctype: ct.CType) -> None:
        initializer = decl.initializer
        var = _RegVar(self.new_reg(), ctype, self.profile)
        if initializer is None or self._walker_safe(initializer):
            # The shared declaration executor runs the initializer (it
            # cannot touch registerized state — walker-safety was checked)
            # and charges the walker's per-node steps itself; the register
            # then binds from the freshly initialized object bytes.
            self.flush_steps()
            self.emit((OP_DECL, decl, -1, decl.line))
            self.emit((OP_BINDR, var.reg, decl.name, var.size, var.signed, var.is_bool))
            self.scopes[-1][decl.name] = var
            self.dirty = False  # exec_local_declaration sequence-points
            self.pending_names.clear()
            return
        if isinstance(initializer, c_ast.InitList):
            raise _Unsupported("scalar initializer list with register reads")
        # Initializer references registerized state: run the declaration
        # without it, then compile the initialization natively (same step
        # charges, same checks, register stays authoritative).
        bare = dc_replace(decl, initializer=None)
        self.flush_steps()
        self.emit((OP_DECL, bare, -1, decl.line))
        # Declare before compiling the initializer: C scopes the name from
        # its declarator on, so `int x = x;` reads the fresh (indeterminate) x.
        self.scopes[-1][decl.name] = var
        if ctype.const:
            raise _Unsupported("const register initializer in native path")
        value = self.compile_expr(initializer)
        converted = self.convert_to(value, ctype, decl.line)
        self.emit((OP_MOV, var.reg, converted.reg))
        self.sim_write(decl.name)
        self.emit_seqpt()

    def _declare_array(self, decl: c_ast.Declaration, ctype: ct.ArrayType) -> None:
        initializer = decl.initializer
        if initializer is not None and not self._walker_safe(initializer):
            raise _Unsupported("array initializer reads registerized state")
        var = _MemVar(self.new_slot(), ctype, self.profile)
        self.flush_steps()
        self.emit((OP_DECL, decl, var.slot, decl.line))
        self.scopes[-1][decl.name] = var
        self.dirty = False
        self.pending_names.clear()

    def _walker_safe(self, expr) -> bool:
        """True when the shared (walker) executor can run ``expr`` without
        observing registerized state: no identifier in it names a register
        variable.  Memory-resident variables, globals, calls, and literals
        are coherent either way."""
        for node in c_ast.walk(expr):
            if isinstance(node, c_ast.Identifier):
                for scope in reversed(self.scopes):
                    var = scope.get(node.name)
                    if var is not None:
                        if isinstance(var, _RegVar) or var is _BAD:
                            return False
                        break
        return True

    # -- expressions -------------------------------------------------------

    def compile_expr(self, expr, discard: bool = False) -> _Value:
        L = self.L
        if L.fold:
            try:
                folded = _try_fold(expr, L)
            except _FoldUB as fold_error:
                self.pending_steps += _subtree_step_cost(expr)
                self.flush_steps()
                self.emit(
                    (OP_RAISE, fold_error.kind, fold_error.message, fold_error.line)
                )
                return _Value(self.const_reg(0), ct.INT)
            if folded is not None:
                self.pending_steps += _subtree_step_cost(expr)
                return _Value(self.const_reg(folded.value), folded.type)
        handler = self._EXPRS.get(type(expr))
        if handler is None:
            raise _Unsupported(f"expression {type(expr).__name__}")
        return handler(self, expr, discard)

    def expr_int_literal(self, expr: c_ast.IntegerLiteral, discard) -> _Value:
        # Only reached with folding off (never in practice for the compiled
        # engine, which compiles with the folding context); keep it correct.
        self.pending_steps += 1
        return _Value(self.const_reg(expr.value), expr.type or ct.INT)

    def expr_char_literal(self, expr: c_ast.CharLiteral, discard) -> _Value:
        self.pending_steps += 1
        return _Value(self.const_reg(expr.value), ct.INT)

    def expr_string_literal(self, expr: c_ast.StringLiteral, discard) -> _Value:
        self.pending_steps += 1
        dst = self.new_reg()
        self.emit((OP_STR, dst, expr.value))
        # The register holds a boxed PointerValue; only the call-argument
        # path may consume it (enforced by ctype=None handling elsewhere).
        return _Value(dst, ct.PointerType(pointee=ct.CHAR))

    def expr_identifier(self, expr: c_ast.Identifier, discard) -> _Value:
        self.pending_steps += 1
        var = self.lookup(expr.name)
        if var is None or var is _BAD:
            raise _Unsupported(f"identifier '{expr.name}' outside native subset")
        if isinstance(var, _RegVar):
            self.sim_read(expr.name)
            return _Value(var.reg, var.ctype.unqualified(), var.read_msg, expr.line)
        if var.is_array:
            raise _Unsupported("array value used outside subscript/call")
        dst = self.new_reg()
        self.emit(
            (
                OP_LDG,
                dst,
                var.slot,
                var.esize,
                var.smode,
                expr.line,
                (expr.name, var.info),
            )
        )
        return _Value(dst, var.elem.unqualified())

    def expr_unary(self, expr: c_ast.UnaryOp, discard) -> _Value:
        op = expr.op
        if op in ("++pre", "--pre", "++post", "--post"):
            return self._compile_incdec(expr, discard)
        if op == "!":
            self.pending_steps += 1
            value = self.compile_expr(expr.operand)
            self._require_flat(value)
            dst = self.new_reg()
            self.emit(
                (OP_NOT, dst, value.reg, expr.line, value.read_msg, value.read_line)
            )
            return _Value(dst, ct.INT)
        if op in ("+", "-", "~"):
            self.pending_steps += 1
            value = self.compile_expr(expr.operand)
            self._require_flat(value)
            planned = raw_unary_plan(op, value.ctype, self.options, expr.line)
            if planned is None:
                raise _Unsupported(f"unary {op} on {value.ctype}")
            plan, result_type = planned
            dst = self.new_reg()
            slow = (
                f"operand of unary {op}",
                expr.line,
                value.ctype,
                value.read_msg,
                value.read_line,
                plan,
            )
            self.emit((OP_UNOP, dst, value.reg, plan, slow))
            return _Value(dst, result_type)
        raise _Unsupported(f"unary operator {op!r}")

    def _require_flat(self, value: _Value) -> None:
        if value.ctype is None or not isinstance(value.ctype, _FLAT_INT_TYPES):
            raise _Unsupported("non-flat operand")

    def _compile_incdec(self, expr: c_ast.UnaryOp, discard) -> _Value:
        delta = 1 if expr.op.startswith("++") else -1
        is_post = expr.op.endswith("post")
        operand = expr.operand
        self.pending_steps += 1
        if isinstance(operand, c_ast.Identifier):
            var = self.lookup(operand.name)
            if var is None or var is _BAD:
                raise _Unsupported("incdec target outside native subset")
            if isinstance(var, _RegVar):
                self.pending_steps += 1  # the binding resolve step
                if var.ctype.const:
                    raise _Unsupported("incdec on const lvalue")
                plan = raw_incdec_plan(delta, var.ctype, self.options, expr.line)
                if plan is None:
                    raise _Unsupported("incdec plan unavailable")
                self.sim_read(operand.name)
                self.sim_write(operand.name)
                old_dst = self.new_reg() if is_post else -1
                slow = (expr.line, var.ctype.unqualified(), var.read_msg, plan)
                self.emit((OP_INC, var.reg, old_dst, plan, slow))
                result_reg = old_dst if is_post else var.reg
                return _Value(result_reg, var.ctype.unqualified())
            # Memory scalar (global): load, plan, store.
            if var.is_array:
                raise _Unsupported("incdec on an array")
            if var.elem.const:
                raise _Unsupported("incdec on const lvalue")
            self.pending_steps += 1
            old = self.new_reg()
            self.emit(
                (
                    OP_LDG,
                    old,
                    var.slot,
                    var.esize,
                    var.smode,
                    expr.line,
                    (operand.name, var.info),
                )
            )
            plan = raw_incdec_plan(delta, var.elem, self.options, expr.line)
            if plan is None:
                raise _Unsupported("incdec plan unavailable")
            new = self.new_reg()
            slow = (
                "operand of ++/--", expr.line, var.elem.unqualified(), None, 0, plan
            )
            self.emit((OP_UNOP, new, old, plan, slow))
            self._emit_store_global(var, operand.name, _Value(new, var.elem), expr.line)
            return _Value(old if is_post else new, var.elem.unqualified())
        if isinstance(operand, c_ast.ArraySubscript):
            self.pending_steps += 1  # subscript lvalue node
            addr, var = self._compile_subscript_address(operand)
            old = self.new_reg()
            self.emit((OP_LDA, old, addr, var.esize, var.smode, operand.line, var.info))
            if var.elem.const:
                raise _Unsupported("incdec on const element")
            plan = raw_incdec_plan(delta, var.elem, self.options, expr.line)
            if plan is None:
                raise _Unsupported("incdec plan unavailable")
            new = self.new_reg()
            slow = (
                "operand of ++/--", expr.line, var.elem.unqualified(), None, 0, plan
            )
            self.emit((OP_UNOP, new, old, plan, slow))
            self._emit_store_element(var, addr, _Value(new, var.elem), expr.line)
            return _Value(old if is_post else new, var.elem.unqualified())
        raise _Unsupported("incdec on unsupported lvalue")

    def expr_binary(self, expr: c_ast.BinaryOp, discard) -> _Value:
        op = expr.op
        if op == "&&" or op == "||":
            return self._compile_logical(expr)
        self.pending_steps += 1
        if self.order_mode == 0:
            left = self.compile_expr(expr.left)
            mark = len(self.code)
            right = self.compile_expr(expr.right)
            grown = len(self.code)
            self.protect_read(left, mark)
            left = self.snapshot(left, mark + (len(self.code) - grown))
        else:
            right = self.compile_expr(expr.right)
            mark = len(self.code)
            left = self.compile_expr(expr.left)
            grown = len(self.code)
            self.protect_read(right, mark)
            right = self.snapshot(right, mark + (len(self.code) - grown))
        self._require_flat(left)
        self._require_flat(right)
        planned = raw_binary_plan(op, left.ctype, right.ctype, self.options, expr.line)
        if planned is None:
            raise _Unsupported(f"binary {op} on {left.ctype}, {right.ctype}")
        plan, result_type = planned
        dst = self.new_reg()
        slow = (
            op,
            expr.line,
            left.ctype,
            right.ctype,
            left.read_msg,
            left.read_line,
            right.read_msg,
            right.read_line,
            plan,
        )
        self.emit((OP_BINOP, dst, left.reg, right.reg, plan, slow))
        return _Value(dst, result_type)

    def _compile_logical(self, expr: c_ast.BinaryOp) -> _Value:
        is_and = expr.op == "&&"
        self.pending_steps += 1
        left = self.compile_expr(expr.left)
        self._require_flat(left)
        self.emit_seqpt()
        dst = self.new_reg()
        short_label = self.new_label()
        end_label = self.new_label()
        pending_before = set(self.pending_names)
        if is_and:
            self.emit_jz(left, short_label, expr.line)
        else:
            self.emit_jnz(left, short_label, expr.line)
        right = self.compile_expr(expr.right)
        self._require_flat(right)
        self.emit((OP_BOOL, dst, right.reg, expr.line, right.read_msg, right.read_line))
        self.emit_jmp(end_label)
        self.bind(short_label)
        self.emit((OP_LOADI, dst, 0 if is_and else 1))
        self.bind(end_label)
        self.pending_names |= pending_before
        return _Value(dst, ct.INT)

    def expr_conditional(self, expr: c_ast.Conditional, discard) -> _Value:
        self.pending_steps += 1
        condition = self.compile_expr(expr.condition)
        self.emit_seqpt()
        pending_before = set(self.pending_names)
        else_label = self.new_label()
        end_label = self.new_label()
        self.emit_jz(condition, else_label, expr.line)
        then_value = self.compile_expr(expr.then, discard=discard)
        pending_then = self.pending_names
        dirty_then = self.dirty
        dst = self.new_reg()
        self._emit_arm_result(then_value, dst, expr.then)
        self.emit_jmp(end_label)
        self.bind(else_label)
        self.pending_names = set(pending_before)
        self.dirty = False
        else_value = self.compile_expr(expr.otherwise, discard=discard)
        self._emit_arm_result(else_value, dst, expr.otherwise)
        self.bind(end_label)
        self.pending_names |= pending_then
        self.dirty = self.dirty or dirty_then
        if then_value.ctype is None or else_value.ctype is None:
            if discard and then_value.ctype is None and else_value.ctype is None:
                return _Value(dst, None)
            raise _Unsupported("void conditional arm")
        if then_value.ctype != else_value.ctype:
            raise _Unsupported("conditional arms of differing types")
        return _Value(dst, then_value.ctype)

    def _emit_arm_result(self, value: _Value, dst: int, node) -> None:
        if value.ctype is None:
            return
        if value.read_msg is not None and self.check_uninit:
            self.emit((OP_RDCHK, value.reg, value.read_msg, value.read_line))
        if value.reg != dst:
            self.emit((OP_MOV, dst, value.reg))

    def expr_comma(self, expr: c_ast.Comma, discard) -> _Value:
        self.pending_steps += 1
        left = self.compile_expr(expr.left, discard=True)
        self._discard_check(left, expr.left)
        self.emit_seqpt()
        return self.compile_expr(expr.right, discard=discard)

    def expr_cast(self, expr: c_ast.Cast, discard) -> _Value:
        target = expr.target_type
        if isinstance(expr.operand, c_ast.InitList):
            raise _Unsupported("compound literal")
        self.pending_steps += 1
        value = self.compile_expr(
            expr.operand, discard=target is not None and target.is_void
        )
        if target is not None and target.is_void:
            self._discard_check(value, expr.operand)
            return _Value(value.reg, None)
        if not isinstance(target, _FLAT_INT_TYPES):
            raise _Unsupported(f"cast to {target}")
        self._require_flat(value)
        plan = raw_conversion_plan(target, self.profile)
        if plan is None:
            raise _Unsupported("cast plan unavailable")
        dst = self.new_reg()
        slow = (target.unqualified(), expr.line, value.read_msg, value.read_line)
        self.emit((OP_CONV, dst, value.reg, plan, slow))
        return _Value(dst, target.unqualified())

    def expr_subscript(self, expr: c_ast.ArraySubscript, discard) -> _Value:
        self.pending_steps += 1
        reg, var = self._compile_subscript_load(expr)
        return _Value(reg, var.elem.unqualified())

    def _subscript_parts(self, expr: c_ast.ArraySubscript):
        """Resolve which side is the array; keep syntactic evaluation order."""
        def array_var(node):
            if isinstance(node, c_ast.Identifier):
                var = self.lookup(node.name)
                if isinstance(var, _MemVar) and var.is_array:
                    return var
            return None
        a_var = array_var(expr.array)
        i_var = array_var(expr.index)
        if a_var is not None and i_var is None:
            return a_var, expr.array, expr.index, False
        if a_var is None and i_var is not None:
            return i_var, expr.index, expr.array, True
        raise _Unsupported("subscript outside native subset")

    def _compile_subscript_load(self, expr: c_ast.ArraySubscript):
        var, array_node, index_node, swapped = self._subscript_parts(expr)
        index = self._compile_subscript_index(
            expr, var, array_node, index_node, swapped
        )
        dst = self.new_reg()
        self.emit(
            (
                OP_LDE,
                dst,
                var.slot,
                index.reg,
                var.esize,
                var.smode,
                expr.line,
                (
                    array_node.name,
                    index.ctype,
                    index.read_msg,
                    index.read_line,
                    var.info,
                ),
            )
        )
        return dst, var

    def _compile_subscript_index(
        self, expr, var, array_node, index_node, swapped
    ) -> _Value:
        # The array identifier charges one step and decays (no read); the
        # index expression runs per the order mode, in syntactic positions.
        if self.order_mode == 0:
            if swapped:
                index = self.compile_expr(index_node)
                self.pending_steps += 1
            else:
                self.pending_steps += 1
                index = self.compile_expr(index_node)
        else:
            if swapped:
                self.pending_steps += 1
                index = self.compile_expr(index_node)
            else:
                index = self.compile_expr(index_node)
                self.pending_steps += 1
        self._require_flat(index)
        return index

    def _compile_subscript_address(self, expr: c_ast.ArraySubscript):
        """CHKE: resolve the element address (pointer-add checks) now."""
        var, array_node, index_node, swapped = self._subscript_parts(expr)
        index = self._compile_subscript_index(
            expr, var, array_node, index_node, swapped
        )
        addr = self.new_reg()
        self.emit(
            (
                OP_CHKE,
                addr,
                var.slot,
                index.reg,
                var.esize,
                expr.line,
                (
                    array_node.name,
                    index.ctype,
                    index.read_msg,
                    index.read_line,
                    var.info,
                ),
            )
        )
        return addr, var

    def expr_assignment(self, expr: c_ast.Assignment, discard) -> _Value:
        target = expr.target
        if isinstance(target, c_ast.Identifier):
            var = self.lookup(target.name)
            if var is None or var is _BAD:
                raise _Unsupported("assignment target outside native subset")
            if isinstance(var, _RegVar):
                return self._assign_register(expr, var)
            if var.is_array:
                raise _Unsupported("assignment to an array")
            return self._assign_global(expr, var)
        if isinstance(target, c_ast.ArraySubscript):
            return self._assign_element(expr)
        raise _Unsupported("assignment target outside native subset")

    def _assign_register(self, expr: c_ast.Assignment, var: _RegVar) -> _Value:
        name = expr.target.name
        if var.ctype.const:
            raise _Unsupported("assignment to const register")
        self.pending_steps += 1
        if expr.op == "=":
            if self.order_mode == 0:
                self.pending_steps += 1  # binding resolve
                value = self.compile_expr(expr.value)
            else:
                value = self.compile_expr(expr.value)
                self.pending_steps += 1
            converted = self.convert_to(value, var.ctype, expr.line)
            self.sim_write(name)
            if converted.reg != var.reg:
                self.emit((OP_MOV, var.reg, converted.reg))
            return _Value(var.reg, var.ctype.unqualified())
        # Compound assignment: resolve, read, rhs, op, convert, write.
        op = expr.op[:-1]
        self.pending_steps += 1  # binding resolve
        self.sim_read(name)
        old = _Value(var.reg, var.ctype.unqualified(), var.read_msg, expr.line)
        mark = len(self.code)
        rhs = self.compile_expr(expr.value)
        self.protect_read(old, mark)
        self._require_flat(rhs)
        planned = raw_binary_plan(op, old.ctype, rhs.ctype, self.options, expr.line)
        if planned is None:
            raise _Unsupported(f"compound {op} plan unavailable")
        plan, result_type = planned
        result = self.new_reg()
        slow = (
            op,
            expr.line,
            old.ctype,
            rhs.ctype,
            old.read_msg,
            old.read_line,
            rhs.read_msg,
            rhs.read_line,
            plan,
        )
        self.emit((OP_BINOP, result, old.reg, rhs.reg, plan, slow))
        converted = self.convert_to(_Value(result, result_type), var.ctype, expr.line)
        self.sim_write(name)
        if converted.reg != var.reg:
            self.emit((OP_MOV, var.reg, converted.reg))
        return _Value(var.reg, var.ctype.unqualified())

    def _assign_global(self, expr: c_ast.Assignment, var: _MemVar) -> _Value:
        name = expr.target.name
        if var.elem.const:
            raise _Unsupported("assignment to const global")
        self.pending_steps += 1
        if expr.op == "=":
            if self.order_mode == 0:
                self.pending_steps += 1
                value = self.compile_expr(expr.value)
            else:
                value = self.compile_expr(expr.value)
                self.pending_steps += 1
            converted = self.convert_to(value, var.elem, expr.line)
            self._emit_store_global(var, name, converted, expr.line)
            return _Value(converted.reg, var.elem.unqualified())
        op = expr.op[:-1]
        self.pending_steps += 1
        old_reg = self.new_reg()
        self.emit(
            (
                OP_LDG,
                old_reg,
                var.slot,
                var.esize,
                var.smode,
                expr.line,
                (name, var.info),
            )
        )
        old = _Value(old_reg, var.elem.unqualified())
        rhs = self.compile_expr(expr.value)
        self._require_flat(rhs)
        planned = raw_binary_plan(op, old.ctype, rhs.ctype, self.options, expr.line)
        if planned is None:
            raise _Unsupported(f"compound {op} plan unavailable")
        plan, result_type = planned
        result = self.new_reg()
        slow = (
            op,
            expr.line,
            old.ctype,
            rhs.ctype,
            None,
            0,
            rhs.read_msg,
            rhs.read_line,
            plan,
        )
        self.emit((OP_BINOP, result, old.reg, rhs.reg, plan, slow))
        converted = self.convert_to(_Value(result, result_type), var.elem, expr.line)
        self._emit_store_global(var, name, converted, expr.line)
        return _Value(converted.reg, var.elem.unqualified())

    def _assign_element(self, expr: c_ast.Assignment) -> _Value:
        target = expr.target
        self.pending_steps += 1  # the assignment node
        if expr.op == "=":
            if self.order_mode == 0:
                self.pending_steps += 1  # subscript lvalue node
                addr, var = self._compile_subscript_address(target)
                value = self.compile_expr(expr.value)
            else:
                value = self.compile_expr(expr.value)
                self.pending_steps += 1
                mark = len(self.code)
                addr, var = self._compile_subscript_address(target)
                grown = len(self.code)
                self.protect_read(value, mark)
                value = self.snapshot(value, mark + (len(self.code) - grown))
            if var.elem.const:
                raise _Unsupported("assignment to const element")
            converted = self.convert_to(value, var.elem, expr.line)
            self._emit_store_element(var, addr, converted, expr.line)
            return _Value(converted.reg, var.elem.unqualified())
        op = expr.op[:-1]
        self.pending_steps += 1  # subscript lvalue node (resolved first)
        addr, var = self._compile_subscript_address(target)
        if var.elem.const:
            raise _Unsupported("assignment to const element")
        old_reg = self.new_reg()
        self.emit((OP_LDA, old_reg, addr, var.esize, var.smode, target.line, var.info))
        old = _Value(old_reg, var.elem.unqualified())
        rhs = self.compile_expr(expr.value)
        self._require_flat(rhs)
        planned = raw_binary_plan(op, old.ctype, rhs.ctype, self.options, expr.line)
        if planned is None:
            raise _Unsupported(f"compound {op} plan unavailable")
        plan, result_type = planned
        result = self.new_reg()
        slow = (
            op,
            expr.line,
            old.ctype,
            rhs.ctype,
            None,
            0,
            rhs.read_msg,
            rhs.read_line,
            plan,
        )
        self.emit((OP_BINOP, result, old.reg, rhs.reg, plan, slow))
        converted = self.convert_to(_Value(result, result_type), var.elem, expr.line)
        self._emit_store_element(var, addr, converted, expr.line)
        return _Value(converted.reg, var.elem.unqualified())

    def _emit_store_global(
        self, var: _MemVar, name: str, value: _Value, line: int
    ) -> None:
        mask = (1 << (var.esize * 8)) - 1
        self.emit(
            (
                OP_STG,
                var.slot,
                value.reg,
                var.esize,
                mask,
                line,
                (name, self.check_seq, value.read_msg, value.read_line, var.info),
            )
        )
        if self.check_seq:
            self.dirty = True

    def _emit_store_element(
        self, var: _MemVar, addr: int, value: _Value, line: int
    ) -> None:
        mask = (1 << (var.esize * 8)) - 1
        self.emit(
            (
                OP_STE,
                addr,
                value.reg,
                var.esize,
                mask,
                line,
                (self.check_seq, value.read_msg, value.read_line, var.info),
            )
        )
        if self.check_seq:
            self.dirty = True

    def convert_to(self, value: _Value, target: ct.CType, line: int) -> _Value:
        """Convert a flat value to ``target`` (assignment conversion)."""
        self._require_flat(value)
        plan = raw_conversion_plan(target, self.profile)
        if plan is None:
            raise _Unsupported("conversion plan unavailable")
        dst = self.new_reg()
        slow = (target.unqualified(), line, value.read_msg, value.read_line)
        self.emit((OP_CONV, dst, value.reg, plan, slow))
        return _Value(dst, target.unqualified())

    def expr_call(self, expr: c_ast.Call, discard) -> _Value:
        function = expr.function
        if not isinstance(function, c_ast.Identifier):
            raise _Unsupported("call through a non-identifier designator")
        name = function.name
        # Compile-time designator resolution mirroring the lowered resolve:
        # a local or global *object* shadowing the name forces the function-
        # pointer path (unsupported); a unit function or builtin resolves.
        for scope in reversed(self.scopes):
            if name in scope:
                raise _Unsupported("call through a shadowed designator")
        if name in self.unit_globals:
            raise _Unsupported("call through an object designator")
        ftype = self.unit_functions.get(name)
        if ftype is None:
            if name not in BUILTIN_FUNCTIONS:
                # Undeclared: the lowered engine reports at run time, with
                # argument evaluation unreached; fall back to preserve that.
                raise _Unsupported(f"call to undeclared '{name}'")
        self.pending_steps += 1
        argument_values: list[Optional[_Value]] = [None] * len(expr.arguments)
        marks: list[int] = [0] * len(expr.arguments)
        if self.order_mode == 0:
            order = range(len(expr.arguments))
        else:
            order = range(len(expr.arguments) - 1, -1, -1)
        for position in order:
            argument_values[position] = self.compile_expr(expr.arguments[position])
            marks[position] = len(self.code)
        # Deferred read checks of earlier arguments must not be overtaken
        # by raising instructions in later arguments' streams (the call
        # itself checks the *surviving* deferred reads in argument order).
        # Latest stream first, so earlier insertion points stay valid; an
        # inserted check is itself a raising instruction, cascading the
        # protection to every argument evaluated before it.
        for position in sorted(range(len(marks)), key=marks.__getitem__, reverse=True):
            grown = len(self.code)
            self.protect_read(argument_values[position], marks[position])
            argument_values[position] = self.snapshot(
                argument_values[position], marks[position] + (len(self.code) - grown)
            )
        args = []
        for position, value in enumerate(argument_values):
            if value.ctype is None:
                raise _Unsupported("void argument")
            args.append((value.reg, value.ctype, value.read_msg, value.read_line))
        # Result typing: unit functions return their declared type; builtin
        # results are only usable when discarded (no static type available).
        if ftype is not None:
            rtype = ftype.return_type
        else:
            rtype = None
        if rtype is not None and isinstance(rtype, _FLAT_INT_TYPES):
            dst = self.new_reg()
            result = _Value(dst, rtype.unqualified())
        elif discard or (rtype is not None and rtype.is_void):
            dst = -1
            result = _Value(-1, None)
        else:
            raise _Unsupported("call result type outside native subset")
        self.flush_steps()
        self.emit((OP_CALL, dst, name, ftype, tuple(args), expr.line))
        # The call site runs a real sequence point before entering the
        # callee, which clears the sequencing window for register state
        # too.  Unit functions save/restore the (now empty) location set,
        # so memory is clean afterwards; a builtin may add new locations.
        self.pending_names.clear()
        self.dirty = ftype is None and self.check_seq
        return result

    _EXPRS = {}


_FnCompiler._STMTS = {
    c_ast.ExpressionStmt: _FnCompiler.stmt_expression,
    c_ast.Compound: _FnCompiler.stmt_compound,
    c_ast.If: _FnCompiler.stmt_if,
    c_ast.While: _FnCompiler.stmt_while,
    c_ast.DoWhile: _FnCompiler.stmt_dowhile,
    c_ast.For: _FnCompiler.stmt_for,
    c_ast.Break: _FnCompiler.stmt_break,
    c_ast.Continue: _FnCompiler.stmt_continue,
    c_ast.Return: _FnCompiler.stmt_return,
    c_ast.StaticAssert: _FnCompiler.stmt_static_assert,
}

_FnCompiler._EXPRS = {
    c_ast.IntegerLiteral: _FnCompiler.expr_int_literal,
    c_ast.CharLiteral: _FnCompiler.expr_char_literal,
    c_ast.StringLiteral: _FnCompiler.expr_string_literal,
    c_ast.Identifier: _FnCompiler.expr_identifier,
    c_ast.UnaryOp: _FnCompiler.expr_unary,
    c_ast.BinaryOp: _FnCompiler.expr_binary,
    c_ast.Assignment: _FnCompiler.expr_assignment,
    c_ast.Conditional: _FnCompiler.expr_conditional,
    c_ast.Comma: _FnCompiler.expr_comma,
    c_ast.Cast: _FnCompiler.expr_cast,
    c_ast.ArraySubscript: _FnCompiler.expr_subscript,
    c_ast.Call: _FnCompiler.expr_call,
}


# ---------------------------------------------------------------------------
# Unit compilation
# ---------------------------------------------------------------------------

_ORDER_MODES = {"left-to-right": 0, "right-to-left": 1}


def compile_unit_bytecode(
    unit: c_ast.TranslationUnit, options: CheckerOptions
) -> Optional[CompiledProgram]:
    """Compile every native-subset function of ``unit``; None if none fit.

    The evaluation order must be pre-resolved (fixed strategies only): the
    bytecode hard-codes operand order, so scripted/search strategies keep
    using the walker's decision points.
    """
    order_mode = _ORDER_MODES.get(options.evaluation_order)
    if order_mode is None:
        return None
    unit_globals: dict[str, ct.CType] = {}
    unit_functions: dict[str, ct.FunctionType] = {}
    definitions: list[c_ast.FunctionDef] = []
    for declaration in unit.declarations:
        if isinstance(declaration, c_ast.FunctionDef):
            if isinstance(declaration.type, ct.FunctionType):
                unit_functions[declaration.name] = declaration.type
                if declaration.body is not None:
                    definitions.append(declaration)
        elif isinstance(declaration, c_ast.Declaration):
            if declaration.storage == "typedef":
                continue
            if isinstance(declaration.type, ct.FunctionType):
                unit_functions.setdefault(declaration.name, declaration.type)
            elif declaration.type is not None:
                unit_globals[declaration.name] = declaration.type
    functions: dict[str, FnCode] = {}
    L = LoweringContext(options)
    for definition in definitions:
        compiler = _FnCompiler(
            definition, unit_globals, unit_functions, options, order_mode, L
        )
        try:
            functions[definition.name] = compiler.compile()
        except _Unsupported:
            continue
        except _FoldUB:
            continue
    if not functions:
        return None
    return CompiledProgram(functions, order_mode, options)
