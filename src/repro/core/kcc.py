"""The kcc-style front end: compile (parse + static checks) and run a program.

This is the reproduction of the wrapper described in Section 3.2 of the paper:
a tool that behaves like a C compiler/interpreter, runs defined programs to
completion, and prints a numbered error report the moment an undefined
behavior is reached.

The work is staged the way the paper's own workflow is (compile once, then
run or search many times over one translation unit): :meth:`KccTool.compile_unit`
produces a reusable :class:`CompiledUnit`, and :meth:`KccTool.run_unit`
executes one.  The higher-level session API (:mod:`repro.api`) builds
content-addressed caching and batch checking on top of these stages;
:func:`check_program` / :func:`run_program` remain as one-shot conveniences.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.parser import parse
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.interpreter import ExecutionResult, Interpreter
from repro.errors import (
    CParseError,
    Diagnostic,
    InconclusiveAnalysis,
    Outcome,
    OutcomeKind,
    ResourceLimitError,
    StaticViolation,
    UndefinedBehaviorError,
    UnsupportedFeatureError,
)
from repro.events import ProbeSet, RunEnd, UBEvent, UBRecorder, observed_execution
from repro.kframework.search import PathOutcome, SearchResult, search_evaluation_orders
from repro.kframework.strategy import ScriptedStrategy
from repro.sema.static_checks import check_translation_unit


def content_hash(source: str) -> str:
    """Content address of a program: the cache key of the compile stage."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class CompiledUnit:
    """The reusable result of the compile stage (parse + static checks).

    A compiled unit is immutable from the checker's point of view: running it
    does not alter it, so one unit can back any number of runs, evaluation
    order searches, or ablation comparisons without re-parsing.  Units are
    identified by content hash + implementation profile, which is what the
    session-level compile cache (:mod:`repro.api`) keys on.
    """

    source: str
    filename: str
    hash: str
    profile_name: str
    unit: Optional[c_ast.TranslationUnit] = None
    static_violations: list[StaticViolation] = field(default_factory=list)
    parse_error: Optional[str] = None
    profile: Optional[ct.ImplementationProfile] = None
    #: Lazily computed lowered IRs, keyed by (options, fold).  Constant
    #: folding honors the check flags, so one unit may carry one lowered
    #: form per checker configuration that runs it.
    _lowered: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """True when parsing succeeded (static violations may still exist)."""
        return self.unit is not None

    def lowered_for(self, options: CheckerOptions, *, fold: bool = True,
                    instrument: bool = False):
        """The lowered IR of this unit for ``options`` (memoized).

        ``instrument=True`` selects the event-emitting variant used by runs
        with probes attached (it implies ``fold=False``); the plain variant
        carries no instrumentation code at all, which is the compile-time
        "null-probe" specialization that keeps unprobed runs at full speed.

        Returns None when there is nothing to lower (parse failure) or when
        lowering itself fails — the caller then falls back to the legacy
        walker, so a lowering defect can cost speed but never a verdict.
        """
        if self.unit is None:
            return None
        if instrument:
            fold = False
        key = (options, fold, instrument)
        if key not in self._lowered:
            from repro.core.lowering import lower_unit
            try:
                self._lowered[key] = lower_unit(self.unit, options, fold=fold,
                                                instrument=instrument)
            except Exception:  # pragma: no cover - safety net, not expected
                self._lowered[key] = None
        return self._lowered[key]

    def diagnostics(self) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        if self.parse_error is not None:
            found.append(Diagnostic(severity="error", stage="parse",
                                    message=self.parse_error))
        found.extend(v.to_diagnostic() for v in self.static_violations)
        return found


@dataclass
class CheckReport:
    """Everything kcc learned about one program."""

    outcome: Outcome
    result: Optional[ExecutionResult] = None
    search: Optional[SearchResult] = None
    unit: Optional[c_ast.TranslationUnit] = None
    filename: str = "<input>"

    @property
    def flagged(self) -> bool:
        return self.outcome.flagged

    def diagnostics(self) -> list[Diagnostic]:
        """The report's findings in structured form."""
        return self.outcome.diagnostics()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict of the whole report (AST omitted)."""
        data: dict[str, Any] = {
            "filename": self.filename,
            "outcome": self.outcome.to_dict(),
        }
        if self.search is not None:
            data["search"] = {
                "explored": self.search.explored,
                "exhausted": self.search.exhausted,
                "undefined_paths": len(self.search.undefined_paths),
            }
        return data

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Render a kcc-style textual report."""
        if self.outcome.kind is OutcomeKind.UNDEFINED and self.outcome.error is not None:
            return self.outcome.error.report()
        if self.outcome.kind is OutcomeKind.STATIC_ERROR:
            lines = ["ERROR! KCC encountered an error during translation.",
                     "=" * 47]
            lines.extend(v.report() for v in self.outcome.static_violations)
            lines.append("=" * 47)
            return "\n".join(lines)
        if self.outcome.kind is OutcomeKind.DEFINED:
            return (f"Program completed with exit code {self.outcome.exit_code}.\n"
                    f"{self.outcome.stdout}")
        return f"Analysis inconclusive: {self.outcome.detail}"


class KccTool:
    """The semantics-based undefinedness checker (the paper's kcc)."""

    name = "kcc"

    def __init__(self, options: CheckerOptions = DEFAULT_OPTIONS, *,
                 search_evaluation_order: bool = False,
                 run_static_checks: bool = True) -> None:
        self.options = options
        self.search_evaluation_order = search_evaluation_order
        self.run_static_checks = run_static_checks

    # ------------------------------------------------------------------
    # Stage 1: compilation (parsing + static checks)
    # ------------------------------------------------------------------
    def compile_unit(self, source: str, *, filename: str = "<input>") -> CompiledUnit:
        """Parse and statically check ``source`` into a reusable unit.

        Static violations are always collected here (the checks depend only
        on the implementation profile), so one compiled unit can be shared by
        tools that honor them and tools that do not; :meth:`run_unit` decides
        whether they count, according to ``run_static_checks``.
        """
        compiled = CompiledUnit(source=source, filename=filename,
                                hash=content_hash(source),
                                profile_name=self.options.profile.name,
                                profile=self.options.profile)
        try:
            compiled.unit = parse(source, filename=filename, profile=self.options.profile)
        except CParseError as error:
            compiled.parse_error = str(error)
            return compiled
        except UnsupportedFeatureError as error:
            compiled.parse_error = f"unsupported feature: {error}"
            return compiled
        compiled.static_violations = check_translation_unit(
            compiled.unit, self.options.profile)
        return compiled

    def compile(self, source: str, *, filename: str = "<input>") -> tuple[
            Optional[c_ast.TranslationUnit], list[StaticViolation], Optional[str]]:
        """Back-compat tuple view of the compile stage: (unit, violations, parse_error)."""
        compiled = self.compile_unit(source, filename=filename)
        violations = compiled.static_violations if self.run_static_checks else []
        return compiled.unit, violations, compiled.parse_error

    # ------------------------------------------------------------------
    # Stage 2: running a compiled unit
    # ------------------------------------------------------------------
    def run_unit(self, compiled: CompiledUnit, *, argv: Optional[list[str]] = None,
                 stdin: str = "", probes: Optional[Sequence] = None) -> CheckReport:
        """Execute a previously compiled unit, classifying the result.

        This never re-parses: the same :class:`CompiledUnit` can back many
        runs (different stdin/argv, evaluation-order search, ablations).

        ``probes`` subscribes :class:`repro.events.Probe` instances to the
        run's execution events.  Passive probes leave the verdict — and the
        whole report — identical to an unprobed run.  If any probe sets
        ``continue_past_ub``, the run switches to *observed* mode: gated
        undefinedness checks record events and execution continues with the
        check-disabled semantics, so one execution can feed several
        detection profiles (the outcome still reports the first check this
        checker's own options would have stopped at, though ``stdout`` may
        then include output from past that point).
        """
        if probes and self.search_evaluation_order:
            raise ValueError("probes cannot observe an evaluation-order search; "
                             "attach them to a single-run checker instead")
        if compiled.profile is not None and compiled.profile != self.options.profile:
            # A unit parsed under one profile has that profile's type sizes
            # baked into its layout; silently running it under another would
            # give profile-dependent verdicts that belong to neither.
            raise ValueError(
                f"CompiledUnit was compiled under profile "
                f"{compiled.profile_name!r} but this checker runs "
                f"{self.options.profile.name!r}; recompile the source with "
                f"the matching options")
        if compiled.parse_error is not None:
            outcome = Outcome(kind=OutcomeKind.INCONCLUSIVE, detail=compiled.parse_error,
                              parse_failed=True)
            if probes:
                # The dynamic stage never runs: no events, but the probes
                # still learn how the analysis ended.
                ProbeSet(probes).finish(RunEnd("inconclusive",
                                               detail=compiled.parse_error))
            return CheckReport(outcome=outcome, filename=compiled.filename)
        assert compiled.unit is not None
        if self.run_static_checks and compiled.static_violations:
            outcome = Outcome(kind=OutcomeKind.STATIC_ERROR,
                              static_violations=list(compiled.static_violations))
            if probes:
                first = compiled.static_violations[0]
                ProbeSet(probes).finish(RunEnd(
                    "undefined",
                    error=UndefinedBehaviorError(first.kind, first.message,
                                                 line=first.line)))
            return CheckReport(outcome=outcome, unit=compiled.unit,
                               filename=compiled.filename)
        if self.search_evaluation_order:
            # The search runs over a fold-free lowering so scripted
            # strategies meet exactly the legacy walker's decision points.
            lowered = (compiled.lowered_for(self.options, fold=False)
                       if self.options.enable_lowering else None)
            report = self._check_with_search(compiled.unit, argv=argv, stdin=stdin,
                                             lowered=lowered)
        else:
            lowered = (compiled.lowered_for(self.options, instrument=bool(probes))
                       if self.options.enable_lowering else None)
            outcome, result = self._run_once(compiled.unit, strategy=None,
                                             argv=argv, stdin=stdin, lowered=lowered,
                                             probes=probes)
            report = CheckReport(outcome=outcome, result=result, unit=compiled.unit)
        report.filename = compiled.filename
        return report

    # ------------------------------------------------------------------
    # Checking a whole program (compile + run in one step)
    # ------------------------------------------------------------------
    def check(self, source: str, *, filename: str = "<input>",
              argv: Optional[list[str]] = None, stdin: str = "") -> CheckReport:
        """Compile and run ``source``, classifying the result."""
        return self.run_unit(self.compile_unit(source, filename=filename),
                             argv=argv, stdin=stdin)

    def _run_once(self, unit: c_ast.TranslationUnit, *, strategy, argv, stdin,
                  lowered=None, probes=None) -> tuple[Outcome, Optional[ExecutionResult]]:
        interpreter = Interpreter(unit, self.options, strategy=strategy, stdin=stdin,
                                  lowered=lowered)
        probe_set = ProbeSet(probes) if probes else None
        recorder = None
        if probe_set is not None:
            interpreter.attach_probes(probe_set)
            if probe_set.wants_ub_continuation:
                recorder = UBRecorder(interpreter, probe_set)
        try:
            with observed_execution(recorder):
                result = interpreter.run(argv)
        except UndefinedBehaviorError as error:
            # Terminal: an ungated check (or, without a recorder, any check)
            # stopped the run.  Deliver it to the probes as a final event —
            # every detection profile reports ungated checks.
            if probe_set is not None:
                probe_set.emit(UBEvent(error.kind, error.message, error.line,
                                       error.function, family=None))
                probe_set.finish(RunEnd("undefined", error=error))
            outcome = Outcome(kind=OutcomeKind.UNDEFINED, error=error,
                              stdout=interpreter.stdout)
            return outcome, None
        except (ResourceLimitError, UnsupportedFeatureError, ct.LayoutError,
                RecursionError) as error:
            # With checks disabled (ablation mode) execution can wander into
            # states the positive semantics cannot give meaning to; report
            # those as inconclusive rather than crashing the harness.
            if probe_set is not None:
                probe_set.finish(RunEnd("inconclusive", detail=str(error)))
            if recorder is not None and recorder.first_error is not None:
                # A strict run of these options would have stopped at the
                # first recorded check, before the resource/feature limit.
                outcome = Outcome(kind=OutcomeKind.UNDEFINED,
                                  error=recorder.first_error,
                                  stdout=interpreter.stdout)
                return outcome, None
            outcome = Outcome(kind=OutcomeKind.INCONCLUSIVE, detail=str(error),
                              stdout=interpreter.stdout)
            return outcome, None
        if probe_set is not None:
            probe_set.finish(RunEnd("defined", exit_code=result.exit_code))
        if recorder is not None and recorder.first_error is not None:
            outcome = Outcome(kind=OutcomeKind.UNDEFINED, error=recorder.first_error,
                              stdout=interpreter.stdout)
            return outcome, None
        outcome = Outcome(kind=OutcomeKind.DEFINED, exit_code=result.exit_code,
                          stdout=result.stdout)
        return outcome, result

    def _check_with_search(self, unit: c_ast.TranslationUnit, *, argv, stdin,
                           lowered=None) -> CheckReport:
        """Explore evaluation orders; undefined if any order is undefined (§2.5.2)."""
        last_defined: dict[str, object] = {}

        def run(strategy: ScriptedStrategy) -> PathOutcome:
            outcome, result = self._run_once(unit, strategy=strategy, argv=argv,
                                             stdin=stdin, lowered=lowered)
            if not outcome.flagged:
                last_defined["outcome"] = outcome
                last_defined["result"] = result
            return PathOutcome(script=(), undefined=outcome.flagged,
                               description=outcome.describe(), payload=outcome)

        search = search_evaluation_orders(run, max_paths=self.options.max_search_paths,
                                          stop_at_first=True)
        first_bad = search.first_undefined
        if first_bad is not None:
            outcome = first_bad.payload  # type: ignore[assignment]
            assert isinstance(outcome, Outcome)
            return CheckReport(outcome=outcome, search=search, unit=unit)
        outcome = last_defined.get("outcome")
        if isinstance(outcome, Outcome):
            return CheckReport(outcome=outcome, search=search, unit=unit,
                               result=last_defined.get("result"))  # type: ignore[arg-type]
        return CheckReport(outcome=Outcome(kind=OutcomeKind.INCONCLUSIVE,
                                           detail="no path produced a result"),
                           search=search, unit=unit)


# ---------------------------------------------------------------------------
# Convenience functions and CLI
# ---------------------------------------------------------------------------

def check_program(source: str, options: CheckerOptions = DEFAULT_OPTIONS, *,
                  search_evaluation_order: bool = False,
                  argv: Optional[list[str]] = None, stdin: str = "") -> CheckReport:
    """Check a C program given as source text; the main public API entry point."""
    tool = KccTool(options, search_evaluation_order=search_evaluation_order)
    return tool.check(source, argv=argv, stdin=stdin)


def run_program(source: str, options: CheckerOptions = DEFAULT_OPTIONS, *,
                argv: Optional[list[str]] = None, stdin: str = "") -> ExecutionResult:
    """Run a (presumed defined) program and return its execution result.

    Raises :class:`UndefinedBehaviorError` if the program turns out to be
    undefined — the "kcc as a compiler" usage of Section 3.2.
    """
    report = KccTool(options).check(source, argv=argv, stdin=stdin)
    if report.outcome.kind is OutcomeKind.UNDEFINED and report.outcome.error is not None:
        raise report.outcome.error
    if report.outcome.kind is OutcomeKind.STATIC_ERROR:
        raise UndefinedBehaviorError(
            report.outcome.static_violations[0].kind,
            report.outcome.static_violations[0].message,
            line=report.outcome.static_violations[0].line)
    if report.result is None:
        # The analysis could not classify the program (parse failure,
        # resource limit, unsupported construct); fabricating a successful
        # exit here would report silent success for a program that never ran.
        raise InconclusiveAnalysis(report.outcome.detail or report.outcome.describe(),
                                   outcome=report.outcome)
    return report.result


def main(argv: Optional[list[str]] = None) -> int:
    """Command line interface; see :mod:`repro.api.cli` for the subcommands."""
    from repro.api.cli import main as cli_main

    return cli_main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
