"""The kcc-style front end: compile (parse + static checks) and run a program.

This is the reproduction of the wrapper described in Section 3.2 of the paper:
a tool that behaves like a C compiler/interpreter, runs defined programs to
completion, and prints a numbered error report the moment an undefined
behavior is reached.  It is also the programmatic entry point used by the
evaluation harness (:mod:`repro.suites.harness`) and by the examples.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.parser import parse
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.interpreter import ExecutionResult, Interpreter
from repro.errors import (
    CParseError,
    Outcome,
    OutcomeKind,
    ResourceLimitError,
    StaticViolation,
    UndefinedBehaviorError,
    UnsupportedFeatureError,
)
from repro.kframework.search import PathOutcome, SearchResult, search_evaluation_orders
from repro.kframework.strategy import ScriptedStrategy
from repro.sema.static_checks import check_translation_unit


@dataclass
class CheckReport:
    """Everything kcc learned about one program."""

    outcome: Outcome
    result: Optional[ExecutionResult] = None
    search: Optional[SearchResult] = None
    unit: Optional[c_ast.TranslationUnit] = None

    @property
    def flagged(self) -> bool:
        return self.outcome.flagged

    def render(self) -> str:
        """Render a kcc-style textual report."""
        if self.outcome.kind is OutcomeKind.UNDEFINED and self.outcome.error is not None:
            return self.outcome.error.report()
        if self.outcome.kind is OutcomeKind.STATIC_ERROR:
            lines = ["ERROR! KCC encountered an error during translation.",
                     "=" * 47]
            lines.extend(v.report() for v in self.outcome.static_violations)
            lines.append("=" * 47)
            return "\n".join(lines)
        if self.outcome.kind is OutcomeKind.DEFINED:
            return (f"Program completed with exit code {self.outcome.exit_code}.\n"
                    f"{self.outcome.stdout}")
        return f"Analysis inconclusive: {self.outcome.detail}"


class KccTool:
    """The semantics-based undefinedness checker (the paper's kcc)."""

    name = "kcc"

    def __init__(self, options: CheckerOptions = DEFAULT_OPTIONS, *,
                 search_evaluation_order: bool = False,
                 run_static_checks: bool = True) -> None:
        self.options = options
        self.search_evaluation_order = search_evaluation_order
        self.run_static_checks = run_static_checks

    # ------------------------------------------------------------------
    # Compilation (parsing + static checks)
    # ------------------------------------------------------------------
    def compile(self, source: str, *, filename: str = "<input>") -> tuple[
            Optional[c_ast.TranslationUnit], list[StaticViolation], Optional[str]]:
        """Parse and statically check; returns (unit, violations, parse_error)."""
        try:
            unit = parse(source, filename=filename, profile=self.options.profile)
        except CParseError as error:
            return None, [], str(error)
        except UnsupportedFeatureError as error:
            return None, [], f"unsupported feature: {error}"
        violations: list[StaticViolation] = []
        if self.run_static_checks:
            violations = check_translation_unit(unit, self.options.profile)
        return unit, violations, None

    # ------------------------------------------------------------------
    # Checking a whole program
    # ------------------------------------------------------------------
    def check(self, source: str, *, filename: str = "<input>",
              argv: Optional[list[str]] = None, stdin: str = "") -> CheckReport:
        """Compile and run ``source``, classifying the result."""
        unit, violations, parse_error = self.compile(source, filename=filename)
        if parse_error is not None:
            outcome = Outcome(kind=OutcomeKind.INCONCLUSIVE, detail=parse_error)
            return CheckReport(outcome=outcome)
        assert unit is not None
        if violations:
            outcome = Outcome(kind=OutcomeKind.STATIC_ERROR, static_violations=violations)
            return CheckReport(outcome=outcome, unit=unit)
        if self.search_evaluation_order:
            return self._check_with_search(unit, argv=argv, stdin=stdin)
        outcome, result = self._run_once(unit, strategy=None, argv=argv, stdin=stdin)
        return CheckReport(outcome=outcome, result=result, unit=unit)

    def _run_once(self, unit: c_ast.TranslationUnit, *, strategy, argv, stdin) -> tuple[
            Outcome, Optional[ExecutionResult]]:
        interpreter = Interpreter(unit, self.options, strategy=strategy, stdin=stdin)
        try:
            result = interpreter.run(argv)
        except UndefinedBehaviorError as error:
            outcome = Outcome(kind=OutcomeKind.UNDEFINED, error=error,
                              stdout=interpreter.stdout)
            return outcome, None
        except (ResourceLimitError, UnsupportedFeatureError, ct.LayoutError,
                RecursionError) as error:
            # With checks disabled (ablation mode) execution can wander into
            # states the positive semantics cannot give meaning to; report
            # those as inconclusive rather than crashing the harness.
            outcome = Outcome(kind=OutcomeKind.INCONCLUSIVE, detail=str(error),
                              stdout=interpreter.stdout)
            return outcome, None
        outcome = Outcome(kind=OutcomeKind.DEFINED, exit_code=result.exit_code,
                          stdout=result.stdout)
        return outcome, result

    def _check_with_search(self, unit: c_ast.TranslationUnit, *, argv, stdin) -> CheckReport:
        """Explore evaluation orders; undefined if any order is undefined (§2.5.2)."""
        last_defined: dict[str, object] = {}

        def run(strategy: ScriptedStrategy) -> PathOutcome:
            outcome, result = self._run_once(unit, strategy=strategy, argv=argv, stdin=stdin)
            if not outcome.flagged:
                last_defined["outcome"] = outcome
                last_defined["result"] = result
            return PathOutcome(script=(), undefined=outcome.flagged,
                               description=outcome.describe(), payload=outcome)

        search = search_evaluation_orders(run, max_paths=self.options.max_search_paths,
                                          stop_at_first=True)
        first_bad = search.first_undefined
        if first_bad is not None:
            outcome = first_bad.payload  # type: ignore[assignment]
            assert isinstance(outcome, Outcome)
            return CheckReport(outcome=outcome, search=search, unit=unit)
        outcome = last_defined.get("outcome")
        if isinstance(outcome, Outcome):
            return CheckReport(outcome=outcome, search=search, unit=unit,
                               result=last_defined.get("result"))  # type: ignore[arg-type]
        return CheckReport(outcome=Outcome(kind=OutcomeKind.INCONCLUSIVE,
                                           detail="no path produced a result"),
                           search=search, unit=unit)


# ---------------------------------------------------------------------------
# Convenience functions and CLI
# ---------------------------------------------------------------------------

def check_program(source: str, options: CheckerOptions = DEFAULT_OPTIONS, *,
                  search_evaluation_order: bool = False,
                  argv: Optional[list[str]] = None, stdin: str = "") -> CheckReport:
    """Check a C program given as source text; the main public API entry point."""
    tool = KccTool(options, search_evaluation_order=search_evaluation_order)
    return tool.check(source, argv=argv, stdin=stdin)


def run_program(source: str, options: CheckerOptions = DEFAULT_OPTIONS, *,
                argv: Optional[list[str]] = None, stdin: str = "") -> ExecutionResult:
    """Run a (presumed defined) program and return its execution result.

    Raises :class:`UndefinedBehaviorError` if the program turns out to be
    undefined — the "kcc as a compiler" usage of Section 3.2.
    """
    report = KccTool(options).check(source, argv=argv, stdin=stdin)
    if report.outcome.kind is OutcomeKind.UNDEFINED and report.outcome.error is not None:
        raise report.outcome.error
    if report.outcome.kind is OutcomeKind.STATIC_ERROR:
        raise UndefinedBehaviorError(
            report.outcome.static_violations[0].kind,
            report.outcome.static_violations[0].message,
            line=report.outcome.static_violations[0].line)
    if report.result is None:
        return ExecutionResult(exit_code=report.outcome.exit_code or 0,
                               stdout=report.outcome.stdout)
    return report.result


def main(argv: Optional[list[str]] = None) -> int:
    """Command line interface: ``kcc-check program.c``."""
    parser = argparse.ArgumentParser(
        prog="kcc-check",
        description="Semantics-based undefinedness checker for C "
                    "(reproduction of Ellison & Rosu's kcc).")
    parser.add_argument("file", help="C source file to check")
    parser.add_argument("--profile", default="lp64", choices=sorted(ct.PROFILES),
                        help="implementation profile (type sizes)")
    parser.add_argument("--search", action="store_true",
                        help="search over evaluation orders")
    parser.add_argument("--no-static", action="store_true",
                        help="skip translation-time checks")
    arguments = parser.parse_args(argv)
    with open(arguments.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    options = CheckerOptions(profile=ct.PROFILES[arguments.profile])
    tool = KccTool(options, search_evaluation_order=arguments.search,
                   run_static_checks=not arguments.no_static)
    report = tool.check(source, filename=arguments.file)
    print(report.render())
    if report.flagged:
        return 1
    if report.outcome.kind is OutcomeKind.INCONCLUSIVE:
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
