"""The kcc-style front end: compile (parse + static checks) and run a program.

This is the reproduction of the wrapper described in Section 3.2 of the paper:
a tool that behaves like a C compiler/interpreter, runs defined programs to
completion, and prints a numbered error report the moment an undefined
behavior is reached.

The work is staged the way the paper's own workflow is (compile once, then
run or search many times over one translation unit): :meth:`KccTool.compile_unit`
produces a reusable :class:`CompiledUnit`, and :meth:`KccTool.run_unit`
executes one.  The higher-level session API (:mod:`repro.api`) builds
content-addressed caching and batch checking on top of these stages;
:func:`check_program` / :func:`run_program` remain as one-shot conveniences.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.parser import parse
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.interpreter import ExecutionResult, Interpreter
from repro.errors import (
    CParseError,
    Diagnostic,
    InconclusiveAnalysis,
    Outcome,
    OutcomeKind,
    ResourceLimitError,
    StaticViolation,
    UndefinedBehaviorError,
    UnsupportedFeatureError,
)
from repro.events import ProbeSet, RunEnd, UBEvent, UBRecorder, observed_execution
from repro.kframework.search import (
    STOP_EXHAUSTED,
    STOP_FIRST_UNDEFINED,
    STOP_MAX_PATHS,
    PathOutcome,
    SearchBudget,
    SearchOptions,
    SearchResult,
    expand_scripts,
)
from repro.kframework.strategy import ScriptedStrategy
from repro.sema.static_checks import check_translation_unit


def content_hash(source: str) -> str:
    """Content address of a program: the cache key of the compile stage."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _probes_need_events(probes) -> bool:
    """Whether any probe actually subscribes to execution events.

    A probe whose ``subscribes`` is an empty tuple only wants ``finish``
    (the run's end), so the run can keep an uninstrumented engine; a probe
    that continues past UB needs the observed trajectory either way.
    """
    for probe in probes:
        if getattr(probe, "continue_past_ub", False):
            return True
        subscribes = getattr(probe, "subscribes", None)
        if subscribes is None or len(subscribes) > 0:
            return True
    return False


@dataclass
class CompiledUnit:
    """The reusable result of the compile stage (parse + static checks).

    A compiled unit is immutable from the checker's point of view: running it
    does not alter it, so one unit can back any number of runs, evaluation
    order searches, or ablation comparisons without re-parsing.  Units are
    identified by content hash + implementation profile, which is what the
    session-level compile cache (:mod:`repro.api`) keys on.
    """

    source: str
    filename: str
    hash: str
    profile_name: str
    unit: Optional[c_ast.TranslationUnit] = None
    static_violations: list[StaticViolation] = field(default_factory=list)
    parse_error: Optional[str] = None
    profile: Optional[ct.ImplementationProfile] = None
    #: Lazily computed lowered IRs, keyed by (options, fold).  Constant
    #: folding honors the check flags, so one unit may carry one lowered
    #: form per checker configuration that runs it.
    _lowered: dict = field(default_factory=dict, repr=False, compare=False)
    #: Lazily computed register-bytecode programs, keyed by options.
    _bytecode: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """True when parsing succeeded (static violations may still exist)."""
        return self.unit is not None

    def lowered_for(self, options: CheckerOptions, *, fold: bool = True,
                    instrument: bool = False):
        """The lowered IR of this unit for ``options`` (memoized).

        ``instrument=True`` selects the event-emitting variant used by runs
        with probes attached (it implies ``fold=False``); the plain variant
        carries no instrumentation code at all, which is the compile-time
        "null-probe" specialization that keeps unprobed runs at full speed.

        Returns None when there is nothing to lower (parse failure) or when
        lowering itself fails — the caller then falls back to the legacy
        walker, so a lowering defect can cost speed but never a verdict.
        """
        if self.unit is None:
            return None
        if instrument:
            fold = False
        key = (options, fold, instrument)
        if key not in self._lowered:
            from repro.core.lowering import lower_unit
            try:
                self._lowered[key] = lower_unit(self.unit, options, fold=fold,
                                                instrument=instrument)
            except Exception:  # pragma: no cover - safety net, not expected
                self._lowered[key] = None
        return self._lowered[key]

    def compiled_for(self, options: CheckerOptions):
        """The register-bytecode program of this unit for ``options``
        (memoized), or None.

        Functions outside the compiler's native subset are simply absent
        from the returned program and run on the lowered closures instead;
        a compiler defect can therefore cost speed but never a verdict.
        Returns None outright on parse failure, for evaluation orders the
        bytecode does not pre-resolve, or if compilation itself fails.
        """
        if self.unit is None:
            return None
        if options not in self._bytecode:
            from repro.core.bytecode import compile_unit_bytecode
            try:
                self._bytecode[options] = compile_unit_bytecode(self.unit,
                                                                options)
            except Exception:  # pragma: no cover - safety net, not expected
                self._bytecode[options] = None
        return self._bytecode[options]

    def diagnostics(self) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        if self.parse_error is not None:
            found.append(Diagnostic(severity="error", stage="parse",
                                    message=self.parse_error))
        found.extend(v.to_diagnostic() for v in self.static_violations)
        return found


@dataclass
class CheckReport:
    """Everything kcc learned about one program."""

    outcome: Outcome
    result: Optional[ExecutionResult] = None
    search: Optional[SearchResult] = None
    unit: Optional[c_ast.TranslationUnit] = None
    filename: str = "<input>"

    @property
    def flagged(self) -> bool:
        return self.outcome.flagged

    def diagnostics(self) -> list[Diagnostic]:
        """The report's findings in structured form."""
        return self.outcome.diagnostics()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict of the whole report (AST omitted)."""
        data: dict[str, Any] = {
            "filename": self.filename,
            "outcome": self.outcome.to_dict(),
        }
        if self.search is not None:
            # Includes the seed keys (explored/exhausted/undefined_paths)
            # plus the engine's stop reason, execution counters, and the
            # covered fraction of the discovered interleaving space.
            data["search"] = self.search.to_dict()
        return data

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Render a kcc-style textual report."""
        if self.outcome.kind is OutcomeKind.UNDEFINED and self.outcome.error is not None:
            return self.outcome.error.report()
        if self.outcome.kind is OutcomeKind.STATIC_ERROR:
            lines = ["ERROR! KCC encountered an error during translation.",
                     "=" * 47]
            lines.extend(v.report() for v in self.outcome.static_violations)
            lines.append("=" * 47)
            return "\n".join(lines)
        if self.outcome.kind is OutcomeKind.DEFINED:
            return (f"Program completed with exit code {self.outcome.exit_code}.\n"
                    f"{self.outcome.stdout}")
        return f"Analysis inconclusive: {self.outcome.detail}"


class KccTool:
    """The semantics-based undefinedness checker (the paper's kcc)."""

    name = "kcc"

    def __init__(self, options: CheckerOptions = DEFAULT_OPTIONS, *,
                 search_evaluation_order: bool = False,
                 run_static_checks: bool = True,
                 search_options: Optional[SearchOptions] = None) -> None:
        self.options = options
        self.search_evaluation_order = search_evaluation_order
        self.run_static_checks = run_static_checks
        #: Engine configuration used by search mode; None picks the default
        #: (DFS, checkpointing where available, budget from the checker's
        #: ``max_search_paths``).
        self.search_options = search_options

    # ------------------------------------------------------------------
    # Stage 1: compilation (parsing + static checks)
    # ------------------------------------------------------------------
    def compile_unit(self, source: str, *, filename: str = "<input>") -> CompiledUnit:
        """Parse and statically check ``source`` into a reusable unit.

        Static violations are always collected here (the checks depend only
        on the implementation profile), so one compiled unit can be shared by
        tools that honor them and tools that do not; :meth:`run_unit` decides
        whether they count, according to ``run_static_checks``.
        """
        compiled = CompiledUnit(source=source, filename=filename,
                                hash=content_hash(source),
                                profile_name=self.options.profile.name,
                                profile=self.options.profile)
        try:
            compiled.unit = parse(source, filename=filename, profile=self.options.profile)
        except CParseError as error:
            compiled.parse_error = str(error)
            return compiled
        except UnsupportedFeatureError as error:
            compiled.parse_error = f"unsupported feature: {error}"
            return compiled
        compiled.static_violations = check_translation_unit(
            compiled.unit, self.options.profile)
        return compiled

    def compile(self, source: str, *, filename: str = "<input>") -> tuple[
            Optional[c_ast.TranslationUnit], list[StaticViolation], Optional[str]]:
        """Back-compat tuple view of the compile stage: (unit, violations, parse_error)."""
        compiled = self.compile_unit(source, filename=filename)
        violations = compiled.static_violations if self.run_static_checks else []
        return compiled.unit, violations, compiled.parse_error

    # ------------------------------------------------------------------
    # Stage 2: running a compiled unit
    # ------------------------------------------------------------------
    def run_unit(self, compiled: CompiledUnit, *, argv: Optional[list[str]] = None,
                 stdin: str = "", probes: Optional[Sequence] = None) -> CheckReport:
        """Execute a previously compiled unit, classifying the result.

        This never re-parses: the same :class:`CompiledUnit` can back many
        runs (different stdin/argv, evaluation-order search, ablations).

        ``probes`` subscribes :class:`repro.events.Probe` instances to the
        run's execution events.  Passive probes leave the verdict — and the
        whole report — identical to an unprobed run.  If any probe sets
        ``continue_past_ub``, the run switches to *observed* mode: gated
        undefinedness checks record events and execution continues with the
        check-disabled semantics, so one execution can feed several
        detection profiles (the outcome still reports the first check this
        checker's own options would have stopped at, though ``stdout`` may
        then include output from past that point).
        """
        if probes and self.search_evaluation_order:
            raise ValueError("probes cannot observe an evaluation-order search; "
                             "attach them to a single-run checker instead")
        self._require_matching_profile(compiled)
        if compiled.parse_error is not None:
            outcome = Outcome(kind=OutcomeKind.INCONCLUSIVE, detail=compiled.parse_error,
                              parse_failed=True)
            if probes:
                # The dynamic stage never runs: no events, but the probes
                # still learn how the analysis ended.
                ProbeSet(probes).finish(RunEnd("inconclusive",
                                               detail=compiled.parse_error))
            return CheckReport(outcome=outcome, filename=compiled.filename)
        assert compiled.unit is not None
        if self.run_static_checks and compiled.static_violations:
            outcome = Outcome(kind=OutcomeKind.STATIC_ERROR,
                              static_violations=list(compiled.static_violations))
            if probes:
                first = compiled.static_violations[0]
                ProbeSet(probes).finish(RunEnd(
                    "undefined",
                    error=UndefinedBehaviorError(first.kind, first.message,
                                                 line=first.line)))
            return CheckReport(outcome=outcome, unit=compiled.unit,
                               filename=compiled.filename)
        if self.search_evaluation_order:
            report = self._check_with_search(compiled, argv=argv, stdin=stdin)
        else:
            engine = self.options.effective_engine()
            # Pay-per-subscription instrumentation: probes that subscribe to
            # no event kinds (and do not continue past UB) cost nothing —
            # the run keeps the uninstrumented stream of whichever engine is
            # selected.  Any subscribed kind needs the event-emitting
            # closure IR, whose stream is walker-identical.
            instrument = bool(probes) and _probes_need_events(probes)
            lowered = (compiled.lowered_for(self.options, instrument=instrument)
                       if engine != "walker" else None)
            native = (compiled.compiled_for(self.options)
                      if engine == "compiled" and not instrument else None)
            outcome, result = self._run_once(compiled.unit, strategy=None,
                                             argv=argv, stdin=stdin, lowered=lowered,
                                             native=native, probes=probes)
            report = CheckReport(outcome=outcome, result=result, unit=compiled.unit)
        report.filename = compiled.filename
        return report

    def _require_matching_profile(self, compiled: CompiledUnit) -> None:
        # A unit parsed under one profile has that profile's type sizes
        # baked into its layout; silently running it under another would
        # give profile-dependent verdicts that belong to neither.
        if compiled.profile is not None and compiled.profile != self.options.profile:
            raise ValueError(
                f"CompiledUnit was compiled under profile "
                f"{compiled.profile_name!r} but this checker runs "
                f"{self.options.profile.name!r}; recompile the source with "
                f"the matching options")

    # ------------------------------------------------------------------
    # Checking a whole program (compile + run in one step)
    # ------------------------------------------------------------------
    def check(self, source: str, *, filename: str = "<input>",
              argv: Optional[list[str]] = None, stdin: str = "") -> CheckReport:
        """Compile and run ``source``, classifying the result."""
        return self.run_unit(self.compile_unit(source, filename=filename),
                             argv=argv, stdin=stdin)

    def _run_once(self, unit: c_ast.TranslationUnit, *, strategy, argv, stdin,
                  lowered=None, native=None, probes=None,
                  ) -> tuple[Outcome, Optional[ExecutionResult]]:
        interpreter = Interpreter(unit, self.options, strategy=strategy, stdin=stdin,
                                  lowered=lowered, compiled=native)
        probe_set = ProbeSet(probes) if probes else None
        recorder = None
        if probe_set is not None:
            interpreter.attach_probes(probe_set)
            if probe_set.wants_ub_continuation:
                recorder = UBRecorder(interpreter, probe_set)
        return self._classify_execution(interpreter, argv, probe_set, recorder)

    def _classify_execution(self, interpreter: Interpreter, argv,
                            probe_set: Optional[ProbeSet] = None,
                            recorder: Optional[UBRecorder] = None,
                            ) -> tuple[Outcome, Optional[ExecutionResult]]:
        """Run an already-configured interpreter and classify how it ended.

        Shared by single runs (through :meth:`_run_once`) and the search
        engine's host, which builds its own interpreters so the engine can
        checkpoint them at decision points.
        """
        try:
            with observed_execution(recorder):
                result = interpreter.run(argv)
        except UndefinedBehaviorError as error:
            # Terminal: an ungated check (or, without a recorder, any check)
            # stopped the run.  Deliver it to the probes as a final event —
            # every detection profile reports ungated checks.
            if probe_set is not None:
                probe_set.emit(UBEvent(error.kind, error.message, error.line,
                                       error.function, family=None))
                probe_set.finish(RunEnd("undefined", error=error))
            outcome = Outcome(kind=OutcomeKind.UNDEFINED, error=error,
                              stdout=interpreter.stdout)
            return outcome, None
        except (ResourceLimitError, UnsupportedFeatureError, ct.LayoutError,
                RecursionError) as error:
            # With checks disabled (ablation mode) execution can wander into
            # states the positive semantics cannot give meaning to; report
            # those as inconclusive rather than crashing the harness.
            if probe_set is not None:
                probe_set.finish(RunEnd("inconclusive", detail=str(error)))
            if recorder is not None and recorder.first_error is not None:
                # A strict run of these options would have stopped at the
                # first recorded check, before the resource/feature limit.
                outcome = Outcome(kind=OutcomeKind.UNDEFINED,
                                  error=recorder.first_error,
                                  stdout=interpreter.stdout)
                return outcome, None
            outcome = Outcome(kind=OutcomeKind.INCONCLUSIVE, detail=str(error),
                              stdout=interpreter.stdout)
            return outcome, None
        if probe_set is not None:
            probe_set.finish(RunEnd("defined", exit_code=result.exit_code))
        if recorder is not None and recorder.first_error is not None:
            outcome = Outcome(kind=OutcomeKind.UNDEFINED, error=recorder.first_error,
                              stdout=interpreter.stdout)
            return outcome, None
        outcome = Outcome(kind=OutcomeKind.DEFINED, exit_code=result.exit_code,
                          stdout=result.stdout)
        return outcome, result

    # ------------------------------------------------------------------
    # Evaluation-order search (§2.5.2): the engine-driven pipeline stage
    # ------------------------------------------------------------------
    def default_search_options(self) -> SearchOptions:
        if self.search_options is not None:
            return self.search_options
        return SearchOptions(
            budget=SearchBudget(max_paths=self.options.max_search_paths))

    def search_unit(self, compiled: CompiledUnit, *,
                    argv: Optional[list[str]] = None, stdin: str = "",
                    search: Optional[SearchOptions] = None) -> CheckReport:
        """Explore evaluation orders of a compiled unit (§2.5.2).

        The exploration runs on :class:`repro.kframework.engine.SearchEngine`:
        sibling orders resume from forked checkpoints where the platform
        allows it, converging interleavings are deduplicated by machine-state
        hash, and orders whose operand footprints commute are skipped.  The
        verdict is undefined iff any explored order is undefined; the
        report's ``search`` field says why exploration stopped and how much
        of the interleaving space it covered.
        """
        search = search if search is not None else self.default_search_options()
        from repro.kframework.engine import resolve_checkpoint

        # Fail fast on configuration conflicts (fork + non-DFS frontier,
        # fork on a platform without it): with jobs > 1 the engine would
        # otherwise raise this from inside a pool worker.
        resolve_checkpoint(search)
        self._require_matching_profile(compiled)
        if compiled.parse_error is not None:
            outcome = Outcome(kind=OutcomeKind.INCONCLUSIVE,
                              detail=compiled.parse_error, parse_failed=True)
            return CheckReport(outcome=outcome, filename=compiled.filename)
        assert compiled.unit is not None
        if self.run_static_checks and compiled.static_violations:
            outcome = Outcome(kind=OutcomeKind.STATIC_ERROR,
                              static_violations=list(compiled.static_violations))
            return CheckReport(outcome=outcome, unit=compiled.unit,
                               filename=compiled.filename)
        host = _SearchHost(self, compiled, argv=argv, stdin=stdin,
                           instrument=search.prune_commuting)
        if search.jobs and search.jobs > 1:
            result = self._parallel_search(compiled, host, search)
        else:
            from repro.kframework.engine import SearchEngine

            result = SearchEngine(host, search).run()
        report = self._report_from_search(compiled.unit, result, host)
        report.filename = compiled.filename
        return report

    def _check_with_search(self, compiled: CompiledUnit, *, argv,
                           stdin) -> CheckReport:
        """Explore evaluation orders; undefined if any order is undefined (§2.5.2)."""
        return self.search_unit(compiled, argv=argv, stdin=stdin)

    def _report_from_search(self, unit: c_ast.TranslationUnit,
                            search: SearchResult, host: "_SearchHost") -> CheckReport:
        first_bad = search.first_undefined
        if first_bad is not None:
            outcome = first_bad.payload  # type: ignore[assignment]
            assert isinstance(outcome, Outcome)
            return CheckReport(outcome=outcome, search=search, unit=unit)
        fallback: Optional[Outcome] = None
        for path in reversed(search.paths):
            outcome = path.payload
            if isinstance(outcome, Outcome) and not outcome.flagged:
                result = host.result_for(outcome)
                if result is not None:
                    return CheckReport(outcome=outcome, search=search,
                                       unit=unit, result=result)
                if fallback is None:
                    # Fork-mode sibling paths ran in child processes, so
                    # their ExecutionResults never reach this host; prefer
                    # a defined path we executed here (the root order
                    # qualifies) so the report keeps stdout/step counts.
                    fallback = outcome
        if fallback is not None:
            return CheckReport(outcome=fallback, search=search, unit=unit)
        return CheckReport(outcome=Outcome(kind=OutcomeKind.INCONCLUSIVE,
                                           detail="no path produced a result"),
                           search=search, unit=unit)

    def _parallel_search(self, compiled: CompiledUnit, host: "_SearchHost",
                         search: SearchOptions) -> SearchResult:
        """Shard the root frontier of a search across a process pool.

        The root order runs in this process to discover the decision
        arities; every sibling script diverging from it becomes a shard
        seed, and the shards partition the remaining interleaving tree
        (scripts only ever extend their prefix).  Workers run the same
        serial engine; verdict identity against the serial path is pinned
        by ``tests/kframework/test_search_engine.py``.
        """
        import dataclasses as _dc

        from repro.service.pool import run_staged

        strategy = ScriptedStrategy()
        strategy.reset()
        root_outcome = host.run_scripted(strategy)
        # The root run takes the default (first) alternative everywhere;
        # record its script explicitly so shard paths and serial paths
        # carry comparable decision vectors.
        root_outcome.script = tuple([0] * len(strategy.observed_arity))
        serial = _dc.replace(search, jobs=1)
        result = SearchResult()
        result.paths.append(root_outcome)
        result.full_executions = 1
        if root_outcome.undefined and search.stop_at_first:
            pending = expand_scripts((), strategy.observed_arity)
            if pending:
                result.stop_reason = STOP_FIRST_UNDEFINED
                result.skipped_alternatives = len(pending)
            return result
        scripts = expand_scripts((), strategy.observed_arity)
        if not scripts:
            return result
        from repro.kframework.engine import shard_scripts

        jobs = max(1, int(search.jobs))
        shards = shard_scripts(scripts, jobs)
        header = (compiled.source, compiled.filename, self.options,
                  host.argv, host.stdin, serial)
        shard_results = run_staged(_search_shard, header, shards,
                                   jobs=len(shards), chunksize=1)
        for shard_result in shard_results:
            result.absorb(shard_result)
            # Shards dedup in separate processes, so a state their
            # subtrees converge to is counted once per shard: the sum is
            # an upper bound on distinct states, not an exact count.
            result.states_seen += shard_result.states_seen
            if result.stop_reason == STOP_EXHAUSTED and \
                    not shard_result.exhausted:
                result.stop_reason = shard_result.stop_reason
        limit = search.budget.max_paths
        if limit is not None and len(result.paths) > max(1, limit):
            # Shards explore their subtrees under the full budget (a shard
            # cannot know how much of the cap its siblings will use); the
            # merged result still honors the user's cap, honestly.
            keep = max(1, limit)
            dropped = len(result.paths) - keep
            if any(path.undefined for path in result.paths[keep:]):
                # The cap bounds how many path outcomes are retained; it
                # must never swallow a discovered undefined order (§2.5.2:
                # the verdict is undefined if *any* order is), so undefined
                # paths outrank defined ones for retention.
                result.paths.sort(key=lambda path: not path.undefined)
            del result.paths[keep:]
            result.skipped_alternatives += dropped
            result.stop_reason = STOP_MAX_PATHS
        return result


class _SearchHost:
    """Execution host the search engine drives: one interpreter per order.

    ``instrument`` selects the event-emitting lowered variant so the
    engine's commutativity filter can observe per-operand read/write
    footprints; without pruning the plain fold-free lowering (identical
    decision points, no event plumbing) is used instead.
    """

    def __init__(self, tool: KccTool, compiled: CompiledUnit, *, argv, stdin,
                 instrument: bool) -> None:
        self.tool = tool
        self.unit = compiled.unit
        self.argv = argv
        self.stdin = stdin
        #: The (Outcome, ExecutionResult) of the most recent defined run
        #: executed *in this process*.  Fork-mode sibling paths run in
        #: child processes, and a report must never pair one
        #: interleaving's outcome with another's execution result — the
        #: outcome anchors the identity check.  The report uses at most
        #: one defined result, so only the latest is retained (a search
        #: with many defined orders would otherwise hold one stdout
        #: buffer per explored path).
        self._defined_result: Optional[tuple[Outcome, ExecutionResult]] = None
        if tool.options.enable_lowering:
            self.lowered = compiled.lowered_for(tool.options, fold=False,
                                                instrument=instrument)
        else:
            self.lowered = None

    def new_interpreter(self, strategy) -> Interpreter:
        return Interpreter(self.unit, self.tool.options, strategy=strategy,
                           stdin=self.stdin, lowered=self.lowered)

    def run(self, interpreter: Interpreter) -> PathOutcome:
        outcome, result = self.tool._classify_execution(interpreter, self.argv)
        if not outcome.flagged and result is not None:
            self._defined_result = (outcome, result)
        return PathOutcome(script=(), undefined=outcome.flagged,
                           description=outcome.describe(), payload=outcome)

    def result_for(self, outcome: Outcome) -> Optional[ExecutionResult]:
        """The ExecutionResult of ``outcome``'s own run, if it ran here."""
        entry = self._defined_result
        if entry is not None and entry[0] is outcome:
            return entry[1]
        return None

    def run_scripted(self, strategy: ScriptedStrategy) -> PathOutcome:
        """Run one scripted order outside the engine (the parallel root run)."""
        outcome = self.run(self.new_interpreter(strategy))
        outcome.script = tuple(strategy.decisions)
        return outcome


def run_search_shard(header: tuple, scripts) -> SearchResult:
    """Pool worker: explore one shard of the interleaving tree.

    Must stay module-level (picklable).  ``header`` carries the program and
    configuration — staged submission ships it once per chunk, so the
    source text no longer travels once per shard.  Warm workers compile
    through the process-wide shared cache, so every shard after the first
    (and every later search of the same program) reuses the parse.

    Public because campaign search units (``repro.campaign.workunit``) run
    through exactly this worker: a unit's script list is a shard.
    """
    source, filename, options, argv, stdin, search = header
    from repro.api.session import compile_shared, tool_for
    from repro.kframework.engine import SearchEngine

    tool = tool_for(options)
    compiled = compile_shared(source, filename=filename, options=options)
    assert compiled.unit is not None, "shard worker got an uncompilable program"
    host = _SearchHost(tool, compiled, argv=argv, stdin=stdin,
                       instrument=search.prune_commuting)
    engine = SearchEngine(host, search, initial_scripts=[tuple(s) for s in scripts])
    return engine.run()


#: Backward-compatible name; the staged-submission callers pickle by
#: reference, so both names resolve to the same function object.
_search_shard = run_search_shard


def search_root_expansion(source: str, *, filename: str = "<input>",
                          options: CheckerOptions = DEFAULT_OPTIONS,
                          argv: Optional[list[str]] = None,
                          stdin: str = "") -> tuple[tuple[int, ...],
                                                    list[tuple[int, ...]]]:
    """Run a program's root evaluation order; return (root script, siblings).

    This is the discovery step of :meth:`KccTool._parallel_search`, exposed
    so the campaign partitioner can turn one search into relocatable root
    shards: the root script (the all-defaults decision vector) plus every
    sibling script diverging from it.  Deterministic for a given program
    and options — the same partition on every machine.
    """
    from repro.api.session import compile_shared, tool_for

    tool = tool_for(options)
    compiled = compile_shared(source, filename=filename, options=options)
    if compiled.unit is None:
        raise ValueError(
            f"cannot search {filename}: program does not compile"
        )
    host = _SearchHost(tool, compiled, argv=argv, stdin=stdin or "",
                       instrument=False)
    strategy = ScriptedStrategy()
    strategy.reset()
    host.run_scripted(strategy)
    root_script = tuple([0] * len(strategy.observed_arity))
    scripts = expand_scripts((), strategy.observed_arity)
    return root_script, scripts


# ---------------------------------------------------------------------------
# Convenience functions and CLI
# ---------------------------------------------------------------------------

def check_program(source: str, options: CheckerOptions = DEFAULT_OPTIONS, *,
                  search_evaluation_order: bool = False,
                  argv: Optional[list[str]] = None, stdin: str = "") -> CheckReport:
    """Check a C program given as source text; the main public API entry point."""
    tool = KccTool(options, search_evaluation_order=search_evaluation_order)
    return tool.check(source, argv=argv, stdin=stdin)


def run_program(source: str, options: CheckerOptions = DEFAULT_OPTIONS, *,
                argv: Optional[list[str]] = None, stdin: str = "") -> ExecutionResult:
    """Run a (presumed defined) program and return its execution result.

    Raises :class:`UndefinedBehaviorError` if the program turns out to be
    undefined — the "kcc as a compiler" usage of Section 3.2.
    """
    report = KccTool(options).check(source, argv=argv, stdin=stdin)
    if report.outcome.kind is OutcomeKind.UNDEFINED and report.outcome.error is not None:
        raise report.outcome.error
    if report.outcome.kind is OutcomeKind.STATIC_ERROR:
        raise UndefinedBehaviorError(
            report.outcome.static_violations[0].kind,
            report.outcome.static_violations[0].message,
            line=report.outcome.static_violations[0].line)
    if report.result is None:
        # The analysis could not classify the program (parse failure,
        # resource limit, unsupported construct); fabricating a successful
        # exit here would report silent success for a program that never ran.
        raise InconclusiveAnalysis(report.outcome.detail or report.outcome.describe(),
                                   outcome=report.outcome)
    return report.result


def main(argv: Optional[list[str]] = None) -> int:
    """Command line interface; see :mod:`repro.api.cli` for the subcommands."""
    from repro.api.cli import main as cli_main

    return cli_main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
