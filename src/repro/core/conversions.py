"""Value conversions of the C abstract machine.

Conversions are where a surprising amount of undefinedness hides: the same
"positive" conversion rule that works for every correct program silently
launders out-of-range values unless side conditions are added (Section 4.1 of
the paper).  The functions here implement the conversions of §6.3 together
with those side conditions, guarded by :class:`repro.core.config.CheckerOptions`.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions
from repro.core.values import (
    CValue,
    FloatValue,
    IndeterminateValue,
    IntValue,
    PointerValue,
    StructValue,
    VoidValue,
)
from repro.errors import UBKind, UndefinedBehaviorError
from repro.events import FAMILY_ARITHMETIC, FAMILY_UNINITIALIZED, report_undefined


#: Synthetic integer addresses handed out for pointer-to-integer casts.  The
#: numeric value of such a cast is implementation-defined; what matters for
#: the semantics is only that casting back recovers the same symbolic pointer.
_POINTER_ADDRESS_STRIDE = 1 << 24


def pointer_to_integer(pointer: PointerValue, target: ct.CType,
                       profile: ct.ImplementationProfile,
                       registry: dict[int, PointerValue]) -> IntValue:
    """Cast a pointer to an integer type, remembering the provenance."""
    if pointer.is_null:
        return IntValue(0, target.unqualified())
    if pointer.function is not None:
        address = _POINTER_ADDRESS_STRIDE * (hash(pointer.function) % 4096 + 1)
    else:
        address = _POINTER_ADDRESS_STRIDE * (pointer.base or 0) + pointer.offset
    registry[address] = pointer
    value = address
    if not ct.fits_in(value, target, profile):
        value = ct.wrap_unsigned(value, target, profile)
        if ct.is_signed_type(target, profile):
            bits = ct.integer_bits(target, profile)
            if value >= 1 << (bits - 1):
                value -= 1 << bits
    return IntValue(value, target.unqualified())


def integer_to_pointer(value: int, target: ct.PointerType,
                       registry: dict[int, PointerValue]) -> PointerValue:
    """Cast an integer to a pointer type.

    Zero yields the null pointer; an address previously produced by a
    pointer-to-integer cast recovers its provenance; anything else yields an
    invalid pointer (using it is then reported as undefined).
    """
    if value == 0:
        return PointerValue(base=None, offset=0, type=target.unqualified())
    known = registry.get(value)
    if known is not None:
        return known.with_type(target.unqualified())
    return PointerValue(base=-abs(value) - 1, offset=0, type=target.unqualified())


def convert(value: CValue, target: ct.CType, options: CheckerOptions, *,
            line: Optional[int] = None, explicit: bool = False,
            pointer_registry: Optional[dict[int, PointerValue]] = None) -> CValue:
    """Convert ``value`` to ``target`` type, flagging undefined conversions."""
    profile = options.profile
    target_unq = target.unqualified()
    registry = pointer_registry if pointer_registry is not None else {}

    if isinstance(target_unq, ct.VoidType):
        return VoidValue()

    if isinstance(value, VoidValue):
        raise UndefinedBehaviorError(
            UBKind.VOID_VALUE_USED,
            "The value of a void expression is used.", line=line)

    if isinstance(value, IndeterminateValue):
        # Conversion does not launder indeterminate values; the *use* check
        # happens at the operation that consumes them.
        return IndeterminateValue(type=target_unq, data=value.data)

    if isinstance(value, StructValue):
        if isinstance(target_unq, (ct.StructType, ct.UnionType, ct.ArrayType)):
            return StructValue(data=value.data, type=target_unq)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL,
            f"Cannot convert aggregate value to {target_unq}.", line=line)

    # --- integer targets ---------------------------------------------------
    if target_unq.is_integer:
        if isinstance(value, IntValue):
            return _int_to_int(value.value, target_unq, profile)
        if isinstance(value, FloatValue):
            return _float_to_int(value.value, target_unq, profile, options, line)
        if isinstance(value, PointerValue):
            if isinstance(target_unq, ct.BoolType):
                return IntValue(0 if value.is_null else 1, ct.BOOL)
            if not explicit:
                # Implicit pointer-to-integer conversion requires a cast; we
                # still perform it (compilers accept with a warning) but the
                # static checker reports it.
                pass
            return pointer_to_integer(value, target_unq, profile, registry)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Cannot convert {value} to {target_unq}.", line=line)

    # --- floating targets ----------------------------------------------------
    if isinstance(target_unq, ct.FloatType):
        if isinstance(value, IntValue):
            return FloatValue(float(value.value), target_unq)
        if isinstance(value, FloatValue):
            converted = value.value
            if target_unq.kind == "float":
                converted = _narrow_to_float(converted)
            return FloatValue(converted, target_unq)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Cannot convert {value} to {target_unq}.", line=line)

    # --- pointer targets -----------------------------------------------------
    if isinstance(target_unq, ct.PointerType):
        if isinstance(value, PointerValue):
            return value.with_type(target_unq)
        if isinstance(value, IntValue):
            return integer_to_pointer(value.value, target_unq, registry)
        if isinstance(value, FloatValue):
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                "Cannot convert a floating value to a pointer.", line=line)

    raise UndefinedBehaviorError(
        UBKind.BAD_FUNCTION_CALL,
        f"Unsupported conversion from {type(value).__name__} to {target_unq}.", line=line)


def _int_to_int(value: int, target: ct.CType, profile: ct.ImplementationProfile) -> IntValue:
    """Integer-to-integer conversion (§6.3.1.3).

    Out-of-range conversion to an unsigned type wraps (defined); to a signed
    type the result is implementation-defined (we choose wrapping) — note
    that unlike overflow in *arithmetic*, this is not undefined behavior.
    """
    if isinstance(target, ct.BoolType):
        return IntValue(1 if value != 0 else 0, ct.BOOL)
    if ct.fits_in(value, target, profile):
        return IntValue(value, target.unqualified() if isinstance(target, ct.IntType) else ct.INT)
    bits = ct.integer_bits(target, profile)
    wrapped = value & ((1 << bits) - 1)
    if ct.is_signed_type(target, profile) and wrapped >= (1 << (bits - 1)):
        wrapped -= 1 << bits
    result_type = target.unqualified() if isinstance(target, ct.IntType) else ct.INT
    return IntValue(wrapped, result_type)


def _float_to_int(value: float, target: ct.CType, profile: ct.ImplementationProfile,
                  options: CheckerOptions, line: Optional[int]) -> IntValue:
    """Float-to-integer conversion; out-of-range results are undefined (§6.3.1.4)."""
    if math.isnan(value) or math.isinf(value):
        if options.check_arithmetic:
            report_undefined(UndefinedBehaviorError(
                UBKind.CONVERSION_OVERFLOW,
                "Conversion of NaN/infinity to an integer type.", line=line),
                FAMILY_ARITHMETIC)
        return IntValue(0, target.unqualified() if isinstance(target, ct.IntType) else ct.INT)
    truncated = int(value)
    if isinstance(target, ct.BoolType):
        return IntValue(1 if value != 0.0 else 0, ct.BOOL)
    if not ct.fits_in(truncated, target, profile):
        if options.check_arithmetic:
            report_undefined(UndefinedBehaviorError(
                UBKind.CONVERSION_OVERFLOW,
                f"Conversion of out-of-range value {value!r} to {target}.", line=line),
                FAMILY_ARITHMETIC)
        return _int_to_int(truncated, target, profile)
    return IntValue(truncated, target.unqualified() if isinstance(target, ct.IntType) else ct.INT)


def _narrow_to_float(value: float) -> float:
    """Round a double to single precision (we keep it as a Python float)."""
    import struct as _struct
    try:
        return _struct.unpack("<f", _struct.pack("<f", value))[0]
    except (OverflowError, ValueError):
        return math.inf if value > 0 else -math.inf


def to_boolean(value: CValue, options: CheckerOptions, *,
               line: Optional[int] = None) -> bool:
    """Interpret a scalar value as a branch condition."""
    if isinstance(value, IndeterminateValue):
        if options.check_uninitialized:
            report_undefined(UndefinedBehaviorError(
                UBKind.UNINITIALIZED_READ,
                "Branch condition depends on an indeterminate value.", line=line),
                FAMILY_UNINITIALIZED)
        return False
    if isinstance(value, IntValue):
        return value.value != 0
    if isinstance(value, FloatValue):
        return value.value != 0.0
    if isinstance(value, PointerValue):
        return not value.is_null
    if isinstance(value, VoidValue):
        raise UndefinedBehaviorError(
            UBKind.VOID_VALUE_USED,
            "The value of a void expression is used as a condition.", line=line)
    raise UndefinedBehaviorError(
        UBKind.BAD_FUNCTION_CALL, "Aggregate value used as a condition.", line=line)
