"""Configuration of the undefinedness checker.

Each flag corresponds to one of the paper's specification techniques
(Section 4).  Turning a flag off removes the corresponding "negative
semantics" while keeping the positive semantics intact, which is exactly the
ablation the paper's narrative implies: without the extra checks, undefined
programs silently receive a meaning.  The ablation benchmark
(``benchmarks/test_bench_ablation.py``) measures how much of each test-suite
class is lost when a technique is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cfront.ctypes import ImplementationProfile, LP64


@dataclass(frozen=True)
class CheckerOptions:
    """Options controlling which undefinedness checks the semantics applies."""

    #: §4.1.1 — side conditions on arithmetic rules (division by zero,
    #: signed overflow, invalid shifts, bad conversions).
    check_arithmetic: bool = True
    #: §4.1.2 — side conditions / embedded checks on memory access rules
    #: (null/void/dead/out-of-bounds dereference, bad free).
    check_memory: bool = True
    #: §4.2.1 — track the ``locsWrittenTo`` cell and flag unsequenced side
    #: effects on scalar objects.
    check_sequencing: bool = True
    #: §4.2.2 — track the ``notWritable`` cell and flag writes to const
    #: objects and string literals.
    check_const: bool = True
    #: §4.3.1 — symbolic base/offset locations: relational comparison and
    #: subtraction of pointers into different objects is flagged.
    check_pointer_provenance: bool = True
    #: §4.3.3 — indeterminate (``unknown``) bytes: using an uninitialized
    #: value is flagged (copying through character types stays allowed).
    check_uninitialized: bool = True
    #: §6.5:7 — effective-type (strict aliasing) checking.
    check_effective_types: bool = True
    #: function call checks (argument count/type, missing return value use).
    check_functions: bool = True

    #: Implementation profile (sizes of types etc., §2.5.1).
    profile: ImplementationProfile = field(default_factory=lambda: LP64)

    #: Resource limits so analysis of looping programs terminates.
    max_steps: int = 2_000_000
    max_call_depth: int = 400
    max_heap_objects: int = 100_000

    #: Use the lowered closure-tree fast path for the dynamic stage
    #: (:mod:`repro.core.lowering`).  Verdicts are identical either way (held
    #: to by the differential tests); turning it off (``--no-lowering`` on
    #: the CLI) falls back to the legacy recursive AST walker.
    enable_lowering: bool = True

    #: Dynamic-stage engine: ``"compiled"`` (flat register bytecode on the
    #: VM of :mod:`repro.core.vm`, falling back per function to the lowered
    #: closures), ``"lowered"`` (closure trees only), or ``"walker"`` (the
    #: legacy recursive AST walker).  Verdicts are identical across all
    #: three (held to by the three-way differential matrix in
    #: ``tests/core/test_engine_matrix.py``).  The compiled engine applies
    #: to single non-search runs; evaluation-order search always keeps the
    #: walker's decision points, and runs whose probes subscribe to events
    #: use the instrumented closure engine.
    engine: str = "compiled"

    #: Evaluation-order strategy: "left-to-right", "right-to-left" or
    #: "search" (explore orders of unsequenced subexpressions, §2.5.2).
    evaluation_order: str = "left-to-right"
    #: Bound on the number of evaluation orders explored in search mode.
    max_search_paths: int = 64

    def effective_engine(self) -> str:
        """The dynamic-stage engine this configuration selects.

        ``enable_lowering=False`` (the historical ``--no-lowering`` ablation)
        forces the walker regardless of :attr:`engine`, so existing ablation
        call sites keep their meaning.
        """
        if self.engine not in ("walker", "lowered", "compiled"):
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"expected 'walker', 'lowered' or 'compiled'")
        if not self.enable_lowering:
            return "walker"
        return self.engine

    def without(self, **flags: bool) -> "CheckerOptions":
        """Return a copy with the given check flags overridden (for ablations)."""
        return replace(self, **flags)

    @classmethod
    def all_disabled(cls) -> "CheckerOptions":
        """A configuration with every undefinedness check turned off.

        This models the "positive semantics only" starting point the paper
        describes: a semantics of correct programs that silently gives
        meaning to many undefined ones.
        """
        return cls(
            check_arithmetic=False,
            check_memory=False,
            check_sequencing=False,
            check_const=False,
            check_pointer_provenance=False,
            check_uninitialized=False,
            check_effective_types=False,
            check_functions=False,
        )


DEFAULT_OPTIONS = CheckerOptions()
