"""The C standard library functions implemented natively on the abstract machine.

The paper's tool links programs against a C implementation of the library;
here the library is implemented directly on the symbolic memory so that the
same undefinedness checks apply inside library calls (e.g. ``memcpy`` past the
end of a buffer is reported the same way as a direct out-of-bounds write, and
``memcpy`` of uninitialized struct padding copies the indeterminate bytes
without flagging them, §4.3.3).

Every builtin has the signature ``builtin(interp, args, line) -> CValue``.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.cfront import ctypes as ct
from repro.core.environment import ExitSignal
from repro.core.memory import StorageKind
from repro.core.values import (
    Byte,
    ConcreteByte,
    CValue,
    FloatValue,
    IndeterminateValue,
    IntValue,
    PointerValue,
    UnknownByte,
    VoidValue,
)
from repro.errors import UBKind, UndefinedBehaviorError
from repro.events import (
    FAMILY_ARITHMETIC,
    FAMILY_FUNCTIONS,
    FAMILY_MEMORY,
    FAMILY_UNINITIALIZED,
    report_undefined,
)

BuiltinImpl = Callable[["Interpreter", list[CValue], int], CValue]  # noqa: F821

#: Allocation requests above this size are treated as exhausting memory and
#: yield a null pointer, like a real malloc would under memory pressure.
_ALLOCATION_LIMIT = 1 << 26


# ---------------------------------------------------------------------------
# Argument helpers
# ---------------------------------------------------------------------------

def _int_arg(interp, args: list[CValue], index: int, line: int, name: str) -> int:
    if index >= len(args):
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Missing argument {index + 1} to {name}().", line=line)
    value = args[index]
    if isinstance(value, IndeterminateValue):
        if interp.options.check_uninitialized:
            report_undefined(UndefinedBehaviorError(
                UBKind.UNINITIALIZED_READ,
                f"Indeterminate value passed to {name}().", line=line),
                FAMILY_UNINITIALIZED)
        return 0
    if isinstance(value, IntValue):
        return value.value
    if isinstance(value, FloatValue):
        return int(value.value)
    if isinstance(value, PointerValue) and value.is_null:
        return 0
    raise UndefinedBehaviorError(
        UBKind.BAD_FUNCTION_CALL, f"Argument {index + 1} to {name}() must be an integer.",
        line=line)


def _float_arg(interp, args: list[CValue], index: int, line: int, name: str) -> float:
    if index >= len(args):
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Missing argument {index + 1} to {name}().", line=line)
    value = args[index]
    if isinstance(value, FloatValue):
        return value.value
    if isinstance(value, IntValue):
        return float(value.value)
    if isinstance(value, IndeterminateValue) and interp.options.check_uninitialized:
        report_undefined(UndefinedBehaviorError(
            UBKind.UNINITIALIZED_READ, f"Indeterminate value passed to {name}().", line=line),
            FAMILY_UNINITIALIZED)
    raise UndefinedBehaviorError(
        UBKind.BAD_FUNCTION_CALL, f"Argument {index + 1} to {name}() must be numeric.", line=line)


def _pointer_arg(interp, args: list[CValue], index: int, line: int, name: str) -> PointerValue:
    if index >= len(args):
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Missing argument {index + 1} to {name}().", line=line)
    value = args[index]
    if isinstance(value, PointerValue):
        return value
    if isinstance(value, IntValue) and value.value == 0:
        return PointerValue(base=None, offset=0, type=ct.VOID_PTR)
    if isinstance(value, IndeterminateValue):
        raise UndefinedBehaviorError(
            UBKind.UNINITIALIZED_READ,
            f"Indeterminate pointer passed to {name}().", line=line)
    raise UndefinedBehaviorError(
        UBKind.BAD_FUNCTION_CALL, f"Argument {index + 1} to {name}() must be a pointer.",
        line=line)


def _read_c_string(interp, pointer: PointerValue, line: int, name: str,
                   limit: Optional[int] = None) -> str:
    """Read a NUL-terminated string, reporting missing terminators and bad reads."""
    memory = interp.memory
    obj = memory.check_access(pointer, 1, write=False, line=line)
    characters: list[str] = []
    offset = pointer.offset
    count = 0
    while True:
        if limit is not None and count >= limit:
            return "".join(characters)
        if obj is not None and offset >= obj.size:
            raise UndefinedBehaviorError(
                UBKind.UNTERMINATED_STRING_OP,
                f"{name}() reads past the end of the object: no terminating NUL.", line=line)
        data = memory.read_bytes(pointer.with_offset(offset), 1, line=line,
                                 lvalue_type=ct.CHAR, track_sequencing=False)
        byte = data[0]
        if isinstance(byte, UnknownByte):
            if interp.options.check_uninitialized:
                report_undefined(UndefinedBehaviorError(
                    UBKind.UNINITIALIZED_READ,
                    f"{name}() reads an uninitialized byte.", line=line),
                    FAMILY_UNINITIALIZED)
            return "".join(characters)
        if not isinstance(byte, ConcreteByte):
            raise UndefinedBehaviorError(
                UBKind.EFFECTIVE_TYPE_VIOLATION,
                f"{name}() reads a non-character object representation.", line=line)
        if byte.value == 0:
            return "".join(characters)
        characters.append(chr(byte.value))
        offset += 1
        count += 1


def _write_c_string(interp, pointer: PointerValue, text: str, line: int,
                    include_nul: bool = True) -> None:
    data: list[Byte] = [ConcreteByte(ord(ch) & 0xFF) for ch in text]
    if include_nul:
        data.append(ConcreteByte(0))
    interp.memory.write_bytes(pointer, data, line=line, lvalue_type=ct.CHAR,
                              track_sequencing=False)


def _check_overlap(interp, dest: PointerValue, src: PointerValue, count: int,
                   line: int, name: str) -> None:
    if not interp.options.check_memory or count == 0:
        return
    if dest.base is None or src.base is None or dest.base != src.base:
        return
    d0, d1 = dest.offset, dest.offset + count
    s0, s1 = src.offset, src.offset + count
    if d0 < s1 and s0 < d1:
        report_undefined(UndefinedBehaviorError(
            UBKind.OVERLAPPING_COPY,
            f"{name}() called with overlapping source and destination.", line=line),
            FAMILY_MEMORY)


# ---------------------------------------------------------------------------
# Allocation
# ---------------------------------------------------------------------------

def _malloc(interp, args, line) -> CValue:
    size = _int_arg(interp, args, 0, line, "malloc")
    if size < 0 or size > _ALLOCATION_LIMIT:
        if size < 0 and interp.options.check_memory:
            report_undefined(UndefinedBehaviorError(
                UBKind.NEGATIVE_SIZE_ALLOCATION,
                f"malloc() called with pathological size {size}.", line=line),
                FAMILY_MEMORY)
        return PointerValue(base=None, offset=0, type=ct.VOID_PTR)
    obj = interp.memory.allocate(size, StorageKind.HEAP, name=f"malloc({size})")
    return PointerValue(base=obj.base, offset=0, type=ct.VOID_PTR)


def _calloc(interp, args, line) -> CValue:
    count = _int_arg(interp, args, 0, line, "calloc")
    size = _int_arg(interp, args, 1, line, "calloc")
    total = count * size
    if total < 0 or total > _ALLOCATION_LIMIT:
        return PointerValue(base=None, offset=0, type=ct.VOID_PTR)
    obj = interp.memory.allocate(total, StorageKind.HEAP, name=f"calloc({count},{size})",
                                 data=[ConcreteByte(0) for _ in range(total)])
    return PointerValue(base=obj.base, offset=0, type=ct.VOID_PTR)


def _realloc(interp, args, line) -> CValue:
    pointer = _pointer_arg(interp, args, 0, line, "realloc")
    size = _int_arg(interp, args, 1, line, "realloc")
    if pointer.is_null:
        return _malloc(interp, [IntValue(size, ct.ULONG)], line)
    old = interp.memory.object_for(pointer.base)
    if old is None or old.kind is not StorageKind.HEAP or not old.alive:
        raise UndefinedBehaviorError(
            UBKind.BAD_FREE, "realloc() of a pointer not obtained from an allocation function.",
            line=line)
    if size < 0 or size > _ALLOCATION_LIMIT:
        return PointerValue(base=None, offset=0, type=ct.VOID_PTR)
    new_obj = interp.memory.allocate(size, StorageKind.HEAP, name=f"realloc({size})")
    keep = min(size, old.size)
    new_obj.data[0:keep] = old.data[0:keep]
    interp.memory.free(pointer, line=line)
    return PointerValue(base=new_obj.base, offset=0, type=ct.VOID_PTR)


def _free(interp, args, line) -> CValue:
    pointer = _pointer_arg(interp, args, 0, line, "free")
    interp.memory.free(pointer, line=line)
    return VoidValue()


# ---------------------------------------------------------------------------
# Program termination
# ---------------------------------------------------------------------------

def _exit(interp, args, line) -> CValue:
    status = _int_arg(interp, args, 0, line, "exit") if args else 0
    raise ExitSignal(status)


def _abort(interp, args, line) -> CValue:
    raise ExitSignal(134, aborted=True)


def _assert_fail(interp, args, line) -> CValue:
    raise ExitSignal(134, aborted=True)


# ---------------------------------------------------------------------------
# stdio
# ---------------------------------------------------------------------------

def _format_output(interp, fmt: str, args: list[CValue], line: int, name: str) -> str:
    """Render a printf-style format string, checking conversions against args."""
    output: list[str] = []
    arg_index = 0
    i = 0
    options = interp.options
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            output.append(ch)
            i += 1
            continue
        i += 1
        if i < len(fmt) and fmt[i] == "%":
            output.append("%")
            i += 1
            continue
        # flags / width / precision (parsed, mostly ignored for rendering)
        spec = ""
        while i < len(fmt) and fmt[i] in "-+ #0123456789.*":
            spec += fmt[i]
            i += 1
        length = ""
        while i < len(fmt) and fmt[i] in "hlLzjt":
            length += fmt[i]
            i += 1
        if i >= len(fmt):
            break
        conv = fmt[i]
        i += 1
        if "*" in spec:
            _int_arg(interp, args, arg_index, line, name)
            arg_index += 1
        if arg_index >= len(args):
            if options.check_functions:
                report_undefined(UndefinedBehaviorError(
                    UBKind.FORMAT_MISMATCH,
                    f"{name}(): not enough arguments for format string.", line=line),
                    FAMILY_FUNCTIONS)
            output.append("")
            continue
        arg = args[arg_index]
        arg_index += 1
        if conv in "diouxX":
            if isinstance(arg, PointerValue) and not arg.is_null:
                if options.check_functions:
                    report_undefined(UndefinedBehaviorError(
                        UBKind.FORMAT_MISMATCH,
                        f"{name}(): '%{conv}' conversion given a pointer argument.", line=line),
                        FAMILY_FUNCTIONS)
                # Recorded (or ablated): the mismatch is the finding; model
                # the continuation by rendering the address as '%p' would,
                # rather than getting stuck on the argument fetch.
                output.append(str((arg.base or 0) * 4096 + arg.offset))
                continue
            value = _int_arg(interp, args, arg_index - 1, line, name)
            if conv in "di":
                output.append(str(value))
            elif conv == "u":
                output.append(str(value & 0xFFFFFFFFFFFFFFFF if value < 0 else value))
            elif conv == "o":
                output.append(format(value & 0xFFFFFFFFFFFFFFFF, "o"))
            else:
                text = format(value & 0xFFFFFFFFFFFFFFFF, "x")
                output.append(text.upper() if conv == "X" else text)
        elif conv in "fFeEgG":
            value = _float_arg(interp, args, arg_index - 1, line, name)
            output.append(f"{value:.6f}" if conv in "fF" else f"{value:g}")
        elif conv == "c":
            value = _int_arg(interp, args, arg_index - 1, line, name)
            output.append(chr(value & 0xFF))
        elif conv == "s":
            pointer = _pointer_arg(interp, args, arg_index - 1, line, name)
            if pointer.is_null:
                if options.check_functions:
                    report_undefined(UndefinedBehaviorError(
                        UBKind.NULL_DEREFERENCE,
                        f"{name}(): '%s' conversion given a null pointer.", line=line),
                        FAMILY_FUNCTIONS)
                output.append("(null)")
            else:
                output.append(_read_c_string(interp, pointer, line, name))
        elif conv == "p":
            pointer = args[arg_index - 1]
            if isinstance(pointer, PointerValue):
                if pointer.is_null:
                    output.append("(nil)")
                else:
                    output.append(f"0x{(pointer.base or 0) * 4096 + pointer.offset:x}")
            else:
                output.append(str(pointer))
        elif conv == "n":
            raise UndefinedBehaviorError(
                UBKind.FORMAT_MISMATCH, f"{name}(): '%n' is not supported.", line=line)
        else:
            if options.check_functions:
                report_undefined(UndefinedBehaviorError(
                    UBKind.FORMAT_MISMATCH,
                    f"{name}(): unknown conversion specifier '%{conv}'.", line=line),
                    FAMILY_FUNCTIONS)
    return "".join(output)


def _printf(interp, args, line) -> CValue:
    fmt_pointer = _pointer_arg(interp, args, 0, line, "printf")
    fmt = _read_c_string(interp, fmt_pointer, line, "printf")
    text = _format_output(interp, fmt, args[1:], line, "printf")
    interp.write_output(text)
    return IntValue(len(text), ct.INT)


def _puts(interp, args, line) -> CValue:
    pointer = _pointer_arg(interp, args, 0, line, "puts")
    text = _read_c_string(interp, pointer, line, "puts")
    interp.write_output(text + "\n")
    return IntValue(len(text) + 1, ct.INT)


def _putchar(interp, args, line) -> CValue:
    value = _int_arg(interp, args, 0, line, "putchar")
    interp.write_output(chr(value & 0xFF))
    return IntValue(value & 0xFF, ct.INT)


def _getchar(interp, args, line) -> CValue:
    ch = interp.read_input_char()
    return IntValue(ch, ct.INT)


def _sprintf(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "sprintf")
    fmt_pointer = _pointer_arg(interp, args, 1, line, "sprintf")
    fmt = _read_c_string(interp, fmt_pointer, line, "sprintf")
    text = _format_output(interp, fmt, args[2:], line, "sprintf")
    _write_c_string(interp, dest, text, line)
    return IntValue(len(text), ct.INT)


def _snprintf(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "snprintf")
    size = _int_arg(interp, args, 1, line, "snprintf")
    fmt_pointer = _pointer_arg(interp, args, 2, line, "snprintf")
    fmt = _read_c_string(interp, fmt_pointer, line, "snprintf")
    text = _format_output(interp, fmt, args[3:], line, "snprintf")
    if size > 0:
        _write_c_string(interp, dest, text[:size - 1], line)
    return IntValue(len(text), ct.INT)


def _scanf(interp, args, line) -> CValue:
    fmt_pointer = _pointer_arg(interp, args, 0, line, "scanf")
    fmt = _read_c_string(interp, fmt_pointer, line, "scanf")
    conversions = fmt.count("%") - 2 * fmt.count("%%")
    assigned = 0
    arg_index = 1
    for _ in range(conversions):
        token = interp.read_input_token()
        if token is None:
            break
        if arg_index >= len(args):
            raise UndefinedBehaviorError(
                UBKind.FORMAT_MISMATCH, "scanf(): not enough pointer arguments.", line=line)
        pointer = _pointer_arg(interp, args, arg_index, line, "scanf")
        arg_index += 1
        try:
            value = int(token)
        except ValueError:
            break
        data = interp.encode_scalar(value, ct.INT)
        interp.memory.write_bytes(pointer, data, line=line, lvalue_type=ct.INT,
                                  track_sequencing=False)
        assigned += 1
    return IntValue(assigned, ct.INT)


# ---------------------------------------------------------------------------
# string.h
# ---------------------------------------------------------------------------

def _memcpy(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "memcpy")
    src = _pointer_arg(interp, args, 1, line, "memcpy")
    count = _int_arg(interp, args, 2, line, "memcpy")
    if count < 0:
        raise UndefinedBehaviorError(
            UBKind.NEGATIVE_SIZE_ALLOCATION, "memcpy() with a negative size.", line=line)
    _check_overlap(interp, dest, src, count, line, "memcpy")
    if count == 0:
        return dest
    data = interp.memory.read_bytes(src, count, line=line, track_sequencing=False)
    interp.memory.write_bytes(dest, data, line=line, track_sequencing=False)
    return dest


def _memmove(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "memmove")
    src = _pointer_arg(interp, args, 1, line, "memmove")
    count = _int_arg(interp, args, 2, line, "memmove")
    if count <= 0:
        return dest
    data = interp.memory.read_bytes(src, count, line=line, track_sequencing=False)
    interp.memory.write_bytes(dest, data, line=line, track_sequencing=False)
    return dest


def _memset(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "memset")
    value = _int_arg(interp, args, 1, line, "memset")
    count = _int_arg(interp, args, 2, line, "memset")
    if count < 0:
        raise UndefinedBehaviorError(
            UBKind.NEGATIVE_SIZE_ALLOCATION, "memset() with a negative size.", line=line)
    data: list[Byte] = [ConcreteByte(value & 0xFF) for _ in range(count)]
    if count:
        interp.memory.write_bytes(dest, data, line=line, track_sequencing=False)
    return dest


def _memcmp(interp, args, line) -> CValue:
    left = _pointer_arg(interp, args, 0, line, "memcmp")
    right = _pointer_arg(interp, args, 1, line, "memcmp")
    count = _int_arg(interp, args, 2, line, "memcmp")
    if count <= 0:
        return IntValue(0, ct.INT)
    left_data = interp.memory.read_bytes(left, count, line=line, track_sequencing=False)
    right_data = interp.memory.read_bytes(right, count, line=line, track_sequencing=False)
    for lb, rb in zip(left_data, right_data):
        lv = lb.value if isinstance(lb, ConcreteByte) else 0
        rv = rb.value if isinstance(rb, ConcreteByte) else 0
        if lv != rv:
            return IntValue(1 if lv > rv else -1, ct.INT)
    return IntValue(0, ct.INT)


def _strlen(interp, args, line) -> CValue:
    pointer = _pointer_arg(interp, args, 0, line, "strlen")
    text = _read_c_string(interp, pointer, line, "strlen")
    return IntValue(len(text), ct.ULONG)


def _strcpy(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "strcpy")
    src = _pointer_arg(interp, args, 1, line, "strcpy")
    text = _read_c_string(interp, src, line, "strcpy")
    _check_overlap(interp, dest, src, len(text) + 1, line, "strcpy")
    _write_c_string(interp, dest, text, line)
    return dest


def _strncpy(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "strncpy")
    src = _pointer_arg(interp, args, 1, line, "strncpy")
    count = _int_arg(interp, args, 2, line, "strncpy")
    text = _read_c_string(interp, src, line, "strncpy", limit=count)
    padded = text[:count].ljust(count, "\0")
    if count:
        _write_c_string(interp, dest, padded, line, include_nul=False)
    return dest


def _strcat(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "strcat")
    src = _pointer_arg(interp, args, 1, line, "strcat")
    existing = _read_c_string(interp, dest, line, "strcat")
    addition = _read_c_string(interp, src, line, "strcat")
    _write_c_string(interp, dest.with_offset(dest.offset + len(existing)), addition, line)
    return dest


def _strncat(interp, args, line) -> CValue:
    dest = _pointer_arg(interp, args, 0, line, "strncat")
    src = _pointer_arg(interp, args, 1, line, "strncat")
    count = _int_arg(interp, args, 2, line, "strncat")
    existing = _read_c_string(interp, dest, line, "strncat")
    addition = _read_c_string(interp, src, line, "strncat", limit=count)[:count]
    _write_c_string(interp, dest.with_offset(dest.offset + len(existing)), addition, line)
    return dest


def _strcmp(interp, args, line) -> CValue:
    left = _read_c_string(interp, _pointer_arg(interp, args, 0, line, "strcmp"), line, "strcmp")
    right = _read_c_string(interp, _pointer_arg(interp, args, 1, line, "strcmp"), line, "strcmp")
    if left == right:
        return IntValue(0, ct.INT)
    return IntValue(1 if left > right else -1, ct.INT)


def _strncmp(interp, args, line) -> CValue:
    count = _int_arg(interp, args, 2, line, "strncmp")
    left = _read_c_string(interp, _pointer_arg(interp, args, 0, line, "strncmp"),
                          line, "strncmp", limit=count)[:count]
    right = _read_c_string(interp, _pointer_arg(interp, args, 1, line, "strncmp"),
                           line, "strncmp", limit=count)[:count]
    if left == right:
        return IntValue(0, ct.INT)
    return IntValue(1 if left > right else -1, ct.INT)


def _strchr(interp, args, line) -> CValue:
    pointer = _pointer_arg(interp, args, 0, line, "strchr")
    target = _int_arg(interp, args, 1, line, "strchr") & 0xFF
    text = _read_c_string(interp, pointer, line, "strchr")
    haystack = text + "\0"
    for index, ch in enumerate(haystack):
        if ord(ch) == target:
            # Note: like the real strchr, the const qualifier of the argument
            # is silently dropped (the paper's §4.2.2 example) — the object
            # stays in the notWritable set, so writes through the result are
            # still caught.
            return pointer.with_offset(pointer.offset + index).with_type(ct.CHAR_PTR)
    return PointerValue(base=None, offset=0, type=ct.CHAR_PTR)


def _strrchr(interp, args, line) -> CValue:
    pointer = _pointer_arg(interp, args, 0, line, "strrchr")
    target = _int_arg(interp, args, 1, line, "strrchr") & 0xFF
    text = _read_c_string(interp, pointer, line, "strrchr")
    haystack = text + "\0"
    best = -1
    for index, ch in enumerate(haystack):
        if ord(ch) == target:
            best = index
    if best < 0:
        return PointerValue(base=None, offset=0, type=ct.CHAR_PTR)
    return pointer.with_offset(pointer.offset + best).with_type(ct.CHAR_PTR)


def _strstr(interp, args, line) -> CValue:
    haystack_ptr = _pointer_arg(interp, args, 0, line, "strstr")
    needle_ptr = _pointer_arg(interp, args, 1, line, "strstr")
    haystack = _read_c_string(interp, haystack_ptr, line, "strstr")
    needle = _read_c_string(interp, needle_ptr, line, "strstr")
    index = haystack.find(needle)
    if index < 0:
        return PointerValue(base=None, offset=0, type=ct.CHAR_PTR)
    return haystack_ptr.with_offset(haystack_ptr.offset + index).with_type(ct.CHAR_PTR)


# ---------------------------------------------------------------------------
# stdlib arithmetic, ctype, math
# ---------------------------------------------------------------------------

def _abs(interp, args, line) -> CValue:
    value = _int_arg(interp, args, 0, line, "abs")
    lo, _hi = ct.integer_range(ct.INT, interp.profile)
    if value == lo and interp.options.check_arithmetic:
        report_undefined(UndefinedBehaviorError(
            UBKind.SIGNED_OVERFLOW, "abs(INT_MIN) overflows.", line=line),
            FAMILY_ARITHMETIC)
    return IntValue(abs(value), ct.INT)


def _labs(interp, args, line) -> CValue:
    value = _int_arg(interp, args, 0, line, "labs")
    lo, _hi = ct.integer_range(ct.LONG, interp.profile)
    if value == lo and interp.options.check_arithmetic:
        report_undefined(UndefinedBehaviorError(
            UBKind.SIGNED_OVERFLOW, "labs(LONG_MIN) overflows.", line=line),
            FAMILY_ARITHMETIC)
    return IntValue(abs(value), ct.LONG)


def _atoi(interp, args, line) -> CValue:
    pointer = _pointer_arg(interp, args, 0, line, "atoi")
    text = _read_c_string(interp, pointer, line, "atoi").strip()
    value = _parse_prefix_int(text)
    return IntValue(value, ct.INT)


def _atol(interp, args, line) -> CValue:
    pointer = _pointer_arg(interp, args, 0, line, "atol")
    text = _read_c_string(interp, pointer, line, "atol").strip()
    return IntValue(_parse_prefix_int(text), ct.LONG)


def _parse_prefix_int(text: str) -> int:
    sign = 1
    index = 0
    if index < len(text) and text[index] in "+-":
        sign = -1 if text[index] == "-" else 1
        index += 1
    digits = ""
    while index < len(text) and text[index].isdigit():
        digits += text[index]
        index += 1
    return sign * int(digits) if digits else 0


def _rand(interp, args, line) -> CValue:
    return IntValue(interp.next_random(), ct.INT)


def _srand(interp, args, line) -> CValue:
    seed = _int_arg(interp, args, 0, line, "srand")
    interp.seed_random(seed)
    return VoidValue()


def _fabs(interp, args, line) -> CValue:
    return FloatValue(abs(_float_arg(interp, args, 0, line, "fabs")), ct.DOUBLE)


def _sqrt(interp, args, line) -> CValue:
    value = _float_arg(interp, args, 0, line, "sqrt")
    if value < 0:
        return FloatValue(float("nan"), ct.DOUBLE)
    return FloatValue(math.sqrt(value), ct.DOUBLE)


def _pow(interp, args, line) -> CValue:
    base = _float_arg(interp, args, 0, line, "pow")
    exponent = _float_arg(interp, args, 1, line, "pow")
    try:
        return FloatValue(float(base ** exponent), ct.DOUBLE)
    except (OverflowError, ZeroDivisionError, ValueError):
        return FloatValue(float("inf"), ct.DOUBLE)


def _floor(interp, args, line) -> CValue:
    return FloatValue(math.floor(_float_arg(interp, args, 0, line, "floor")), ct.DOUBLE)


def _ceil(interp, args, line) -> CValue:
    return FloatValue(math.ceil(_float_arg(interp, args, 0, line, "ceil")), ct.DOUBLE)


def _fmod(interp, args, line) -> CValue:
    x = _float_arg(interp, args, 0, line, "fmod")
    y = _float_arg(interp, args, 1, line, "fmod")
    if y == 0.0:
        return FloatValue(float("nan"), ct.DOUBLE)
    return FloatValue(math.fmod(x, y), ct.DOUBLE)


def _ctype(predicate: Callable[[int], bool]) -> BuiltinImpl:
    def implementation(interp, args, line) -> CValue:
        value = _int_arg(interp, args, 0, line, "isX")
        return IntValue(1 if 0 <= value < 256 and predicate(value) else 0, ct.INT)
    return implementation


def _toupper(interp, args, line) -> CValue:
    value = _int_arg(interp, args, 0, line, "toupper")
    if ord("a") <= value <= ord("z"):
        return IntValue(value - 32, ct.INT)
    return IntValue(value, ct.INT)


def _tolower(interp, args, line) -> CValue:
    value = _int_arg(interp, args, 0, line, "tolower")
    if ord("A") <= value <= ord("Z"):
        return IntValue(value + 32, ct.INT)
    return IntValue(value, ct.INT)


BUILTIN_IMPLEMENTATIONS: dict[str, BuiltinImpl] = {
    "malloc": _malloc,
    "calloc": _calloc,
    "realloc": _realloc,
    "free": _free,
    "exit": _exit,
    "abort": _abort,
    "__assert_fail": _assert_fail,
    "printf": _printf,
    "puts": _puts,
    "putchar": _putchar,
    "getchar": _getchar,
    "sprintf": _sprintf,
    "snprintf": _snprintf,
    "scanf": _scanf,
    "memcpy": _memcpy,
    "memmove": _memmove,
    "memset": _memset,
    "memcmp": _memcmp,
    "strlen": _strlen,
    "strcpy": _strcpy,
    "strncpy": _strncpy,
    "strcat": _strcat,
    "strncat": _strncat,
    "strcmp": _strcmp,
    "strncmp": _strncmp,
    "strchr": _strchr,
    "strrchr": _strrchr,
    "strstr": _strstr,
    "abs": _abs,
    "labs": _labs,
    "atoi": _atoi,
    "atol": _atol,
    "rand": _rand,
    "srand": _srand,
    "fabs": _fabs,
    "sqrt": _sqrt,
    "pow": _pow,
    "floor": _floor,
    "ceil": _ceil,
    "fmod": _fmod,
    "isdigit": _ctype(lambda c: chr(c).isdigit()),
    "isalpha": _ctype(lambda c: chr(c).isalpha()),
    "isalnum": _ctype(lambda c: chr(c).isalnum()),
    "isspace": _ctype(lambda c: chr(c).isspace()),
    "isupper": _ctype(lambda c: chr(c).isupper()),
    "islower": _ctype(lambda c: chr(c).islower()),
    "toupper": _toupper,
    "tolower": _tolower,
}
