"""Expression evaluation rules of the dynamic semantics.

Each ``_eval_*`` method corresponds to a family of K rules in the paper's C
semantics; the ``if options.check_*`` branches are the *side conditions* and
*embedded checks* of Section 4.1 that turn the positive semantics into an
undefinedness checker.  When a check fires the evaluator raises
:class:`UndefinedBehaviorError`, which is the Python analogue of the rewrite
system getting stuck on an undefined redex (and of the explicit
``reportError`` rules of Section 4.5.1).
"""

from __future__ import annotations


from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.core.conversions import convert, to_boolean
from repro.core.environment import FunctionBinding, LValue
from repro.core.values import (
    CValue,
    FloatValue,
    IndeterminateValue,
    IntValue,
    PointerValue,
    StructValue,
    VoidValue,
    decode_value,
    encode_value,
)
from repro.errors import UBKind, UndefinedBehaviorError, UnsupportedFeatureError
from repro.events import (
    FAMILY_ARITHMETIC,
    FAMILY_CONST,
    FAMILY_MEMORY,
    FAMILY_PROVENANCE,
    FAMILY_UNINITIALIZED,
    ArithCheckEvent,
    BranchEvent,
    LvalueConvertEvent,
    report_undefined,
)


class ExpressionEvaluatorMixin:
    """Expression evaluation; mixed into :class:`repro.core.interpreter.Interpreter`."""

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def eval_expr(self, expr: c_ast.Expression) -> CValue:
        """Evaluate ``expr`` to a value (performing lvalue conversion)."""
        self.step(expr.line)
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise UnsupportedFeatureError(f"cannot evaluate {type(expr).__name__}")
        return method(expr)

    def eval_lvalue(self, expr: c_ast.Expression) -> LValue:
        """Evaluate ``expr`` as an lvalue (a designated object location)."""
        self.step(expr.line)
        if isinstance(expr, c_ast.Identifier):
            binding = self.lookup_binding(expr.name, expr.line)
            if isinstance(binding, FunctionBinding):
                raise UndefinedBehaviorError(
                    UBKind.BAD_FUNCTION_CALL,
                    f"Function designator '{expr.name}' used where an object is required.",
                    line=expr.line)
            pointer = PointerValue(base=binding.base, offset=0,
                                   type=ct.PointerType(pointee=binding.type))
            return LValue(pointer=pointer, type=binding.type)
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "*":
            value = self.eval_expr(expr.operand)
            return self._deref_to_lvalue(value, expr.line)
        if isinstance(expr, c_ast.ArraySubscript):
            return self._subscript_lvalue(expr)
        if isinstance(expr, c_ast.Member):
            return self._member_lvalue(expr)
        if isinstance(expr, c_ast.StringLiteral):
            pointer, array_type = self.string_literal_object(expr.value)
            return LValue(pointer=pointer.with_type(ct.PointerType(pointee=array_type)),
                          type=array_type)
        if isinstance(expr, c_ast.Cast):
            if isinstance(expr.operand, c_ast.InitList):
                # A compound literal is an lvalue (§6.5.2.5); its address can
                # be taken, and outlives only its enclosing block.
                return self.compound_literal_lvalue(
                    expr.target_type, expr.operand, expr.line)
            # A plain cast is not an lvalue in C; accepting it would hide bugs.
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL, "Cast expression used as an lvalue.", line=expr.line)
        if isinstance(expr, c_ast.Comma):
            self.eval_expr(expr.left)
            self.memory.sequence_point()
            return self.eval_lvalue(expr.right)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL,
            f"Expression of kind {type(expr).__name__} is not an lvalue.", line=expr.line)

    # ------------------------------------------------------------------
    # Loads and stores
    # ------------------------------------------------------------------
    def read_lvalue(self, lvalue: LValue, line: int) -> CValue:
        """Lvalue conversion: read the designated object (§6.3.2.1:2)."""
        ltype = lvalue.type
        if self.events is not None:
            self.events.emit(LvalueConvertEvent(ltype, line))
        if isinstance(ltype, ct.ArrayType):
            # Arrays convert to a pointer to their first element.
            return PointerValue(base=lvalue.base, offset=lvalue.offset,
                                type=ct.PointerType(pointee=ltype.element))
        if isinstance(ltype, ct.FunctionType):
            return PointerValue(base=None, offset=0, function=lvalue.pointer.function,
                                type=ct.PointerType(pointee=ltype))
        size = ct.size_of(ltype, self.profile)
        self.memory.check_alignment(lvalue.pointer, ltype, line)
        data = self.memory.read_bytes(lvalue.pointer, size, line=line, lvalue_type=ltype)
        value = decode_value(data, ltype, self.profile)
        if type(value) is StructValue:
            # Remember where the bytes came from so a whole-object store can
            # detect an overlapping-object assignment (§6.5.16.1:3).
            value = StructValue(data=value.data, type=value.type,
                                source_base=lvalue.pointer.base,
                                source_offset=lvalue.pointer.offset)
        if (isinstance(value, IndeterminateValue) and self.options.check_uninitialized
                and ltype.is_scalar and not ct.is_character_type(ltype)
                and any(type(b).__name__ == "UnknownByte" for b in data)):
            report_undefined(UndefinedBehaviorError(
                UBKind.UNINITIALIZED_READ,
                f"Read of an uninitialized (indeterminate) value of type {ltype}.", line=line),
                FAMILY_UNINITIALIZED)
        return value

    def write_lvalue(self, lvalue: LValue, value: CValue, line: int) -> None:
        """Store ``value`` into the object designated by ``lvalue``."""
        ltype = lvalue.type
        if isinstance(ltype, (ct.ArrayType, ct.FunctionType)):
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL, f"Cannot assign to an expression of type {ltype}.",
                line=line)
        if self.options.check_const and ltype.const:
            report_undefined(UndefinedBehaviorError(
                UBKind.CONST_VIOLATION,
                "Assignment to an lvalue with const-qualified type.", line=line),
                FAMILY_CONST)
        self.memory.check_alignment(lvalue.pointer, ltype, line)
        data = encode_value(value, ltype, self.profile)
        if (type(value) is StructValue and value.source_base is not None
                and self.options.check_memory
                and value.source_base == lvalue.pointer.base):
            # §6.5.16.1:3 — assignment between inexactly overlapping objects.
            size = len(data)
            src = value.source_offset
            dst = lvalue.pointer.offset
            if src != dst and src < dst + size and dst < src + size:
                report_undefined(UndefinedBehaviorError(
                    UBKind.OVERLAPPING_COPY,
                    "Assignment between overlapping objects.", line=line),
                    FAMILY_MEMORY, check="overlap")
        self.memory.write_bytes(lvalue.pointer, data, line=line, lvalue_type=ltype)

    # ------------------------------------------------------------------
    # Primary expressions
    # ------------------------------------------------------------------
    def _eval_IntegerLiteral(self, expr: c_ast.IntegerLiteral) -> CValue:
        return IntValue(expr.value, expr.type or ct.INT)

    def _eval_FloatLiteral(self, expr: c_ast.FloatLiteral) -> CValue:
        return FloatValue(expr.value, expr.type or ct.DOUBLE)

    def _eval_CharLiteral(self, expr: c_ast.CharLiteral) -> CValue:
        return IntValue(expr.value, ct.INT)

    def _eval_StringLiteral(self, expr: c_ast.StringLiteral) -> CValue:
        pointer, array_type = self.string_literal_object(expr.value)
        return pointer.with_type(ct.PointerType(pointee=array_type.element))

    def _eval_Identifier(self, expr: c_ast.Identifier) -> CValue:
        binding = self.lookup_binding(expr.name, expr.line)
        if isinstance(binding, FunctionBinding):
            return PointerValue(base=None, offset=0, function=binding.name,
                                type=ct.PointerType(pointee=binding.type))
        lvalue = LValue(
            pointer=PointerValue(base=binding.base, offset=0,
                                 type=ct.PointerType(pointee=binding.type)),
            type=binding.type)
        return self.read_lvalue(lvalue, expr.line)

    # ------------------------------------------------------------------
    # Postfix expressions
    # ------------------------------------------------------------------
    def _subscript_lvalue(self, expr: c_ast.ArraySubscript) -> LValue:
        base_value, index_value = self._eval_unsequenced(
            [expr.array, expr.index], expr.line)
        if isinstance(index_value, PointerValue) and not isinstance(base_value, PointerValue):
            base_value, index_value = index_value, base_value  # i[a] form
        pointer = self._require_pointer(base_value, expr.line, "subscripted value")
        index = self._require_int(index_value, expr.line, "array subscript")
        element_type = pointer.pointee_type
        new_pointer = self._pointer_add(pointer, index, expr.line)
        return LValue(pointer=new_pointer, type=element_type)

    def _eval_ArraySubscript(self, expr: c_ast.ArraySubscript) -> CValue:
        return self.read_lvalue(self._subscript_lvalue(expr), expr.line)

    def _member_lvalue(self, expr: c_ast.Member) -> LValue:
        if expr.arrow:
            pointer_value = self.eval_expr(expr.object)
            pointer = self._require_pointer(pointer_value, expr.line, "'->' operand")
            record_type = pointer.pointee_type
            base_pointer = pointer
        else:
            inner = self.eval_lvalue(expr.object)
            record_type = inner.type
            base_pointer = inner.pointer
        record_type = self.resolve_record(record_type, expr.line)
        if not isinstance(record_type, (ct.StructType, ct.UnionType)) or record_type.fields is None:
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                f"Member access on non-record or incomplete type {record_type}.", line=expr.line)
        layout = ct.struct_layout(record_type, self.profile)
        field_layout = layout.field(expr.member)
        if field_layout is None:
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                f"{record_type} has no member named '{expr.member}'.", line=expr.line)
        field_type = field_layout.type
        if record_type.const:
            field_type = field_type.with_qualifiers(const=True)
        pointer = PointerValue(
            base=base_pointer.base,
            offset=base_pointer.offset + field_layout.offset,
            type=ct.PointerType(pointee=field_type),
            function=base_pointer.function)
        return LValue(pointer=pointer, type=field_type)

    def _eval_Member(self, expr: c_ast.Member) -> CValue:
        return self.read_lvalue(self._member_lvalue(expr), expr.line)

    def _eval_Call(self, expr: c_ast.Call) -> CValue:
        return self.eval_call(expr)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------
    def _eval_UnaryOp(self, expr: c_ast.UnaryOp) -> CValue:
        op = expr.op
        line = expr.line
        if op == "&":
            lvalue = self.eval_lvalue(expr.operand)
            pointee = lvalue.type
            return PointerValue(base=lvalue.base, offset=lvalue.offset,
                                type=ct.PointerType(pointee=pointee),
                                function=lvalue.pointer.function)
        if op == "*":
            value = self.eval_expr(expr.operand)
            lvalue = self._deref_to_lvalue(value, line)
            return self.read_lvalue(lvalue, line)
        if op == "sizeof":
            operand_type = self.type_of_expression(expr.operand)
            try:
                size = ct.size_of(operand_type, self.profile)
            except ct.LayoutError as exc:
                raise UndefinedBehaviorError(
                    UBKind.INCOMPLETE_TYPE_OBJECT, f"sizeof applied to {operand_type}: {exc}",
                    line=line)
            return IntValue(size, ct.ULONG)
        if op in ("++pre", "--pre", "++post", "--post"):
            return self._eval_incdec(expr, op, line)
        value = self.eval_expr(expr.operand)
        if op == "!":
            return IntValue(0 if to_boolean(value, self.options, line=line) else 1, ct.INT)
        value = self._require_arithmetic(value, line, f"operand of unary {op}")
        if op == "+":
            return self._promote(value)
        if op == "-":
            promoted = self._promote(value)
            if isinstance(promoted, FloatValue):
                return FloatValue(-promoted.value, promoted.type)
            return self._arith_result(-promoted.value, promoted.type, line)
        if op == "~":
            promoted = self._promote(value)
            if not isinstance(promoted, IntValue):
                raise UndefinedBehaviorError(
                    UBKind.BAD_FUNCTION_CALL, "Operand of '~' must have integer type.", line=line)
            return self._arith_result(~promoted.value, promoted.type, line)
        raise UnsupportedFeatureError(f"unary operator {op!r}")

    def _eval_incdec(self, expr: c_ast.UnaryOp, op: str, line: int) -> CValue:
        lvalue = self.eval_lvalue(expr.operand)
        old = self.read_lvalue(lvalue, line)
        delta = 1 if op.startswith("++") else -1
        if isinstance(old, PointerValue):
            new = self._pointer_add(old, delta, line)
        elif isinstance(old, FloatValue):
            new = FloatValue(old.value + delta, old.type)
        else:
            old_int = self._require_arithmetic(old, line, "operand of ++/--")
            promoted = self._promote(old_int)
            assert isinstance(promoted, IntValue)
            result = self._arith_result(promoted.value + delta, promoted.type, line)
            new = convert(result, lvalue.type, self.options, line=line,
                          pointer_registry=self.pointer_registry)
        converted_new = new if isinstance(new, (PointerValue, FloatValue)) else convert(
            new, lvalue.type, self.options, line=line, pointer_registry=self.pointer_registry)
        self.write_lvalue(lvalue, converted_new, line)
        return old if op.endswith("post") else converted_new

    def _eval_SizeofType(self, expr: c_ast.SizeofType) -> CValue:
        try:
            size = ct.size_of(expr.type_name, self.profile)
        except ct.LayoutError as exc:
            raise UndefinedBehaviorError(
                UBKind.INCOMPLETE_TYPE_OBJECT, f"sizeof: {exc}", line=expr.line)
        return IntValue(size, ct.ULONG)

    def _eval_Cast(self, expr: c_ast.Cast) -> CValue:
        target = expr.target_type
        if isinstance(expr.operand, c_ast.InitList):
            # Compound literal: build a temporary object.
            return self.build_compound_literal(target, expr.operand, expr.line)
        value = self.eval_expr(expr.operand)
        return convert(value, target, self.options, line=expr.line, explicit=True,
                       pointer_registry=self.pointer_registry)

    # ------------------------------------------------------------------
    # Binary operators
    # ------------------------------------------------------------------
    def _eval_BinaryOp(self, expr: c_ast.BinaryOp) -> CValue:
        op = expr.op
        line = expr.line
        if op == "&&":
            left = self.eval_expr(expr.left)
            self.memory.sequence_point()
            left_true = to_boolean(left, self.options, line=line)
            if self.events is not None:
                self.events.emit(BranchEvent(left_true, line))
            if not left_true:
                return IntValue(0, ct.INT)
            right = self.eval_expr(expr.right)
            return IntValue(1 if to_boolean(right, self.options, line=line) else 0, ct.INT)
        if op == "||":
            left = self.eval_expr(expr.left)
            self.memory.sequence_point()
            left_true = to_boolean(left, self.options, line=line)
            if self.events is not None:
                self.events.emit(BranchEvent(left_true, line))
            if left_true:
                return IntValue(1, ct.INT)
            right = self.eval_expr(expr.right)
            return IntValue(1 if to_boolean(right, self.options, line=line) else 0, ct.INT)
        left, right = self._eval_unsequenced([expr.left, expr.right], line)
        return self.apply_binary(op, left, right, line)

    def apply_binary(self, op: str, left: CValue, right: CValue, line: int) -> CValue:
        """Apply a (non-short-circuit) binary operator to evaluated operands."""
        left = self._check_usable(left, line, f"left operand of '{op}'")
        right = self._check_usable(right, line, f"right operand of '{op}'")

        if op in ("==", "!="):
            return self._equality(op, left, right, line)
        if op in ("<", ">", "<=", ">="):
            return self._relational(op, left, right, line)

        left_is_ptr = isinstance(left, PointerValue)
        right_is_ptr = isinstance(right, PointerValue)
        if op == "+" and (left_is_ptr or right_is_ptr):
            if left_is_ptr and right_is_ptr:
                raise UndefinedBehaviorError(
                    UBKind.INVALID_POINTER_ARITHMETIC, "Addition of two pointers.", line=line)
            pointer = left if left_is_ptr else right
            index = self._require_int(right if left_is_ptr else left, line, "pointer offset")
            return self._pointer_add(pointer, index, line)
        if op == "-" and left_is_ptr:
            if right_is_ptr:
                return self._pointer_difference(left, right, line)
            index = self._require_int(right, line, "pointer offset")
            return self._pointer_add(left, -index, line)
        if op == "-" and right_is_ptr:
            raise UndefinedBehaviorError(
                UBKind.INVALID_POINTER_ARITHMETIC,
                "Integer minus pointer is not a valid operation.", line=line)

        left_arith = self._require_arithmetic(left, line, f"operand of '{op}'")
        right_arith = self._require_arithmetic(right, line, f"operand of '{op}'")
        common = ct.usual_arithmetic_conversions(left_arith.type, right_arith.type, self.profile)
        left_conv = convert(left_arith, common, self.options, line=line,
                            pointer_registry=self.pointer_registry)
        right_conv = convert(right_arith, common, self.options, line=line,
                             pointer_registry=self.pointer_registry)

        if isinstance(common, ct.FloatType):
            return self._float_binary(op, left_conv, right_conv, common, line)
        assert isinstance(left_conv, IntValue) and isinstance(right_conv, IntValue)
        return self._integer_binary(op, left_conv, right_conv, common, line)

    def _float_binary(self, op: str, left: CValue, right: CValue,
                      common: ct.CType, line: int) -> CValue:
        assert isinstance(left, FloatValue) and isinstance(right, FloatValue)
        a, b = left.value, right.value
        if op == "+":
            return FloatValue(a + b, common)
        if op == "-":
            return FloatValue(a - b, common)
        if op == "*":
            return FloatValue(a * b, common)
        if op == "/":
            if b == 0.0:
                # IEEE-754 division by zero yields inf/nan; annex F makes this
                # defined, so we do not flag it (unlike the integer case).
                inf = float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
                return FloatValue(inf, common)
            return FloatValue(a / b, common)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Operator '{op}' applied to floating operands.", line=line)

    def _integer_binary(self, op: str, left: IntValue, right: IntValue,
                        common: ct.CType, line: int) -> CValue:
        a, b = left.value, right.value
        if op in ("/", "%"):
            if b == 0:
                if self.options.check_arithmetic:
                    report_undefined(UndefinedBehaviorError(
                        UBKind.DIVISION_BY_ZERO, "Division or modulus by zero.", line=line),
                        FAMILY_ARITHMETIC)
                return IntValue(0, common)
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            if op == "/":
                return self._arith_result(quotient, common, line)
            return self._arith_result(a - quotient * b, common, line)
        if op in ("<<", ">>"):
            return self._shift(op, a, b, common, line)
        if op == "+":
            return self._arith_result(a + b, common, line)
        if op == "-":
            return self._arith_result(a - b, common, line)
        if op == "*":
            return self._arith_result(a * b, common, line)
        if op == "&":
            return self._arith_result(a & b, common, line, overflow_possible=False)
        if op == "|":
            return self._arith_result(a | b, common, line, overflow_possible=False)
        if op == "^":
            return self._arith_result(a ^ b, common, line, overflow_possible=False)
        raise UnsupportedFeatureError(f"integer operator {op!r}")

    def _shift(self, op: str, a: int, b: int, common: ct.CType, line: int) -> CValue:
        bits = ct.integer_bits(common, self.profile)
        if self.options.check_arithmetic and (b < 0 or b >= bits):
            report_undefined(UndefinedBehaviorError(
                UBKind.SHIFT_TOO_FAR,
                f"Shift amount {b} is negative or >= width of the type ({bits} bits).",
                line=line), FAMILY_ARITHMETIC)
        b = max(0, min(b, bits - 1))
        signed = ct.is_signed_type(common, self.profile)
        if op == "<<":
            if self.options.check_arithmetic and signed and a < 0:
                report_undefined(UndefinedBehaviorError(
                    UBKind.SHIFT_NEGATIVE, "Left shift of a negative value.", line=line),
                    FAMILY_ARITHMETIC)
            result = a << b
            if signed and self.options.check_arithmetic and not ct.fits_in(result, common, self.profile):
                report_undefined(UndefinedBehaviorError(
                    UBKind.SHIFT_OVERFLOW,
                    f"Left shift of {a} by {b} overflows {common}.", line=line),
                    FAMILY_ARITHMETIC)
            return self._arith_result(result, common, line, overflow_possible=not signed)
        # Right shift of a negative value is implementation-defined (not UB);
        # we use arithmetic shift like every mainstream compiler.
        return IntValue(a >> b, common)

    def _arith_result(self, value: int, result_type: ct.CType, line: int, *,
                      overflow_possible: bool = True) -> IntValue:
        """Wrap or flag an integer arithmetic result (§6.5:5)."""
        if self.events is not None:
            self.events.emit(ArithCheckEvent(value, result_type, line))
        if ct.fits_in(value, result_type, self.profile):
            return IntValue(value, result_type)
        if ct.is_signed_type(result_type, self.profile):
            if self.options.check_arithmetic and overflow_possible:
                report_undefined(UndefinedBehaviorError(
                    UBKind.SIGNED_OVERFLOW,
                    f"Signed integer overflow: result {value} does not fit in {result_type}.",
                    line=line), FAMILY_ARITHMETIC)
            bits = ct.integer_bits(result_type, self.profile)
            wrapped = value & ((1 << bits) - 1)
            if wrapped >= 1 << (bits - 1):
                wrapped -= 1 << bits
            return IntValue(wrapped, result_type)
        return IntValue(ct.wrap_unsigned(value, result_type, self.profile), result_type)

    # -- pointer arithmetic and comparisons --------------------------------
    def _pointer_add(self, pointer: PointerValue, index: int, line: int) -> PointerValue:
        if pointer.is_null:
            if index == 0 or not self.options.check_memory:
                return pointer
            report_undefined(UndefinedBehaviorError(
                UBKind.NULL_POINTER_ARITHMETIC, "Arithmetic on a null pointer.", line=line),
                FAMILY_MEMORY, check="pointer-arith")
            return pointer
        if pointer.is_function:
            raise UndefinedBehaviorError(
                UBKind.INVALID_POINTER_ARITHMETIC, "Arithmetic on a function pointer.", line=line)
        pointee = pointer.pointee_type
        try:
            element_size = ct.size_of(pointee, self.profile) if not pointee.is_void else 1
        except ct.LayoutError:
            element_size = 1
        new_offset = pointer.offset + index * element_size
        obj = self.memory.object_for(pointer.base)
        if self.options.check_memory and obj is not None:
            if not obj.alive:
                kind = UBKind.USE_AFTER_FREE if obj.freed else UBKind.DANGLING_DEREFERENCE
                report_undefined(UndefinedBehaviorError(
                    kind, "Pointer arithmetic on an object whose lifetime has ended.",
                    line=line), FAMILY_MEMORY, check="pointer-arith")
            elif new_offset < 0 or new_offset > obj.size:
                report_undefined(UndefinedBehaviorError(
                    UBKind.INVALID_POINTER_ARITHMETIC,
                    f"Pointer arithmetic produces offset {new_offset}, outside object "
                    f"'{obj.name or obj.base}' of size {obj.size} (one past the end is allowed).",
                    line=line), FAMILY_MEMORY, check="pointer-arith")
        if self.options.check_memory and obj is None:
            report_undefined(UndefinedBehaviorError(
                UBKind.DANGLING_DEREFERENCE,
                "Pointer arithmetic on an invalid pointer.", line=line),
                FAMILY_MEMORY, check="pointer-arith")
        return pointer.with_offset(new_offset)

    def _pointer_difference(self, left: PointerValue, right: PointerValue, line: int) -> IntValue:
        if self.options.check_pointer_provenance and left.base != right.base:
            report_undefined(UndefinedBehaviorError(
                UBKind.POINTER_SUBTRACT_UNRELATED,
                "Subtraction of pointers that do not point into the same object.", line=line),
                FAMILY_PROVENANCE)
        pointee = left.pointee_type
        try:
            element_size = ct.size_of(pointee, self.profile) if not pointee.is_void else 1
        except ct.LayoutError:
            element_size = 1
        diff = (left.offset - right.offset) // max(element_size, 1)
        if self.options.check_arithmetic and not ct.fits_in(diff, ct.LONG, self.profile):
            # §6.5.6:9 — the difference must be representable in ptrdiff_t
            # (LONG under both supported profiles).
            report_undefined(UndefinedBehaviorError(
                UBKind.SIGNED_OVERFLOW,
                f"Pointer difference {diff} is not representable in ptrdiff_t.",
                line=line), FAMILY_ARITHMETIC)
            bits = ct.integer_bits(ct.LONG, self.profile)
            diff &= (1 << bits) - 1
            if diff >= 1 << (bits - 1):
                diff -= 1 << bits
        return IntValue(diff, ct.LONG)

    def _relational(self, op: str, left: CValue, right: CValue, line: int) -> IntValue:
        if isinstance(left, PointerValue) and isinstance(right, PointerValue):
            if self.options.check_pointer_provenance and (
                    left.base != right.base or left.base is None):
                report_undefined(UndefinedBehaviorError(
                    UBKind.POINTER_COMPARE_UNRELATED,
                    "Relational comparison of pointers that do not point into the same object.",
                    line=line), FAMILY_PROVENANCE)
            a, b = left.offset, right.offset
        else:
            left_num = self._require_arithmetic(left, line, f"operand of '{op}'")
            right_num = self._require_arithmetic(right, line, f"operand of '{op}'")
            common = ct.usual_arithmetic_conversions(left_num.type, right_num.type, self.profile)
            lc = convert(left_num, common, self.options, line=line)
            rc = convert(right_num, common, self.options, line=line)
            a = lc.value if isinstance(lc, (IntValue, FloatValue)) else 0
            b = rc.value if isinstance(rc, (IntValue, FloatValue)) else 0
        table = {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}
        return IntValue(1 if table[op] else 0, ct.INT)

    def _equality(self, op: str, left: CValue, right: CValue, line: int) -> IntValue:
        if isinstance(left, PointerValue) or isinstance(right, PointerValue):
            left_ptr = self._as_pointer_for_equality(left, line)
            right_ptr = self._as_pointer_for_equality(right, line)
            same = (left_ptr.base == right_ptr.base
                    and left_ptr.offset == right_ptr.offset
                    and left_ptr.function == right_ptr.function)
            result = same if op == "==" else not same
            return IntValue(1 if result else 0, ct.INT)
        left_num = self._require_arithmetic(left, line, f"operand of '{op}'")
        right_num = self._require_arithmetic(right, line, f"operand of '{op}'")
        common = ct.usual_arithmetic_conversions(left_num.type, right_num.type, self.profile)
        lc = convert(left_num, common, self.options, line=line)
        rc = convert(right_num, common, self.options, line=line)
        same = lc.value == rc.value  # type: ignore[union-attr]
        result = same if op == "==" else not same
        return IntValue(1 if result else 0, ct.INT)

    def _as_pointer_for_equality(self, value: CValue, line: int) -> PointerValue:
        if isinstance(value, PointerValue):
            return value
        if isinstance(value, IntValue) and value.value == 0:
            return PointerValue(base=None, offset=0, type=ct.VOID_PTR)
        if isinstance(value, IntValue):
            return PointerValue(base=-abs(value.value) - 1, offset=0, type=ct.VOID_PTR)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, "Invalid operand in pointer comparison.", line=line)

    # ------------------------------------------------------------------
    # Assignment, conditional, comma
    # ------------------------------------------------------------------
    def _eval_Assignment(self, expr: c_ast.Assignment) -> CValue:
        line = expr.line
        if expr.op == "=":
            # The value computation of both operands is unsequenced (§6.5.16).
            order = self.operand_order(2, expr)
            strategy = self.strategy
            results: dict[int, object] = {}
            for position in order:
                strategy.note_operand(expr, position)
                if position == 0:
                    results[0] = self.eval_lvalue(expr.target)
                else:
                    results[1] = self.eval_expr(expr.value)
            strategy.note_group_end(expr)
            lvalue: LValue = results[0]  # type: ignore[assignment]
            value: CValue = results[1]   # type: ignore[assignment]
            if isinstance(value, StructValue) and lvalue.type.is_record:
                converted = value
            else:
                converted = convert(value, lvalue.type, self.options, line=line,
                                    pointer_registry=self.pointer_registry)
            self.write_lvalue(lvalue, converted, line)
            return converted
        # Compound assignment reads, computes, and writes the same object.
        op = expr.op[:-1]
        lvalue = self.eval_lvalue(expr.target)
        old = self.read_lvalue(lvalue, line)
        rhs = self.eval_expr(expr.value)
        result = self.apply_binary(op, old, rhs, line)
        if isinstance(result, PointerValue):
            converted = result
        else:
            converted = convert(result, lvalue.type, self.options, line=line,
                                pointer_registry=self.pointer_registry)
        self.write_lvalue(lvalue, converted, line)
        return converted

    def _eval_Conditional(self, expr: c_ast.Conditional) -> CValue:
        condition = self.eval_expr(expr.condition)
        self.memory.sequence_point()
        taken = to_boolean(condition, self.options, line=expr.line)
        if self.events is not None:
            self.events.emit(BranchEvent(taken, expr.line))
        if taken:
            return self.eval_expr(expr.then)
        return self.eval_expr(expr.otherwise)

    def _eval_Comma(self, expr: c_ast.Comma) -> CValue:
        self.eval_expr(expr.left)
        self.memory.sequence_point()
        return self.eval_expr(expr.right)

    def _eval_InitList(self, expr: c_ast.InitList) -> CValue:
        raise UnsupportedFeatureError(
            "initializer list used outside of a declaration or compound literal")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _eval_unsequenced(self, exprs: list[c_ast.Expression], line: int) -> list[CValue]:
        """Evaluate sibling subexpressions in the strategy-chosen order.

        The subexpressions are unsequenced with respect to each other, which
        is exactly the nondeterminism the evaluation-order search explores
        (§2.5.2); the ``locsWrittenTo`` tracking in memory catches conflicts
        that manifest on the chosen order.
        """
        site = exprs[0] if exprs else None
        order = self.operand_order(len(exprs), site)
        results: dict[int, CValue] = {}
        if len(exprs) > 1:
            # Boundary hooks let the search engine segment the event stream
            # into per-operand footprints (commutativity filter); they are
            # no-ops for fixed-order strategies.
            strategy = self.strategy
            for position in order:
                strategy.note_operand(site, position)
                results[position] = self.eval_expr(exprs[position])
            strategy.note_group_end(site)
        else:
            for position in order:
                results[position] = self.eval_expr(exprs[position])
        return [results[i] for i in range(len(exprs))]

    def _deref_to_lvalue(self, value: CValue, line: int) -> LValue:
        if isinstance(value, IndeterminateValue):
            raise UndefinedBehaviorError(
                UBKind.UNINITIALIZED_READ,
                "Dereference of an indeterminate pointer value.", line=line)
        pointer = self._require_pointer(value, line, "operand of unary '*'")
        pointee = pointer.pointee_type
        if self.options.check_memory and pointee.is_void:
            report_undefined(UndefinedBehaviorError(
                UBKind.VOID_DEREFERENCE, "Dereference of a void pointer.", line=line),
                FAMILY_MEMORY, check="pointer-arith")
        if pointer.is_function:
            return LValue(pointer=pointer, type=pointee)
        return LValue(pointer=pointer, type=pointee)

    def _require_pointer(self, value: CValue, line: int, what: str) -> PointerValue:
        if isinstance(value, PointerValue):
            return value
        if isinstance(value, IndeterminateValue):
            raise UndefinedBehaviorError(
                UBKind.UNINITIALIZED_READ,
                f"Indeterminate value used as {what}.", line=line)
        if isinstance(value, IntValue):
            # Using an integer where a pointer is required (e.g. subscripting
            # an int) is a constraint violation; report it as a bad access.
            raise UndefinedBehaviorError(
                UBKind.DANGLING_DEREFERENCE,
                f"Integer value {value.value} used as {what}.", line=line)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Value of class {type(value).__name__} used as {what}.",
            line=line)

    def _require_int(self, value: CValue, line: int, what: str) -> int:
        value = self._check_usable(value, line, what)
        if isinstance(value, IntValue):
            return value.value
        if isinstance(value, FloatValue):
            return int(value.value)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"{what} must have integer type.", line=line)

    def _require_arithmetic(self, value: CValue, line: int, what: str):
        value = self._check_usable(value, line, what)
        if isinstance(value, (IntValue, FloatValue)):
            return value
        if isinstance(value, PointerValue):
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL, f"Pointer value used as {what}.", line=line)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Non-arithmetic value used as {what}.", line=line)

    def _check_usable(self, value: CValue, line: int, what: str) -> CValue:
        if isinstance(value, VoidValue):
            raise UndefinedBehaviorError(
                UBKind.VOID_VALUE_USED, f"The value of a void expression used as {what}.",
                line=line)
        if isinstance(value, IndeterminateValue):
            if self.options.check_uninitialized:
                report_undefined(UndefinedBehaviorError(
                    UBKind.UNINITIALIZED_READ,
                    f"Indeterminate value used as {what}.", line=line),
                    FAMILY_UNINITIALIZED)
            return IntValue(0, value.type if value.type.is_integer else ct.INT)
        return value

    def _promote(self, value: CValue) -> CValue:
        if isinstance(value, IntValue):
            promoted_type = ct.promote_integer(value.type, self.profile)
            return convert(value, promoted_type, self.options,
                           pointer_registry=self.pointer_registry)
        return value
