"""The paper's primary contribution: a semantics-based undefinedness checker.

The dynamic semantics executes C programs on a symbolic abstract machine
(symbolic base/offset pointers, symbolic pointer bytes, indeterminate bytes)
and raises :class:`repro.errors.UndefinedBehaviorError` exactly when execution
reaches a state the C standard leaves undefined — the "getting stuck with a
report" behavior of the paper's kcc tool.
"""

from repro.core.config import CheckerOptions
from repro.core.interpreter import Interpreter, ExecutionResult
from repro.core.kcc import KccTool, check_program, run_program

__all__ = [
    "CheckerOptions",
    "Interpreter",
    "ExecutionResult",
    "KccTool",
    "check_program",
    "run_program",
]
