"""Execution environment: lvalues, bindings, stack frames, control signals.

These are the Python counterparts of the configuration cells in Figure 1 of
the paper: ``env``/``types`` (per-frame scopes mapping identifiers to object
locations and types), ``callStack`` (the frame stack), and ``control``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import ctypes as ct
from repro.core.values import CValue, PointerValue


@dataclass(frozen=True)
class LValue:
    """A designated object location: a symbolic address plus the lvalue type."""

    pointer: PointerValue
    type: ct.CType

    @property
    def base(self) -> Optional[int]:
        return self.pointer.base

    @property
    def offset(self) -> int:
        return self.pointer.offset


@dataclass
class ObjectBinding:
    """An identifier bound to an object in memory."""

    name: str
    base: int
    type: ct.CType
    is_const: bool = False
    #: Memoized lvalue for this binding (base and type never change once the
    #: object exists), filled in by the lowered fast path so identifier reads
    #: do not rebuild the pointer dataclasses on every access.
    cached_lvalue: Optional[LValue] = field(default=None, repr=False, compare=False)
    #: Memoized access plan (see :mod:`repro.core.lowering`): pre-derived
    #: load/store facts — access size, uninitialized-read applicability,
    #: const-ness, pre-selected integer conversion — for this binding.
    access_plan: Optional[tuple] = field(default=None, repr=False, compare=False)


@dataclass
class FunctionBinding:
    """An identifier bound to a function (definition or prototype)."""

    name: str
    type: ct.FunctionType
    has_definition: bool = False
    is_builtin: bool = False


Binding = ObjectBinding | FunctionBinding


@dataclass
class Scope:
    """One block scope: the ``env`` and ``types`` cells for a block."""

    bindings: dict[str, ObjectBinding] = field(default_factory=dict)
    owned_bases: list[int] = field(default_factory=list)


@dataclass
class Frame:
    """One function activation: an entry in the ``callStack`` cell."""

    frame_id: int
    function_name: str
    return_type: ct.CType
    scopes: list[Scope] = field(default_factory=list)
    call_line: int = 0

    def push_scope(self) -> Scope:
        scope = Scope()
        self.scopes.append(scope)
        return scope

    def pop_scope(self) -> Scope:
        return self.scopes.pop()

    def lookup(self, name: str) -> Optional[ObjectBinding]:
        for scope in reversed(self.scopes):
            binding = scope.bindings.get(name)
            if binding is not None:
                return binding
        return None

    def declare(self, binding: ObjectBinding) -> None:
        self.scopes[-1].bindings[binding.name] = binding
        self.scopes[-1].owned_bases.append(binding.base)


# ---------------------------------------------------------------------------
# Control-flow signals used by the statement executor
# ---------------------------------------------------------------------------

class BreakSignal(Exception):
    """``break``"""


class ContinueSignal(Exception):
    """``continue``"""


class GotoSignal(Exception):
    """``goto label``"""

    def __init__(self, label: str) -> None:
        self.label = label
        super().__init__(label)


class ReturnSignal(Exception):
    """``return [expr]`` — ``value is None`` for a plain ``return;``."""

    def __init__(self, value: Optional[CValue], line: int = 0) -> None:
        self.value = value
        self.line = line
        super().__init__("return")


class ExitSignal(Exception):
    """``exit(status)`` or ``abort()``."""

    def __init__(self, status: int, aborted: bool = False) -> None:
        self.status = status
        self.aborted = aborted
        super().__init__(f"exit({status})")
