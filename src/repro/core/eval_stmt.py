"""Statement execution rules of the dynamic semantics.

Statements are where the sequence points live: the end of every full
expression empties the ``locsWrittenTo`` cell (the paper's ``seqPoint`` rule,
§4.2.1).  Block scopes also manage object lifetimes — leaving a block ends the
lifetime of its automatic objects, which is what later turns a use of a saved
pointer into a reported "dangling" undefined behavior.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.core.conversions import to_boolean
from repro.core.environment import (
    BreakSignal,
    ContinueSignal,
    GotoSignal,
    ReturnSignal,
)
from repro.core.values import CValue, IntValue
from repro.errors import UnsupportedFeatureError
from repro.events import BranchEvent


class StatementExecutorMixin:
    """Statement execution; mixed into :class:`repro.core.interpreter.Interpreter`."""

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def exec_stmt(self, stmt: Union[c_ast.Statement, c_ast.Declaration, c_ast.StaticAssert]) -> None:
        self.step(stmt.line)
        if isinstance(stmt, c_ast.Declaration):
            self.exec_local_declaration(stmt)
            return
        if isinstance(stmt, c_ast.StaticAssert):
            return  # checked statically
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is None:
            raise UnsupportedFeatureError(f"cannot execute {type(stmt).__name__}")
        method(stmt)

    # ------------------------------------------------------------------
    # Simple statements
    # ------------------------------------------------------------------
    def _exec_ExpressionStmt(self, stmt: c_ast.ExpressionStmt) -> None:
        if stmt.expression is not None:
            self.eval_expr(stmt.expression)
        # End of a full expression: sequence point.
        self.memory.sequence_point()

    def _exec_Return(self, stmt: c_ast.Return) -> None:
        value: Optional[CValue] = None
        if stmt.value is not None:
            value = self.eval_expr(stmt.value)
        self.memory.sequence_point()
        raise ReturnSignal(value, line=stmt.line)

    def _exec_Break(self, stmt: c_ast.Break) -> None:
        raise BreakSignal()

    def _exec_Continue(self, stmt: c_ast.Continue) -> None:
        raise ContinueSignal()

    def _exec_Goto(self, stmt: c_ast.Goto) -> None:
        raise GotoSignal(stmt.label)

    def _exec_Label(self, stmt: c_ast.Label) -> None:
        if stmt.statement is not None:
            self.exec_stmt(stmt.statement)

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def _exec_Compound(self, stmt: c_ast.Compound) -> None:
        self.exec_compound(stmt)

    def exec_compound(self, block: c_ast.Compound, *, new_scope: bool = True) -> None:
        """Execute a block, handling ``goto`` into labels contained in it."""
        frame = self.current_frame()
        if new_scope:
            frame.push_scope()
        try:
            self._run_items(block.items, start_label=None)
        except GotoSignal as signal:
            if self._block_contains_label(block, signal.label):
                self._run_goto_loop(block, signal.label)
            else:
                raise
        finally:
            if new_scope:
                scope = frame.pop_scope()
                for base in scope.owned_bases:
                    self.memory.kill(base)

    def _run_goto_loop(self, block: c_ast.Compound, label: str) -> None:
        """Re-run the block seeking ``label``; loop if further gotos target it."""
        while True:
            try:
                self._run_items(block.items, start_label=label)
                return
            except GotoSignal as signal:
                if self._block_contains_label(block, signal.label):
                    label = signal.label
                    continue
                raise

    def _run_items(self, items: list, start_label: Optional[str]) -> None:
        seeking = start_label
        for item in items:
            if seeking is not None:
                if not self._item_contains_label(item, seeking):
                    continue
                if isinstance(item, c_ast.Label) and item.name == seeking:
                    seeking = None
                    if item.statement is not None:
                        self.exec_stmt(item.statement)
                    continue
                if isinstance(item, c_ast.Compound):
                    self._run_items(item.items, start_label=seeking)
                    seeking = None
                    continue
                # The label is nested inside a structured statement; jumping
                # into it is not supported by this executor.
                raise UnsupportedFeatureError(
                    f"goto into a nested statement (label '{seeking}')")
            self.exec_stmt(item)

    def _block_contains_label(self, block: c_ast.Compound, label: str) -> bool:
        return any(isinstance(node, c_ast.Label) and node.name == label
                   for node in c_ast.walk(block))

    @staticmethod
    def _item_contains_label(item: c_ast.Node, label: str) -> bool:
        return any(isinstance(node, c_ast.Label) and node.name == label
                   for node in c_ast.walk(item))

    # ------------------------------------------------------------------
    # Selection statements
    # ------------------------------------------------------------------
    def _exec_If(self, stmt: c_ast.If) -> None:
        condition = self.eval_expr(stmt.condition)
        self.memory.sequence_point()
        taken = to_boolean(condition, self.options, line=stmt.line)
        if self.events is not None:
            self.events.emit(BranchEvent(taken, stmt.line))
        if taken:
            if stmt.then is not None:
                self.exec_stmt(stmt.then)
        elif stmt.otherwise is not None:
            self.exec_stmt(stmt.otherwise)

    def _exec_Switch(self, stmt: c_ast.Switch) -> None:
        value = self.eval_expr(stmt.expression)
        self.memory.sequence_point()
        selector = value.value if isinstance(value, IntValue) else self._require_int(
            value, stmt.line, "switch controlling expression")
        body = stmt.body
        if not isinstance(body, c_ast.Compound):
            if isinstance(body, (c_ast.Case, c_ast.Default)):
                body = c_ast.Compound(line=stmt.line, items=[body])
            else:
                return
        frame = self.current_frame()
        frame.push_scope()
        try:
            self._exec_switch_body(body, selector, stmt.line)
        except BreakSignal:
            pass
        finally:
            scope = frame.pop_scope()
            for base in scope.owned_bases:
                self.memory.kill(base)

    def _exec_switch_body(self, body: c_ast.Compound, selector: int, line: int) -> None:
        start_index: Optional[int] = None
        default_index: Optional[int] = None
        for index, item in enumerate(body.items):
            if isinstance(item, c_ast.Case) and item.expression is not None:
                from repro.cfront.parser import fold_constant
                label_value = fold_constant(item.expression, self.profile)
                if label_value is None:
                    label_value = self._require_int(
                        self.eval_expr(item.expression), item.line, "case label")
                if label_value == selector:
                    start_index = index
                    break
            elif isinstance(item, c_ast.Default):
                if default_index is None:
                    default_index = index
        if start_index is None:
            start_index = default_index
        if start_index is None:
            return
        for item in body.items[start_index:]:
            if isinstance(item, c_ast.Case):
                if item.statement is not None:
                    self.exec_stmt(item.statement)
            elif isinstance(item, c_ast.Default):
                if item.statement is not None:
                    self.exec_stmt(item.statement)
            else:
                self.exec_stmt(item)

    # ------------------------------------------------------------------
    # Iteration statements
    # ------------------------------------------------------------------
    def _exec_While(self, stmt: c_ast.While) -> None:
        while True:
            self.step(stmt.line)
            condition = self.eval_expr(stmt.condition)
            self.memory.sequence_point()
            taken = to_boolean(condition, self.options, line=stmt.line)
            if self.events is not None:
                self.events.emit(BranchEvent(taken, stmt.line))
            if not taken:
                return
            try:
                if stmt.body is not None:
                    self.exec_stmt(stmt.body)
            except BreakSignal:
                return
            except ContinueSignal:
                continue

    def _exec_DoWhile(self, stmt: c_ast.DoWhile) -> None:
        while True:
            self.step(stmt.line)
            try:
                if stmt.body is not None:
                    self.exec_stmt(stmt.body)
            except BreakSignal:
                return
            except ContinueSignal:
                pass
            condition = self.eval_expr(stmt.condition)
            self.memory.sequence_point()
            taken = to_boolean(condition, self.options, line=stmt.line)
            if self.events is not None:
                self.events.emit(BranchEvent(taken, stmt.line))
            if not taken:
                return

    def _exec_For(self, stmt: c_ast.For) -> None:
        frame = self.current_frame()
        frame.push_scope()
        try:
            if stmt.init is not None:
                if isinstance(stmt.init, list):
                    for declaration in stmt.init:
                        self.exec_stmt(declaration)
                elif isinstance(stmt.init, c_ast.Declaration):
                    self.exec_stmt(stmt.init)
                else:
                    self.eval_expr(stmt.init)
                    self.memory.sequence_point()
            while True:
                self.step(stmt.line)
                if stmt.condition is not None:
                    condition = self.eval_expr(stmt.condition)
                    self.memory.sequence_point()
                    taken = to_boolean(condition, self.options, line=stmt.line)
                    if self.events is not None:
                        self.events.emit(BranchEvent(taken, stmt.line))
                    if not taken:
                        return
                try:
                    if stmt.body is not None:
                        self.exec_stmt(stmt.body)
                except BreakSignal:
                    return
                except ContinueSignal:
                    pass
                if stmt.step is not None:
                    self.eval_expr(stmt.step)
                    self.memory.sequence_point()
        finally:
            scope = frame.pop_scope()
            for base in scope.owned_bases:
                self.memory.kill(base)

    # ------------------------------------------------------------------
    # Declarations inside blocks
    # ------------------------------------------------------------------
    def exec_local_declaration(self, declaration: c_ast.Declaration) -> None:
        """Create an automatic object and run its initializer, if any."""
        ctype = declaration.type
        if ctype is None:
            raise UnsupportedFeatureError("declaration without a type")
        if isinstance(ctype, ct.FunctionType):
            self.register_function_declaration(declaration.name, ctype)
            return
        if declaration.storage == "extern":
            # Refers to a global defined elsewhere in the translation unit.
            if self.lookup_global(declaration.name) is not None:
                return
        if declaration.storage == "static":
            self.define_static_local(declaration)
            return
        self.define_auto_object(declaration)
        self.memory.sequence_point()
