"""The dispatch loop of the compiled engine.

:func:`run_native` executes one :class:`repro.core.bytecode.FnCode` inside a
live :class:`~repro.core.interpreter.Interpreter` activation: the caller
(``Interpreter._execute_call_body``) has already allocated and written the
parameter objects, and consumes the returned :class:`CValue` through the
same return-value post-processing the walker and the lowered closures use.

Design notes
------------

* **One frame.**  The whole function body runs inside this single Python
  frame: a ``while`` loop over a tuple of instruction tuples, registers in
  a plain list.  Fast paths touch raw ints only (``v.__class__ is int``);
  the ``UNINIT`` sentinel and boxed values automatically fail that test
  and fall into slow helpers that rebuild the exact lowered-engine
  behavior by calling the *shared* helpers (``_read_binding``,
  ``_write_with_plan``, ``apply_binary``, ``to_boolean``, ...), so error
  kinds, messages, and order never fork from the lowered semantics.
* **Memory slots** cache ``(data, base, size, binding)`` per activation:
  local arrays bind at their ``DECL``, globals bind lazily on first touch.
  ``data`` is the object's arena-backed byte store; flat loads/stores go
  through its ``read_int``/``write_int`` integer fast path and fall back
  to the generic byte path whenever exotic (symbolic/indeterminate) bytes
  are in range.
* **Sequencing** keeps feeding ``Memory.locs_written`` with plain
  ``(base, offset)`` tuples (hash-equal to the ``ByteLocation`` entries of
  the generic path), so unsequenced-conflict detection composes with any
  non-native code in the same program.
* **Steps** accumulate in a local and are synchronized with
  ``interp._steps`` around every boundary that can observe them (calls,
  declarations, returns, resource-limit raises).
"""

from __future__ import annotations

from repro.cfront import ctypes as ct
from repro.core.bytecode import (
    _SMODE_SIGNED,
    CompiledProgram,
    FnCode,
    OP_BINDR,
    OP_BINOP,
    OP_BOOL,
    OP_CALL,
    OP_CHKE,
    OP_CONV,
    OP_DECL,
    OP_INC,
    OP_JMP,
    OP_JNZ,
    OP_JZ,
    OP_LDA,
    OP_LDE,
    OP_LDG,
    OP_LOADI,
    OP_MOV,
    OP_NOT,
    OP_POPSC,
    OP_PUSHSC,
    OP_RAISE,
    OP_RDCHK,
    OP_RET,
    OP_SEQPT,
    OP_STE,
    OP_STEP,
    OP_STG,
    OP_STR,
    OP_UNOP,
    UNINIT,
)
from repro.core.conversions import to_boolean
from repro.core.environment import LValue
from repro.core.lowering import _read_binding, _read_with_plan, _write_with_plan
from repro.core.memory import ArenaBytes
from repro.core.values import (
    ConcreteByte,
    IndeterminateValue,
    IntValue,
    unknown_bytes,
)
from repro.errors import ResourceLimitError, UBKind, UndefinedBehaviorError

__all__ = ["run_native"]


# ---------------------------------------------------------------------------
# Raw byte-store access (tolerates the dict store's plain byte lists)
# ---------------------------------------------------------------------------

def _read_flat(data, offset: int, size: int, signed: bool):
    """Read a little-endian integer; None when any byte is not concrete."""
    if type(data) is ArenaBytes:
        return data.read_int(offset, size, signed)
    value = 0
    for index in range(size):
        byte = data[offset + index]
        if type(byte) is not ConcreteByte:
            return None
        value |= (byte.value & 0xFF) << (8 * index)
    if signed:
        half = 1 << (size * 8 - 1)
        if value >= half:
            value -= half << 1
    return value


def _write_flat(data, offset: int, size: int, value: int) -> None:
    """Write a masked (non-negative) little-endian integer."""
    if type(data) is ArenaBytes:
        data.write_int(offset, size, value)
        return
    data[offset:offset + size] = [
        ConcreteByte((value >> (8 * index)) & 0xFF) for index in range(size)
    ]


# ---------------------------------------------------------------------------
# Boxing between registers and CValues
# ---------------------------------------------------------------------------

def _box(value, ctype: ct.CType, profile):
    """Box a register value for a shared helper (slow paths only)."""
    if value.__class__ is int:
        return IntValue(value, ctype)
    if value is UNINIT:
        try:
            size = ct.size_of(ctype, profile)
        except ct.LayoutError:
            size = 0
        return IndeterminateValue(type=ctype, data=tuple(unknown_bytes(size)))
    return value  # already a CValue (string-literal pointer)


def _unbox(value):
    """Unbox a shared-helper result back into a register value."""
    if type(value) is IntValue:
        return value.value
    if type(value) is IndeterminateValue:
        return UNINIT
    return value


def _raise_read(msg: str, line: int):
    raise UndefinedBehaviorError(UBKind.UNINITIALIZED_READ, msg, line=line)


_UNSEQ_WRITE = (
    "Unsequenced side effect on scalar object with side effect of same object."
)


# ---------------------------------------------------------------------------
# Slot binding
# ---------------------------------------------------------------------------

def _bind_slot(interp, S: list, slot: int, name: str):
    """Resolve the runtime object behind a memory slot (cached per call)."""
    binding = interp.frames[-1].lookup(name)
    if binding is None:
        binding = interp.global_bindings[name]
    obj = interp.memory.objects[binding.base]
    record = (obj.data, binding.base, obj.size, binding)
    S[slot] = record
    return record


# ---------------------------------------------------------------------------
# Slow helpers (cold paths; every one defers to the shared semantics)
# ---------------------------------------------------------------------------

def _cond_slow(interp, value, rdmsg, rdline: int, line: int) -> bool:
    """A branch condition that is not a raw int (UNINIT or boxed)."""
    options = interp.options
    if value is UNINIT:
        if rdmsg is not None and options.check_uninitialized:
            _raise_read(rdmsg, rdline)
        value = IndeterminateValue(type=ct.INT, data=())
    return to_boolean(value, options, line=line)


def _binop_slow(interp, a, b, slow, order_mode: int):
    op, line, ltype, rtype, lmsg, lline, rmsg, rline, _plan = slow
    check_uninit = interp.options.check_uninitialized
    if check_uninit:
        if order_mode == 0:
            if a is UNINIT and lmsg is not None:
                _raise_read(lmsg, lline)
            if b is UNINIT and rmsg is not None:
                _raise_read(rmsg, rline)
        else:
            if b is UNINIT and rmsg is not None:
                _raise_read(rmsg, rline)
            if a is UNINIT and lmsg is not None:
                _raise_read(lmsg, lline)
    profile = interp.profile
    result = interp.apply_binary(
        op, _box(a, ltype, profile), _box(b, rtype, profile), line
    )
    return _unbox(result)


def _unop_slow(interp, value, slow):
    what, line, ctype, rdmsg, rdline, plan = slow
    if value is UNINIT and rdmsg is not None and interp.options.check_uninitialized:
        _raise_read(rdmsg, rdline)
    checked = interp._require_arithmetic(_box(value, ctype, interp.profile), line, what)
    return plan(checked.value)


def _conv_slow(interp, value, slow):
    _target, _line, rdmsg, rdline = slow
    if value is UNINIT:
        if rdmsg is not None and interp.options.check_uninitialized:
            _raise_read(rdmsg, rdline)
        return UNINIT  # convert() passes indeterminate values through
    return value  # boxed values never reach native conversions


def _inc_slow(interp, value, slow):
    """Increment of an indeterminate register value; returns (old, new)."""
    line, vtype, rdmsg, plan = slow
    if value is UNINIT and rdmsg is not None and interp.options.check_uninitialized:
        _raise_read(rdmsg, line)
    checked = interp._require_arithmetic(
        _box(value, vtype, interp.profile), line, "operand of ++/--"
    )
    old = checked.value
    return old, plan(old)


def _elem_pointer_slow(interp, record, index_value, info, line: int):
    """Replicate the lowered subscript resolution: decay, index, add."""
    _name, idx_ctype, idx_msg, idx_line, vinfo = info
    elem = vinfo[0]
    if (
        index_value is UNINIT
        and idx_msg is not None
        and interp.options.check_uninitialized
    ):
        _raise_read(idx_msg, idx_line)
    boxed = _box(index_value, idx_ctype, interp.profile)
    index = interp._require_int(boxed, line, "array subscript")
    from repro.core.values import PointerValue
    decayed = PointerValue(base=record[1], offset=0, type=ct.PointerType(pointee=elem))
    return interp._pointer_add(decayed, index, line), elem


def _lde_slow(interp, record, index_value, info, line: int):
    pointer, elem = _elem_pointer_slow(interp, record, index_value, info, line)
    vinfo = info[4]
    plan = (vinfo[1], vinfo[2], vinfo[3], vinfo[4], vinfo[5])
    value = _read_with_plan(interp, LValue(pointer=pointer, type=elem), plan, line)
    return _unbox(value)


def _lda_slow(interp, address, value_reg_unused, esize, info, line: int):
    """Load through a slow (boxed-pointer) element address."""
    elem = info[0]
    plan = (info[1], info[2], info[3], info[4], info[5])
    value = _read_with_plan(interp, LValue(pointer=address, type=elem), plan, line)
    return _unbox(value)


def _store_slow(interp, address, value, vinfo, rdmsg, rdline, line: int):
    """Store through a boxed pointer / of a non-int register value."""
    from repro.core.values import PointerValue
    if type(address) is tuple:
        _data, base, offset = address
        address = PointerValue(
            base=base, offset=offset, type=ct.PointerType(pointee=vinfo[0])
        )
    if value is UNINIT and rdmsg is not None and interp.options.check_uninitialized:
        _raise_read(rdmsg, rdline)
    elem = vinfo[0]
    plan = (vinfo[1], vinfo[2], vinfo[3], vinfo[4], vinfo[5])
    boxed = _box(value, elem.unqualified(), interp.profile)
    _write_with_plan(interp, LValue(pointer=address, type=elem), plan, boxed, line)


def _stg_slow(interp, record, value, info, line: int):
    from repro.core.lowering import _write_binding
    _name, _check_seq, rdmsg, rdline, vinfo = info
    if value is UNINIT and rdmsg is not None and interp.options.check_uninitialized:
        _raise_read(rdmsg, rdline)
    boxed = _box(value, vinfo[0].unqualified(), interp.profile)
    _write_binding(interp, record[3], boxed, line)


def _ldg_slow(interp, record, line: int):
    return _unbox(_read_binding(interp, record[3], line))


def _seq_conflict_check(memory, base: int, start: int, size: int, line: int) -> None:
    """The fast-path port of ``write_bytes``'s unsequenced-write detection."""
    locs = memory.locs_written
    if locs:
        for offset in range(start, start + size):
            if (base, offset) in locs:
                raise UndefinedBehaviorError(
                    UBKind.UNSEQUENCED_SIDE_EFFECT, _UNSEQ_WRITE, line=line
                )
    for offset in range(start, start + size):
        locs.add((base, offset))


# ---------------------------------------------------------------------------
# The dispatch loop
# ---------------------------------------------------------------------------

def run_native(interp, program: CompiledProgram, fn: FnCode):
    """Run one compiled function body; returns the boxed return value.

    The return value feeds ``Interpreter._execute_call_body``'s shared
    post-processing (None means "fell off the end", exactly like a lowered
    body that never raised ``ReturnSignal``).
    """
    code = fn.code
    R = list(fn.r_init)
    S: list = [None] * fn.n_slots
    memory = interp.memory
    options = program.options
    check_seq = options.check_sequencing
    check_uninit = options.check_uninitialized
    order_mode = program.order_mode
    max_steps = fn.max_steps
    steps = interp._steps
    pc = 0
    while True:
        ins = code[pc]
        pc += 1
        op = ins[0]
        if op == OP_BINOP:
            a = R[ins[2]]
            b = R[ins[3]]
            if a.__class__ is int and b.__class__ is int:
                R[ins[1]] = ins[4](a, b)
            else:
                R[ins[1]] = _binop_slow(interp, a, b, ins[5], order_mode)
        elif op == OP_LDE:
            record = S[ins[2]]
            if record is None:
                record = _bind_slot(interp, S, ins[2], ins[7][0])
            index = R[ins[3]]
            esize = ins[4]
            if (
                index.__class__ is int
                and 0 <= index
                and (index + 1) * esize <= record[2]
                and not (check_seq and memory.locs_written)
            ):
                value = _read_flat(
                    record[0], index * esize, esize, ins[5] == _SMODE_SIGNED
                )
                if value is not None:
                    R[ins[1]] = value
                    continue
            R[ins[1]] = _lde_slow(interp, record, index, ins[7], ins[6])
        elif op == OP_STEP:
            steps += ins[1]
            if steps > max_steps:
                interp._steps = steps
                raise ResourceLimitError(fn.limit_message)
        elif op == OP_JZ:
            value = R[ins[1]]
            if value.__class__ is not int:
                value = 1 if _cond_slow(interp, value, ins[4], ins[5], ins[3]) else 0
            if value == 0:
                pc = ins[2]
        elif op == OP_CONV:
            value = R[ins[2]]
            if value.__class__ is int:
                R[ins[1]] = ins[3](value)
            else:
                R[ins[1]] = _conv_slow(interp, value, ins[4])
        elif op == OP_STE:
            address = R[ins[1]]
            value = R[ins[2]]
            if address.__class__ is tuple and value.__class__ is int:
                esize = ins[3]
                if check_seq:
                    _seq_conflict_check(memory, address[1], address[2], esize, ins[5])
                _write_flat(address[0], address[2], esize, value & ins[4])
            else:
                info = ins[6]
                _store_slow(interp, address, value, info[3], info[1], info[2], ins[5])
        elif op == OP_JMP:
            pc = ins[1]
        elif op == OP_CHKE:
            record = S[ins[2]]
            if record is None:
                record = _bind_slot(interp, S, ins[2], ins[6][0])
            index = R[ins[3]]
            esize = ins[4]
            if index.__class__ is int and 0 <= index and (index + 1) * esize <= record[
                2
            ]:
                R[ins[1]] = (record[0], record[1], index * esize)
            else:
                pointer, _elem = _elem_pointer_slow(
                    interp, record, index, ins[6], ins[5]
                )
                R[ins[1]] = pointer
        elif op == OP_MOV:
            R[ins[1]] = R[ins[2]]
        elif op == OP_JNZ:
            value = R[ins[1]]
            if value.__class__ is not int:
                value = 1 if _cond_slow(interp, value, ins[4], ins[5], ins[3]) else 0
            if value != 0:
                pc = ins[2]
        elif op == OP_LDG:
            record = S[ins[2]]
            if record is None:
                record = _bind_slot(interp, S, ins[2], ins[6][0])
            if not (check_seq and memory.locs_written):
                value = _read_flat(record[0], 0, ins[3], ins[4] == _SMODE_SIGNED)
                if value is not None:
                    R[ins[1]] = value
                    continue
            R[ins[1]] = _ldg_slow(interp, record, ins[5])
        elif op == OP_STG:
            record = S[ins[1]]
            if record is None:
                record = _bind_slot(interp, S, ins[1], ins[6][0])
            value = R[ins[2]]
            if value.__class__ is int:
                if check_seq:
                    _seq_conflict_check(memory, record[1], 0, ins[3], ins[5])
                _write_flat(record[0], 0, ins[3], value & ins[4])
            else:
                _stg_slow(interp, record, value, ins[6], ins[5])
        elif op == OP_SEQPT:
            memory.locs_written.clear()
        elif op == OP_INC:
            value = R[ins[1]]
            if value.__class__ is int:
                R[ins[1]] = ins[3](value)
                if ins[2] >= 0:
                    R[ins[2]] = value
            else:
                old, new = _inc_slow(interp, value, ins[4])
                R[ins[1]] = new
                if ins[2] >= 0:
                    R[ins[2]] = old
        elif op == OP_LDA:
            address = R[ins[2]]
            if address.__class__ is tuple:
                value = _read_flat(
                    address[0], address[2], ins[3], ins[4] == _SMODE_SIGNED
                )
                if value is not None and not (check_seq and memory.locs_written):
                    R[ins[1]] = value
                    continue
                from repro.core.values import PointerValue
                address = PointerValue(
                    base=address[1],
                    offset=address[2],
                    type=ct.PointerType(pointee=ins[6][0]),
                )
            R[ins[1]] = _lda_slow(interp, address, None, ins[3], ins[6], ins[5])
        elif op == OP_UNOP:
            value = R[ins[2]]
            if value.__class__ is int:
                R[ins[1]] = ins[3](value)
            else:
                R[ins[1]] = _unop_slow(interp, value, ins[4])
        elif op == OP_NOT:
            value = R[ins[2]]
            if value.__class__ is int:
                R[ins[1]] = 1 if value == 0 else 0
            else:
                R[ins[1]] = (
                    0 if _cond_slow(interp, value, ins[4], ins[5], ins[3]) else 1
                )
        elif op == OP_BOOL:
            value = R[ins[2]]
            if value.__class__ is int:
                R[ins[1]] = 1 if value != 0 else 0
            else:
                R[ins[1]] = (
                    1 if _cond_slow(interp, value, ins[4], ins[5], ins[3]) else 0
                )
        elif op == OP_LOADI:
            R[ins[1]] = ins[2]
        elif op == OP_RDCHK:
            if R[ins[1]] is UNINIT:
                _raise_read(ins[2], ins[3])
        elif op == OP_CALL:
            _dst, name, ftype, args, line = ins[1], ins[2], ins[3], ins[4], ins[5]
            interp.current_line = line
            if check_uninit and args:
                scan = args if order_mode == 0 else reversed(args)
                for reg, _ctype, rdmsg, rdline in scan:
                    if R[reg] is UNINIT and rdmsg is not None:
                        _raise_read(rdmsg, rdline)
            profile = interp.profile
            values = [_box(R[reg], ctype, profile) for reg, ctype, _m, _l in args]
            values = interp._convert_arguments(values, name, ftype, line)
            memory.sequence_point()
            interp._steps = steps
            result = interp.call_function(name, values, line, declared_type=ftype)
            steps = interp._steps
            if _dst >= 0:
                R[_dst] = _unbox(result)
        elif op == OP_RET:
            interp._steps = steps
            if ins[1] < 0:
                return None
            value = R[ins[1]]
            if value.__class__ is int:
                return IntValue(value, ins[2])
            if value is UNINIT:
                if ins[3] is not None and check_uninit:
                    _raise_read(ins[3], ins[4])
                return _box(UNINIT, ins[2], interp.profile)
            return value
        elif op == OP_DECL:
            interp.current_line = ins[3]
            interp._steps = steps
            interp.exec_local_declaration(ins[1])
            steps = interp._steps
            if ins[2] >= 0:
                _bind_slot(interp, S, ins[2], ins[1].name)
        elif op == OP_BINDR:
            binding = interp.frames[-1].lookup(ins[2])
            obj = memory.objects[binding.base]
            value = _read_flat(obj.data, 0, ins[3], ins[4])
            R[ins[1]] = UNINIT if value is None else value
        elif op == OP_PUSHSC:
            interp.frames[-1].push_scope()
        elif op == OP_POPSC:
            scope = interp.frames[-1].pop_scope()
            for base in scope.owned_bases:
                memory.kill(base)
        elif op == OP_RAISE:
            interp._steps = steps
            raise UndefinedBehaviorError(ins[1], ins[2], line=ins[3])
        elif op == OP_STR:
            R[ins[1]] = interp.string_literal_object(ins[2])[0]
        else:  # pragma: no cover - the compiler only emits known opcodes
            raise AssertionError(f"unknown opcode {op}")
