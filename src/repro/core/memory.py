"""The symbolic memory of the C abstract machine.

Memory is a map from symbolic *base addresses* to objects, each object being a
fixed-length block of (possibly symbolic) bytes — exactly the model of
Section 4.3.1 of the paper.  Because bases are opaque, two pointers into
different objects have no defined order, and a pointer can never "walk" from
one object into another: the bounds check on every access is what turns
buffer overflows into reported undefined behavior instead of silent reads of
adjacent memory.

The memory also carries the two auxiliary cells of Section 4.2:

* ``locs_written`` — the ``locsWrittenTo`` set of byte locations written since
  the last sequence point (unsequenced side effect detection), and
* ``not_writable`` — the set of const / string-literal byte locations
  (const-correctness checking).
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions
from repro.core.values import (
    Byte,
    ConcreteByte,
    PointerValue,
    UnknownByte,
    unknown_bytes,
)
from repro.errors import UBKind, UndefinedBehaviorError
from repro.events import (
    FAMILY_CONST,
    FAMILY_EFFECTIVE_TYPES,
    FAMILY_MEMORY,
    FAMILY_SEQUENCING,
    AllocEvent,
    FreeEvent,
    ReadEvent,
    SequencePointEvent,
    WriteEvent,
    report_undefined,
)


class StorageKind(enum.Enum):
    STATIC = "static"
    AUTO = "auto"
    HEAP = "heap"
    STRING_LITERAL = "string-literal"
    FUNCTION = "function"


#: Objects at or above this size never materialize a per-byte store; they get
#: a :class:`SparseBytes` overlay instead.  Chosen above every array any test
#: or generated program materializes byte-for-byte, but far below the
#: larger-than-``PTRDIFF_MAX`` static objects whose pointer differences the
#: checker must still be able to judge.
SPARSE_OBJECT_THRESHOLD = 1 << 24


@dataclass
class MemoryObject:
    """One allocated object: ``mem[base] = obj(Len, bytes)`` in the paper."""

    base: int
    size: int
    kind: StorageKind
    name: str = ""
    data: list[Byte] = field(default_factory=list)
    alive: bool = True
    freed: bool = False
    declared_type: Optional[ct.CType] = None
    effective_type: Optional[ct.CType] = None
    #: For allocated (heap) objects, the effective type is determined by the
    #: last store to each part of the object (§6.5:6); we track it per offset.
    effective_types: dict[int, ct.CType] = field(default_factory=dict)
    frame: Optional[int] = None          # owning stack frame for AUTO objects
    is_const: bool = False

    def __post_init__(self) -> None:
        if not self.data:
            if self.size >= SPARSE_OBJECT_THRESHOLD:
                self.data = SparseBytes(self.size, UnknownByte.fresh())
            else:
                self.data = unknown_bytes(self.size)

    def zero_fill(self) -> None:
        """Set every byte to zero (static-storage initialization, §6.7.9:10)."""
        if isinstance(self.data, SparseBytes):
            self.data.fill(ConcreteByte(0))
        else:
            self.data[:] = [ConcreteByte(0) for _ in range(self.size)]


class SparseBytes:
    """A ``list[Byte]``-compatible store for objects too large to materialize.

    Every byte starts as ``default``; writes land in the ``overlay`` dict
    keyed by offset.  This is what lets a ``static char vast[> PTRDIFF_MAX]``
    exist as an addressable object — its pointers, bounds checks, and
    pointer-difference semantics are exact — without ever allocating its
    bytes.  Accesses touch only the bytes they name, so reads and writes of
    reasonable sizes stay O(bytes accessed) regardless of object size.
    """

    __slots__ = ("size", "default", "overlay")

    def __init__(self, size: int, default: Byte) -> None:
        self.size = size
        self.default = default
        self.overlay: dict = {}

    def fill(self, byte: Byte) -> None:
        self.default = byte
        self.overlay.clear()

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.size)
            overlay = self.overlay
            default = self.default
            return [overlay.get(i, default) for i in range(start, stop, step)]
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError("SparseBytes index out of range")
        return self.overlay.get(index, self.default)

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            start, stop, step = index.indices(self.size)
            if step != 1:
                raise ValueError("SparseBytes only supports contiguous slices")
            values = list(value)
            if len(values) != stop - start:
                raise ValueError("SparseBytes slice assignment must preserve length")
            overlay = self.overlay
            for offset, byte in zip(range(start, stop), values):
                overlay[offset] = byte
            return
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError("SparseBytes index out of range")
        self.overlay[index] = value

    def __iter__(self):
        overlay = self.overlay
        default = self.default
        for index in range(self.size):
            yield overlay.get(index, default)

    def __eq__(self, other) -> bool:
        if not isinstance(other, (SparseBytes, list, tuple)):
            return NotImplemented
        if len(other) != self.size:
            return False
        return all(a == b for a, b in zip(self, other))

    def __repr__(self) -> str:
        return (f"SparseBytes(size={self.size}, default={self.default!r}, "
                f"overlaid={len(self.overlay)})")

    # -- integer fast path (same contract as ArenaBytes) -------------------
    def read_int(self, offset: int, size: int, signed: bool):
        overlay = self.overlay
        default = self.default
        value = 0
        for index in range(size):
            byte = overlay.get(offset + index, default)
            if type(byte) is not ConcreteByte:
                return None
            value |= byte.value << (8 * index)
        if signed:
            half = 1 << (size * 8 - 1)
            if value >= half:
                value -= half << 1
        return value

    def write_int(self, offset: int, size: int, unsigned_value: int) -> None:
        overlay = self.overlay
        for index in range(size):
            overlay[offset + index] = ConcreteByte((unsigned_value >> (8 * index)) & 0xFF)


class ArenaBytes:
    """A ``list[Byte]``-compatible view of one object's bytes, backed by a
    contiguous shared ``bytearray`` arena plus a sparse ``exotic`` overlay.

    The common case — concrete bytes — lives as plain integers in the arena
    (one machine byte per C byte, integer addressed); symbolic bytes
    (:class:`UnknownByte`, :class:`PointerByte`, :class:`FloatByte`) live in
    the per-object ``exotic`` dict keyed by offset and shadow the arena cell.
    The compiled VM reads and writes the arena directly via
    :meth:`read_int` / :meth:`write_int`; every generic byte-level path
    (``read_bytes`` slices, ``write_bytes`` slice assignment, probes
    iterating ``obj.data``) goes through the sequence protocol below and
    observes exactly what the dict-backed list store would hold.
    """

    __slots__ = ("arena", "start", "size", "exotic")

    def __init__(self, arena: bytearray, initial: list) -> None:
        self.arena = arena
        self.start = len(arena)
        size = len(initial)
        self.size = size
        exotic: dict = {}
        buffer = bytearray(size)
        for index, byte in enumerate(initial):
            if type(byte) is ConcreteByte:
                buffer[index] = byte.value
            else:
                exotic[index] = byte
        arena += buffer
        self.exotic = exotic

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.size)
            exotic = self.exotic
            base = self.start
            arena = self.arena
            if not exotic:
                return [ConcreteByte(v) for v in arena[base + start:base + stop:step]]
            result = []
            for i in range(start, stop, step):
                byte = exotic.get(i)
                result.append(ConcreteByte(arena[base + i]) if byte is None else byte)
            return result
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError("ArenaBytes index out of range")
        byte = self.exotic.get(index)
        return ConcreteByte(self.arena[self.start + index]) if byte is None else byte

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            start, stop, step = index.indices(self.size)
            if step != 1:
                raise ValueError("ArenaBytes only supports contiguous slices")
            values = list(value)
            if len(values) != stop - start:
                raise ValueError("ArenaBytes slice assignment must preserve length")
            for offset, byte in zip(range(start, stop), values):
                self._set_byte(offset, byte)
            return
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError("ArenaBytes index out of range")
        self._set_byte(index, value)

    def _set_byte(self, index: int, byte) -> None:
        if type(byte) is ConcreteByte:
            self.arena[self.start + index] = byte.value
            if self.exotic:
                self.exotic.pop(index, None)
        else:
            self.exotic[index] = byte

    def __iter__(self):
        exotic = self.exotic
        base = self.start
        arena = self.arena
        for index in range(self.size):
            byte = exotic.get(index)
            yield ConcreteByte(arena[base + index]) if byte is None else byte

    def __eq__(self, other) -> bool:
        if not isinstance(other, (ArenaBytes, list, tuple)):
            return NotImplemented
        if len(other) != self.size:
            return False
        return all(a == b for a, b in zip(self, other))

    def __repr__(self) -> str:
        return f"ArenaBytes({list(self)!r})"

    # -- integer fast path (the compiled VM's MLOAD/MSTORE) ----------------
    def read_int(self, offset: int, size: int, signed: bool):
        """Decode ``size`` little-endian bytes at ``offset`` as an integer,
        or None when any byte in range is exotic (symbolic)."""
        exotic = self.exotic
        if exotic:
            for index in range(offset, offset + size):
                if index in exotic:
                    return None
        start = self.start + offset
        value = int.from_bytes(self.arena[start:start + size], "little")
        if signed:
            half = 1 << (size * 8 - 1)
            if value >= half:
                value -= half << 1
        return value

    def write_int(self, offset: int, size: int, unsigned_value: int) -> None:
        """Store ``size`` little-endian bytes of an already-masked
        (non-negative) integer at ``offset``, clearing any exotic overlay."""
        start = self.start + offset
        self.arena[start:start + size] = unsigned_value.to_bytes(size, "little")
        exotic = self.exotic
        if exotic:
            for index in range(offset, offset + size):
                if index in exotic:
                    del exotic[index]


class ByteLocation(typing.NamedTuple):
    """A single byte address ``sym(base) + offset``.

    A named tuple rather than a dataclass: one is created per byte touched
    while sequencing checks are on, and tuple construction/hash is what makes
    the ``locsWrittenTo`` bookkeeping affordable on the hot path (membership
    tests may equivalently use plain ``(base, offset)`` tuples).
    """

    base: int
    offset: int


class Memory:
    """Symbolic memory plus the auxiliary undefinedness-tracking cells."""

    def __init__(self, options: CheckerOptions, store: str = "dict") -> None:
        self.options = options
        self.profile = options.profile
        self.objects: dict[int, MemoryObject] = {}
        #: ``store="arena"`` keeps every object's concrete bytes in one shared
        #: ``bytearray`` (integer addressed, see :class:`ArenaBytes`); the
        #: default list-of-Byte store stays for the walker/lowered engines.
        self._arena: Optional[bytearray] = bytearray() if store == "arena" else None
        #: Attached :class:`repro.events.ProbeSet`, or None (the common case);
        #: every emission below is guarded so unprobed runs construct nothing.
        self.events = None
        self._next_base = 1
        # §4.2.1: locations written to since the last sequence point.
        self.locs_written: set[ByteLocation] = set()
        # §4.2.2: locations that must never be written (const, string literals).
        self.not_writable: set[int] = set()     # object bases
        self.heap_allocations = 0
        # Index of AUTO object bases per stack frame, so returning from a
        # call ends lifetimes in O(frame objects) instead of a scan of every
        # object ever allocated.
        self._frame_objects: dict[int, list[int]] = {}
        # Memoized strict-aliasing verdicts for declared-type accesses,
        # keyed (lvalue type, declared type); see check_effective_type.
        self._aliasing_ok: dict = {}

    # ------------------------------------------------------------------
    # Allocation and lifetime
    # ------------------------------------------------------------------
    def allocate(self, size: int, kind: StorageKind, *, name: str = "",
                 declared_type: Optional[ct.CType] = None,
                 frame: Optional[int] = None,
                 data: Optional[list[Byte]] = None,
                 is_const: bool = False) -> MemoryObject:
        """Create a new object and return it."""
        base = self._next_base
        self._next_base += 1
        obj = MemoryObject(
            base=base, size=size, kind=kind, name=name,
            data=list(data) if data is not None else [],
            declared_type=declared_type,
            effective_type=declared_type.unqualified() if declared_type is not None else None,
            frame=frame, is_const=is_const)
        if self._arena is not None and obj.size > 0 \
                and not isinstance(obj.data, SparseBytes):
            # __post_init__ has already filled fresh unknown bytes (or kept
            # the provided data); wrapping re-homes those same Byte objects,
            # so symbolic-byte identity (e.g. UnknownByte origins) matches
            # the list store exactly.  SparseBytes objects stay sparse: they
            # are too large for the arena by construction and already expose
            # the same read_int/write_int fast path.
            obj.data = ArenaBytes(self._arena, obj.data)
        self.objects[base] = obj
        if frame is not None and kind is StorageKind.AUTO:
            self._frame_objects.setdefault(frame, []).append(base)
        if is_const or kind is StorageKind.STRING_LITERAL:
            self.not_writable.add(base)
        if kind is StorageKind.HEAP:
            self.heap_allocations += 1
        if self.events is not None:
            self.events.emit(AllocEvent(base, size, kind.value, name))
        return obj

    def object_for(self, base: Optional[int]) -> Optional[MemoryObject]:
        if base is None:
            return None
        return self.objects.get(base)

    def kill(self, base: int) -> None:
        """End the lifetime of an automatic object (scope exit / return)."""
        obj = self.objects.get(base)
        if obj is not None:
            obj.alive = False

    def kill_frame(self, frame: int) -> None:
        """End the lifetime of every automatic object owned by ``frame``."""
        bases = self._frame_objects.pop(frame, None)
        if not bases:
            return
        objects = self.objects
        for base in bases:
            obj = objects.get(base)
            if obj is not None:
                obj.alive = False

    def free(self, pointer: PointerValue, *, line: Optional[int] = None) -> None:
        """``free(ptr)`` with the §7.22.3.3 checks."""
        if pointer.is_null:
            return  # free(NULL) is a no-op and defined
        obj = self.object_for(pointer.base)
        if obj is None:
            self._stuck(UBKind.BAD_FREE, "free() of a pointer not obtained from an allocation function", line)
            return
        if obj.kind is not StorageKind.HEAP:
            self._stuck(UBKind.BAD_FREE,
                        f"free() of non-heap object '{obj.name or obj.base}' "
                        f"({obj.kind.value} storage)", line)
            return
        if obj.freed or not obj.alive:
            self._stuck(UBKind.DOUBLE_FREE, "free() of already-freed memory", line)
            return
        if pointer.offset != 0:
            self._stuck(UBKind.BAD_FREE,
                        "free() of a pointer that does not point to the start of the allocation",
                        line)
            return
        obj.alive = False
        obj.freed = True
        if self.events is not None:
            self.events.emit(FreeEvent(obj.base, line))

    # ------------------------------------------------------------------
    # Access checks (the embedded checkDeref of §4.1.2)
    # ------------------------------------------------------------------
    def check_access(self, pointer: PointerValue, size: int, *, write: bool,
                     line: Optional[int] = None,
                     lvalue_type: Optional[ct.CType] = None) -> Optional[MemoryObject]:
        """Validate an access of ``size`` bytes through ``pointer``.

        Returns the target object when the access is allowed (or when the
        corresponding check is disabled); raises otherwise.  In observed
        mode (:func:`repro.events.report_undefined` recording instead of
        raising) each failure falls back to exactly what ``check_memory =
        False`` produces — the resolved object when one exists, so callers'
        own bounds rechecks decide what data moves.
        """
        if not self.options.check_memory:
            return self.object_for(pointer.base)
        if pointer.is_null:
            self._stuck(UBKind.NULL_DEREFERENCE, "Dereference of a null pointer.", line,
                        family=FAMILY_MEMORY, check="access",
                        data={"reason": "null", "write": write, "size": size})
            return None
        if pointer.is_function:
            self._stuck(UBKind.OUT_OF_BOUNDS, "Data access through a function pointer.", line,
                        family=FAMILY_MEMORY, check="access",
                        data={"reason": "function", "write": write, "size": size})
            return None
        obj = self.object_for(pointer.base)
        if obj is None:
            self._stuck(UBKind.DANGLING_DEREFERENCE,
                        "Use of an invalid pointer (no such object).", line,
                        family=FAMILY_MEMORY, check="access",
                        data={"reason": "no-object", "write": write, "size": size})
            return None
        if not obj.alive:
            data = self._access_data(obj, pointer.offset, size, write)
            if obj.freed:
                self._stuck(UBKind.USE_AFTER_FREE,
                            f"Use of memory after free() ({obj.name or 'heap object'}).", line,
                            family=FAMILY_MEMORY, check="access", data=data)
            else:
                self._stuck(UBKind.DANGLING_DEREFERENCE,
                            f"Use of object '{obj.name}' whose lifetime has ended.", line,
                            family=FAMILY_MEMORY, check="access", data=data)
            return obj
        if pointer.offset < 0 or pointer.offset + size > obj.size:
            kind = UBKind.BUFFER_OVERFLOW if write else UBKind.OUT_OF_BOUNDS
            self._stuck(kind,
                        f"Access of {size} byte(s) at offset {pointer.offset} outside object "
                        f"'{obj.name or obj.base}' of size {obj.size}.", line,
                        family=FAMILY_MEMORY, check="access",
                        data=self._access_data(obj, pointer.offset, size, write))
            return obj
        return obj

    @staticmethod
    def _access_data(obj: MemoryObject, offset: int, size: int, write: bool) -> dict:
        """Site facts a custom memory model (a probe) needs to re-judge an
        access check: see :class:`repro.analyzers.valgrind_like.ValgrindProbe`."""
        return {"reason": "bounds" if obj.alive else "dead",
                "storage": obj.kind.value, "object_size": obj.size,
                "offset": offset, "size": size, "write": write,
                "alive": obj.alive, "freed": obj.freed}

    def check_alignment(self, pointer: PointerValue, ctype: ct.CType,
                        line: Optional[int] = None) -> None:
        if not self.options.check_memory:
            return
        try:
            align = ct.align_of(ctype, self.profile)
        except ct.LayoutError:
            return
        if align > 1 and pointer.offset % align != 0:
            self._stuck(UBKind.UNALIGNED_ACCESS,
                        f"Access at offset {pointer.offset} is not aligned to {align} bytes "
                        f"for type {ctype}.", line,
                        family=FAMILY_MEMORY, check="alignment")

    def check_effective_type(self, obj: MemoryObject, lvalue_type: ct.CType,
                             *, write: bool, offset: int = 0,
                             line: Optional[int] = None) -> None:
        """The strict-aliasing check of §6.5:7.

        Objects with a declared type use that type as their effective type.
        Allocated objects have no declared type: the effective type of each
        part of the object is set by the last store to it (§6.5:6), which we
        track per offset so that writing the different members of a
        ``malloc``-ed struct does not conflict with itself.
        """
        if not self.options.check_effective_types:
            return
        if lvalue_type is None or not lvalue_type.is_scalar:
            return
        if ct.is_character_type(lvalue_type):
            return
        declared = obj.declared_type
        if declared is None or declared.is_void:
            # Allocated storage: the store determines the effective type.
            if write:
                obj.effective_types[offset] = lvalue_type.unqualified()
                return
            recorded = obj.effective_types.get(offset)
            if recorded is None:
                return
            if not ct.aliasing_compatible(lvalue_type, recorded, self.profile):
                self._stuck(UBKind.EFFECTIVE_TYPE_VIOLATION,
                            f"Allocated object written with effective type '{recorded}' "
                            f"read through an lvalue of incompatible type '{lvalue_type}'.",
                            line, family=FAMILY_EFFECTIVE_TYPES)
            return
        # Declared objects: the verdict is a pure function of (lvalue type,
        # declared type); memoized per run so repeated accesses skip the
        # recursive compatibility walk.  (Per-Memory, not process-wide:
        # record types compare by tag, only unambiguous within a run.)
        key = (lvalue_type, declared)
        ok = self._aliasing_ok.get(key)
        if ok is None:
            effective = declared.unqualified()
            elem = effective.element if isinstance(effective, ct.ArrayType) \
                else effective
            ok = (ct.aliasing_compatible(lvalue_type, effective, self.profile)
                  or ct.aliasing_compatible(lvalue_type, elem, self.profile))
            self._aliasing_ok[key] = ok
        if not ok:
            self._stuck(UBKind.EFFECTIVE_TYPE_VIOLATION,
                        f"Object with effective type '{declared.unqualified()}' "
                        f"accessed through an lvalue "
                        f"of incompatible type '{lvalue_type}'.", line,
                        family=FAMILY_EFFECTIVE_TYPES)

    # ------------------------------------------------------------------
    # Reads and writes (writeByte / readByte of §4.2.1)
    # ------------------------------------------------------------------
    def read_bytes(self, pointer: PointerValue, size: int, *,
                   line: Optional[int] = None,
                   lvalue_type: Optional[ct.CType] = None,
                   track_sequencing: bool = True) -> list[Byte]:
        if self.events is not None:
            self.events.emit(ReadEvent(pointer.base, pointer.offset, size, line))
        obj = self.check_access(pointer, size, write=False, line=line,
                                lvalue_type=lvalue_type)
        if obj is None:
            return unknown_bytes(size)
        if pointer.offset < 0 or pointer.offset + size > obj.size:
            # Only reachable with the memory checks disabled (ablation mode):
            # model the out-of-bounds read as indeterminate data.
            return unknown_bytes(size)
        if lvalue_type is not None:
            self.check_effective_type(obj, lvalue_type, write=False,
                                      offset=pointer.offset, line=line)
        if track_sequencing and self.options.check_sequencing and self.locs_written:
            base = pointer.base
            start = pointer.offset
            locs = self.locs_written
            for index in range(size):
                # Plain tuples compare equal to the ByteLocation named tuples
                # stored in the set; no per-byte object construction needed.
                if (base, start + index) in locs:
                    self._stuck(
                        UBKind.UNSEQUENCED_SIDE_EFFECT,
                        "Unsequenced side effect on scalar object with value computation "
                        "of same object.", line, family=FAMILY_SEQUENCING)
                    break  # observed mode: one event per read, then read as usual
        start = pointer.offset
        return list(obj.data[start:start + size])

    def write_bytes(self, pointer: PointerValue, data: list[Byte], *,
                    line: Optional[int] = None,
                    lvalue_type: Optional[ct.CType] = None,
                    track_sequencing: bool = True) -> None:
        size = len(data)
        if self.events is not None:
            self.events.emit(WriteEvent(pointer.base, pointer.offset, size, line))
        obj = self.check_access(pointer, size, write=True, line=line,
                                lvalue_type=lvalue_type)
        if obj is None:
            return
        if pointer.offset < 0 or pointer.offset + size > obj.size:
            # Only reachable with the memory checks disabled (ablation mode)
            # or past a recorded bounds failure (observed mode): drop the
            # out-of-bounds part of the write.
            return
        # §4.2.2: const-correctness — notWritable objects must not be written.
        # A recorded violation falls through and performs the write, exactly
        # as the check_const=False ablation does.
        if self.options.check_const and obj.base in self.not_writable:
            if obj.kind is StorageKind.STRING_LITERAL:
                self._stuck(UBKind.MODIFY_STRING_LITERAL,
                            "Attempt to modify a string literal.", line,
                            family=FAMILY_CONST)
            else:
                self._stuck(UBKind.CONST_VIOLATION,
                            f"Write to object '{obj.name}' defined with a const-qualified type.",
                            line, family=FAMILY_CONST)
        if lvalue_type is not None:
            self.check_effective_type(obj, lvalue_type, write=True,
                                      offset=pointer.offset, line=line)
        # §4.2.1: unsequenced-write detection against locsWrittenTo.
        if track_sequencing and self.options.check_sequencing:
            base = pointer.base
            offset = pointer.offset
            locs = self.locs_written
            reported = False
            for index in range(size):
                loc = ByteLocation(base, offset + index)
                if loc in locs and not reported:
                    self._stuck(
                        UBKind.UNSEQUENCED_SIDE_EFFECT,
                        "Unsequenced side effect on scalar object with side effect "
                        "of same object.", line, family=FAMILY_SEQUENCING)
                    reported = True  # observed mode: one event, keep tracking
                locs.add(loc)
        start = pointer.offset
        obj.data[start:start + size] = data

    def sequence_point(self) -> None:
        """Empty the ``locsWrittenTo`` set (the paper's ``seqPoint`` rule)."""
        if self.events is not None:
            self.events.emit(_SEQUENCE_POINT)
        self.locs_written.clear()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def mark_not_writable(self, base: int) -> None:
        self.not_writable.add(base)

    def object_count(self, kind: Optional[StorageKind] = None) -> int:
        if kind is None:
            return len(self.objects)
        return sum(1 for obj in self.objects.values() if obj.kind is kind)

    def live_heap_objects(self) -> list[MemoryObject]:
        return [obj for obj in self.objects.values()
                if obj.kind is StorageKind.HEAP and obj.alive]

    def _stuck(self, kind: UBKind, message: str, line: Optional[int], *,
               family: Optional[str] = None, check: Optional[str] = None,
               data: Optional[dict] = None) -> None:
        """Report a fired check: raise (get stuck) in strict mode, record
        and return in observed mode (``family=None`` is always terminal)."""
        report_undefined(UndefinedBehaviorError(kind, message, line=line),
                         family, check=check, data=data)


#: sequence_point() fires on every full expression; the event carries no
#: fields, so one immutable instance serves every emission.
_SEQUENCE_POINT = SequencePointEvent()
