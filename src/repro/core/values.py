"""Runtime values and symbolic bytes of the C abstract machine.

The paper's semantics (Section 4.3) treats memory contents symbolically:

* pointers are **base/offset pairs** ``sym(B) + O`` rather than integers, so
  pointers into different objects cannot be compared or subtracted;
* a pointer stored in memory is split into **symbolic bytes**
  ``subObject(ptr, i)`` that only reconstruct the pointer when all bytes are
  present and in order;
* uninitialized memory holds **unknown bytes** which may be copied through
  character types but may not be *used*.

This module defines the byte and value representations implementing exactly
that model.
"""

from __future__ import annotations

import itertools
import struct as _struct
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.cfront import ctypes as ct


# ---------------------------------------------------------------------------
# Bytes
# ---------------------------------------------------------------------------

_unknown_counter = itertools.count(1)


@dataclass(frozen=True)
class ConcreteByte:
    """A fully determined byte value 0..255."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & 0xFF)


@dataclass(frozen=True)
class PointerByte:
    """Byte ``index`` of the in-memory representation of ``pointer``.

    This is the paper's ``subObject(sym(B)+O, index)``: the split is symbolic,
    so the pointer can only be reconstructed from all of its bytes in order.
    """

    pointer: "PointerValue"
    index: int
    size: int


@dataclass(frozen=True)
class FloatByte:
    """Byte ``index`` of the representation of a floating-point value."""

    value: float
    kind: str
    index: int
    size: int


@dataclass(frozen=True)
class UnknownByte:
    """An indeterminate byte (the paper's ``unknown(N)``)."""

    origin: int = 0

    @staticmethod
    def fresh() -> "UnknownByte":
        return UnknownByte(origin=next(_unknown_counter))


Byte = Union[ConcreteByte, PointerByte, FloatByte, UnknownByte]


def unknown_bytes(count: int) -> list[Byte]:
    """A list of ``count`` fresh indeterminate bytes."""
    return [UnknownByte.fresh() for _ in range(count)]


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CValue:
    """Base class of runtime values."""

    @property
    def is_indeterminate(self) -> bool:
        return False


@dataclass(frozen=True)
class VoidValue(CValue):
    """The (nonexistent) value of a void expression."""


@dataclass(frozen=True)
class IntValue(CValue):
    value: int = 0
    type: ct.CType = field(default_factory=lambda: ct.INT)

    def is_zero(self) -> bool:
        return self.value == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntValue({self.value}: {self.type})"


@dataclass(frozen=True)
class FloatValue(CValue):
    value: float = 0.0
    type: ct.CType = field(default_factory=lambda: ct.DOUBLE)

    def is_zero(self) -> bool:
        return self.value == 0.0


@dataclass(frozen=True)
class PointerValue(CValue):
    """A symbolic pointer ``sym(base) + offset`` of type ``type``.

    ``base is None`` represents the null pointer.  ``function`` holds the
    designated function name for pointers to functions.
    """

    base: Optional[int] = None
    offset: int = 0
    type: ct.CType = field(default_factory=lambda: ct.PointerType(pointee=ct.VOID))
    function: Optional[str] = None

    @property
    def is_null(self) -> bool:
        return self.base is None and self.function is None and self.offset == 0

    @property
    def is_function(self) -> bool:
        return self.function is not None

    @property
    def pointee_type(self) -> ct.CType:
        assert isinstance(self.type, ct.PointerType)
        return self.type.pointee

    def with_offset(self, offset: int) -> "PointerValue":
        return PointerValue(base=self.base, offset=offset, type=self.type,
                            function=self.function)

    def with_type(self, new_type: ct.CType) -> "PointerValue":
        return PointerValue(base=self.base, offset=self.offset, type=new_type,
                            function=self.function)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_null:
            return "PointerValue(NULL)"
        if self.function is not None:
            return f"PointerValue(&{self.function})"
        return f"PointerValue(sym({self.base})+{self.offset}: {self.type})"


NULL_POINTER = PointerValue(base=None, offset=0, type=ct.PointerType(pointee=ct.VOID))


@dataclass(frozen=True)
class StructValue(CValue):
    """An aggregate value carried as its raw (possibly symbolic) bytes.

    ``source_base``/``source_offset`` record where the bytes were read from
    (attached by ``read_lvalue``), so a whole-object assignment can detect a
    copy between overlapping objects (§6.5.16.1:3) at the store.  They are
    provenance, not part of the value: excluded from equality.
    """

    data: tuple[Byte, ...] = ()
    type: ct.CType = field(default_factory=lambda: ct.StructType(tag=None))
    source_base: Optional[int] = field(default=None, compare=False)
    source_offset: int = field(default=0, compare=False)


@dataclass(frozen=True)
class IndeterminateValue(CValue):
    """A value read from memory that is not (fully) determined.

    It remembers the underlying bytes so that storing it back preserves them
    (e.g. ``memcpy`` copying uninitialized padding, §4.3.3), but *using* it
    in arithmetic, as a branch condition, or as an address is undefined.
    """

    type: ct.CType = field(default_factory=lambda: ct.INT)
    data: tuple[Byte, ...] = ()

    @property
    def is_indeterminate(self) -> bool:
        return True


# ---------------------------------------------------------------------------
# Encoding values to bytes and back
# ---------------------------------------------------------------------------

class DecodeResult:
    """Outcome of decoding bytes at a given type."""

    def __init__(self, value: CValue, determinate: bool) -> None:
        self.value = value
        self.determinate = determinate


def encode_int(value: int, size: int, signed: bool) -> list[Byte]:
    """Two's-complement little-endian encoding of an integer."""
    mask = (1 << (size * 8)) - 1
    raw = value & mask
    return [ConcreteByte((raw >> (8 * i)) & 0xFF) for i in range(size)]


def decode_int(data: Sequence[Byte], signed: bool) -> Optional[int]:
    """Decode little-endian bytes into an integer, or None if indeterminate."""
    raw = 0
    for index, byte in enumerate(data):
        if not isinstance(byte, ConcreteByte):
            return None
        raw |= byte.value << (8 * index)
    if signed:
        bits = len(data) * 8
        if raw >= (1 << (bits - 1)):
            raw -= 1 << bits
    return raw


def encode_float(value: float, kind: str, size: int) -> list[Byte]:
    """Represent a float as symbolic float bytes (its exact bit pattern is
    implementation-defined, so we never commit to one)."""
    return [FloatByte(value=value, kind=kind, index=i, size=size) for i in range(size)]


def decode_float(data: Sequence[Byte]) -> Optional[float]:
    if not data:
        return None
    first = data[0]
    if not isinstance(first, FloatByte):
        # Concrete bytes (e.g. written through a char lvalue): reinterpret.
        raw = decode_int(data, signed=False)
        if raw is None:
            return None
        try:
            if len(data) == 4:
                return _struct.unpack("<f", raw.to_bytes(4, "little"))[0]
            return _struct.unpack("<d", raw.to_bytes(8, "little"))[0]
        except (OverflowError, _struct.error):
            return None
    for index, byte in enumerate(data):
        if not isinstance(byte, FloatByte) or byte.index != index or byte.value != first.value:
            return None
    return first.value


def encode_pointer(pointer: PointerValue, size: int) -> list[Byte]:
    """The paper's symbolic byte-splitting of a stored pointer (§4.3.2)."""
    if pointer.is_null:
        return encode_int(0, size, signed=False)
    return [PointerByte(pointer=pointer, index=i, size=size) for i in range(size)]


def decode_pointer(data: Sequence[Byte], target_type: ct.CType) -> Optional[PointerValue]:
    """Reconstruct a pointer from its bytes, or None if not reconstructible."""
    if not data:
        return None
    if all(isinstance(b, ConcreteByte) for b in data):
        raw = decode_int(data, signed=False)
        if raw == 0:
            return PointerValue(base=None, offset=0, type=target_type)
        return None
    first = data[0]
    if not isinstance(first, PointerByte):
        return None
    if first.index != 0 or first.size != len(data):
        return None
    for index, byte in enumerate(data):
        if (not isinstance(byte, PointerByte) or byte.index != index
                or byte.pointer != first.pointer):
            return None
    pointer = first.pointer
    if isinstance(target_type, ct.PointerType):
        pointer = pointer.with_type(target_type)
    return pointer


def encode_value(value: CValue, ctype: ct.CType,
                 profile: ct.ImplementationProfile) -> list[Byte]:
    """Encode a runtime value for storage in an object of type ``ctype``."""
    size = ct.size_of(ctype, profile)
    if isinstance(value, IndeterminateValue):
        data = list(value.data)
        if len(data) < size:
            data.extend(unknown_bytes(size - len(data)))
        return data[:size]
    if isinstance(value, IntValue):
        signed = ct.is_signed_type(ctype, profile) if ctype.is_integer else True
        return encode_int(value.value, size, signed)
    if isinstance(value, FloatValue):
        kind = ctype.kind if isinstance(ctype, ct.FloatType) else "double"
        return encode_float(value.value, kind, size)
    if isinstance(value, PointerValue):
        return encode_pointer(value, size)
    if isinstance(value, StructValue):
        data = list(value.data)
        if len(data) < size:
            data.extend(unknown_bytes(size - len(data)))
        return data[:size]
    raise TypeError(f"cannot store value of class {type(value).__name__}")


def decode_value(data: Sequence[Byte], ctype: ct.CType,
                 profile: ct.ImplementationProfile) -> CValue:
    """Decode raw object bytes at type ``ctype``.

    Indeterminate or non-reconstructible contents yield an
    :class:`IndeterminateValue`; the caller decides whether the *use* of that
    value is undefined (it is, except through character types, §6.2.6.1).
    """
    data = list(data)
    if ctype.is_integer:
        signed = ct.is_signed_type(ctype, profile)
        # A single byte of a stored pointer read through a character type is
        # an unspecified but usable value only for unsigned char; we model it
        # as indeterminate-but-copyable for all character reads.
        raw = decode_int(data, signed)
        if raw is None:
            return IndeterminateValue(type=ctype, data=tuple(data))
        if isinstance(ctype, ct.BoolType):
            raw = 1 if raw != 0 else 0
        return IntValue(value=raw, type=ctype.unqualified())
    if isinstance(ctype, ct.FloatType):
        value = decode_float(data)
        if value is None:
            return IndeterminateValue(type=ctype, data=tuple(data))
        return FloatValue(value=value, type=ctype.unqualified())
    if isinstance(ctype, ct.PointerType):
        pointer = decode_pointer(data, ctype.unqualified())
        if pointer is None:
            return IndeterminateValue(type=ctype, data=tuple(data))
        return pointer
    if isinstance(ctype, (ct.StructType, ct.UnionType, ct.ArrayType)):
        return StructValue(data=tuple(data), type=ctype.unqualified())
    return IndeterminateValue(type=ctype, data=tuple(data))


def is_fully_concrete(data: Sequence[Byte]) -> bool:
    return all(isinstance(b, ConcreteByte) for b in data)


def contains_unknown(data: Sequence[Byte]) -> bool:
    return any(isinstance(b, UnknownByte) for b in data)
