"""Recursive-descent parser for the supported C subset.

The parser consumes tokens from :mod:`repro.cfront.lexer` and produces the
AST of :mod:`repro.cfront.ast` with types from :mod:`repro.cfront.ctypes`.

Supported subset (roughly freestanding C99 minus VLAs, bit-fields,
designated initializers, and ``_Generic``):

* all basic types, pointers, arrays, structs, unions, enums, typedefs,
  function types (with prototypes and variadic ``...``),
* all expression forms and operators, ``sizeof``, casts, string literals,
* all statements: ``if``/``while``/``do``/``for`` (with declarations in the
  init clause), ``switch``/``case``/``default``, ``goto``/labels, blocks,
* function definitions and global declarations with initializers,
* ``_Static_assert``.

The parser deliberately accepts some constraint-violating programs (for
example arrays of size zero) so the *static undefinedness checker* in
:mod:`repro.sema` can flag them, mirroring the paper's observation that the
semantics must contain extra checks that correct programs never need.
"""

from __future__ import annotations

from typing import Optional

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.lexer import IntConstant, FloatConstant, Token, TokenKind, tokenize
from repro.cfront.preprocessor import preprocess
from repro.errors import CParseError, UnsupportedFeatureError

_TYPE_SPECIFIER_KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "_Bool", "struct", "union", "enum",
})
_STORAGE_KEYWORDS = frozenset({"typedef", "extern", "static", "auto", "register"})
_QUALIFIER_KEYWORDS = frozenset({"const", "volatile", "restrict"})
_FUNCTION_SPECIFIERS = frozenset({"inline", "_Noreturn"})

_ASSIGN_OPS = frozenset({"=", "*=", "/=", "%=", "+=", "-=", "<<=", ">>=", "&=", "^=", "|="})


class Parser:
    """Parses a token stream into a :class:`repro.cfront.ast.TranslationUnit`."""

    def __init__(self, tokens: list[Token], *, filename: str = "<input>",
                 profile: ct.ImplementationProfile = ct.LP64) -> None:
        self.tokens = tokens
        self.index = 0
        self.filename = filename
        self.profile = profile
        self.typedefs: dict[str, ct.CType] = {}
        self.struct_tags: dict[str, ct.StructType] = {}
        self.union_tags: dict[str, ct.UnionType] = {}
        self.enum_tags: dict[str, ct.EnumType] = {}
        self.enum_constants: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _at_eof(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _accept_punct(self, *names: str) -> Optional[Token]:
        if self._peek().is_punct(*names):
            return self._next()
        return None

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._next()
        return None

    def _expect_punct(self, name: str) -> Token:
        token = self._peek()
        if not token.is_punct(name):
            raise self._error(f"expected {name!r}, found {token.text!r}")
        return self._next()

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise self._error(f"expected keyword {name!r}, found {token.text!r}")
        return self._next()

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENTIFIER:
            raise self._error(f"expected identifier, found {token.text!r}")
        return self._next()

    def _error(self, message: str) -> CParseError:
        token = self._peek()
        return CParseError(message, line=token.line, column=token.column)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def parse_translation_unit(self) -> c_ast.TranslationUnit:
        unit = c_ast.TranslationUnit(line=1, filename=self.filename)
        while not self._at_eof():
            if self._accept_punct(";"):
                continue
            unit.declarations.extend(self._parse_external_declaration())
        return unit

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _parse_external_declaration(self) -> list[c_ast.Node]:
        if self._peek().is_keyword("_Static_assert"):
            return [self._parse_static_assert()]
        start = self._peek()
        base_type, storage = self._parse_declaration_specifiers()
        if self._accept_punct(";"):
            # struct/union/enum declaration with no declarators
            return []
        declarations: list[c_ast.Node] = []
        first = True
        while True:
            name, full_type, param_names = self._parse_declarator(base_type)
            if first and isinstance(full_type, ct.FunctionType) and self._peek().is_punct("{"):
                body = self._parse_compound_statement()
                declarations.append(c_ast.FunctionDef(
                    line=start.line, name=name or "", type=full_type,
                    parameter_names=param_names, body=body, storage=storage))
                return declarations
            first = False
            initializer = None
            if self._accept_punct("="):
                initializer = self._parse_initializer()
            if storage == "typedef":
                if name:
                    self.typedefs[name] = full_type
            else:
                declarations.append(c_ast.Declaration(
                    line=start.line, name=name or "", type=full_type,
                    initializer=initializer, storage=storage,
                    is_definition=storage != "extern" or initializer is not None))
            if self._accept_punct(","):
                continue
            self._expect_punct(";")
            return declarations

    def _parse_static_assert(self) -> c_ast.StaticAssert:
        token = self._expect_keyword("_Static_assert")
        self._expect_punct("(")
        condition = self._parse_conditional()
        message = ""
        if self._accept_punct(","):
            msg_token = self._next()
            if msg_token.kind is TokenKind.STRING:
                message = str(msg_token.value)
        self._expect_punct(")")
        self._expect_punct(";")
        return c_ast.StaticAssert(line=token.line, condition=condition, message=message)

    def _starts_declaration(self) -> bool:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD:
            return (token.text in _TYPE_SPECIFIER_KEYWORDS
                    or token.text in _STORAGE_KEYWORDS
                    or token.text in _QUALIFIER_KEYWORDS
                    or token.text in _FUNCTION_SPECIFIERS
                    or token.text == "_Static_assert")
        if token.kind is TokenKind.IDENTIFIER and token.text in self.typedefs:
            # A typedef name only starts a declaration when followed by
            # something that can continue a declarator.
            nxt = self._peek(1)
            return (nxt.kind is TokenKind.IDENTIFIER
                    or nxt.is_punct("*", "(", ";")
                    or (nxt.kind is TokenKind.KEYWORD and nxt.text in _QUALIFIER_KEYWORDS))
        return False

    def _parse_declaration_specifiers(self) -> tuple[ct.CType, Optional[str]]:
        storage: Optional[str] = None
        const = False
        volatile = False
        specifiers: list[str] = []
        base_type: Optional[ct.CType] = None
        while True:
            token = self._peek()
            if token.kind is TokenKind.KEYWORD and token.text in _STORAGE_KEYWORDS:
                self._next()
                if storage is not None and storage != token.text:
                    raise self._error("multiple storage class specifiers")
                storage = token.text
            elif token.kind is TokenKind.KEYWORD and token.text in _QUALIFIER_KEYWORDS:
                self._next()
                if token.text == "const":
                    const = True
                elif token.text == "volatile":
                    volatile = True
            elif token.kind is TokenKind.KEYWORD and token.text in _FUNCTION_SPECIFIERS:
                self._next()
            elif token.is_keyword("struct", "union"):
                base_type = self._parse_struct_or_union_specifier()
            elif token.is_keyword("enum"):
                base_type = self._parse_enum_specifier()
            elif token.kind is TokenKind.KEYWORD and token.text in _TYPE_SPECIFIER_KEYWORDS:
                self._next()
                specifiers.append(token.text)
            elif (token.kind is TokenKind.IDENTIFIER and token.text in self.typedefs
                  and base_type is None and not specifiers):
                self._next()
                base_type = self.typedefs[token.text]
            else:
                break
        if base_type is None:
            base_type = self._type_from_specifiers(specifiers)
        elif specifiers:
            raise self._error("both a named type and basic type specifiers given")
        if const or volatile:
            base_type = base_type.with_qualifiers(const=const, volatile=volatile)
        return base_type, storage

    def _type_from_specifiers(self, specifiers: list[str]) -> ct.CType:
        if not specifiers:
            # Implicit int (pre-C99 style); we accept it for the test corpus.
            return ct.INT
        spec = sorted(specifiers)
        counts = {s: specifiers.count(s) for s in set(specifiers)}
        if "void" in counts:
            return ct.VOID
        if "_Bool" in counts:
            return ct.BOOL
        if "float" in counts:
            return ct.FLOAT
        if "double" in counts:
            return ct.LDOUBLE if "long" in counts else ct.DOUBLE
        unsigned = "unsigned" in counts
        signed = "signed" in counts
        if "char" in counts:
            if unsigned:
                return ct.UCHAR
            if signed:
                return ct.SCHAR
            return ct.CHAR
        long_count = counts.get("long", 0)
        if long_count >= 2:
            return ct.ULLONG if unsigned else ct.LLONG
        if long_count == 1:
            return ct.ULONG if unsigned else ct.LONG
        if "short" in counts:
            return ct.USHORT if unsigned else ct.SHORT
        if "int" in counts or signed or unsigned:
            return ct.UINT if unsigned else ct.INT
        raise self._error(f"unsupported type specifier combination: {' '.join(spec)}")

    # -- struct/union/enum -------------------------------------------------
    def _parse_struct_or_union_specifier(self) -> ct.CType:
        keyword = self._next()
        is_union = keyword.text == "union"
        tag: Optional[str] = None
        if self._peek().kind is TokenKind.IDENTIFIER:
            tag = self._next().text
        registry = self.union_tags if is_union else self.struct_tags
        if tag is not None and tag in registry:
            record = registry[tag]
        else:
            record = ct.UnionType(tag=tag) if is_union else ct.StructType(tag=tag)
            if tag is not None:
                registry[tag] = record
        if self._accept_punct("{"):
            fields = self._parse_struct_declaration_list()
            record.complete(tuple(fields))
            self._expect_punct("}")
        return record

    def _parse_struct_declaration_list(self) -> list[ct.StructField]:
        fields: list[ct.StructField] = []
        while not self._peek().is_punct("}"):
            base_type, storage = self._parse_declaration_specifiers()
            if storage is not None:
                raise self._error("storage class specifier in struct member")
            if self._accept_punct(";"):
                continue  # anonymous struct/union member: flattened below
            while True:
                bit_width: Optional[int] = None
                if self._peek().is_punct(":"):
                    name = None
                    full_type = base_type
                else:
                    name, full_type, _ = self._parse_declarator(base_type)
                if self._accept_punct(":"):
                    width_expr = self._parse_conditional()
                    bit_width = self._fold_const(width_expr)
                if name is not None:
                    fields.append(ct.StructField(name=name, type=full_type, bit_width=bit_width))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
        return fields

    def _parse_enum_specifier(self) -> ct.CType:
        self._expect_keyword("enum")
        tag: Optional[str] = None
        if self._peek().kind is TokenKind.IDENTIFIER:
            tag = self._next().text
        if self._accept_punct("{"):
            enumerators: list[tuple[str, int]] = []
            next_value = 0
            while not self._peek().is_punct("}"):
                name_token = self._expect_identifier()
                value = next_value
                if self._accept_punct("="):
                    expr = self._parse_conditional()
                    folded = self._fold_const(expr)
                    if folded is None:
                        raise self._error("enumerator value is not a constant expression")
                    value = folded
                enumerators.append((name_token.text, value))
                self.enum_constants[name_token.text] = value
                next_value = value + 1
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            enum_type = ct.EnumType(tag=tag, enumerators=tuple(enumerators))
            if tag is not None:
                self.enum_tags[tag] = enum_type
            return enum_type
        if tag is not None and tag in self.enum_tags:
            return self.enum_tags[tag]
        enum_type = ct.EnumType(tag=tag)
        if tag is not None:
            self.enum_tags[tag] = enum_type
        return enum_type

    # -- declarators ---------------------------------------------------------
    def _parse_declarator(self, base_type: ct.CType,
                          abstract_ok: bool = True) -> tuple[Optional[str], ct.CType, list[str]]:
        """Parse a (possibly abstract) declarator.

        Returns ``(name, type, parameter_names)``.  ``parameter_names`` is
        only meaningful when the resulting type is a function type (it is the
        ordered list of parameter identifiers used by function definitions).
        """
        pointer_layers: list[tuple[bool, bool]] = []
        while self._peek().is_punct("*"):
            self._next()
            const = volatile = False
            while self._peek().kind is TokenKind.KEYWORD and self._peek().text in _QUALIFIER_KEYWORDS:
                qual = self._next().text
                const = const or qual == "const"
                volatile = volatile or qual == "volatile"
            pointer_layers.append((const, volatile))

        name: Optional[str] = None
        nested: Optional[tuple[Optional[str], list, list[str]]] = None
        if self._peek().is_punct("(") and self._is_nested_declarator():
            self._next()
            inner_name, inner_type_marker, inner_params = self._parse_declarator_shape()
            self._expect_punct(")")
            nested = (inner_name, inner_type_marker, inner_params)
            name = inner_name
        elif self._peek().kind is TokenKind.IDENTIFIER:
            name = self._next().text
        elif not abstract_ok and not self._peek().is_punct("(", "["):
            raise self._error("expected declarator")

        suffixes: list[tuple] = []
        param_names: list[str] = []
        while True:
            if self._accept_punct("["):
                if self._accept_punct("]"):
                    suffixes.append(("array", None))
                else:
                    size_expr = self._parse_conditional()
                    self._expect_punct("]")
                    suffixes.append(("array", size_expr))
            elif self._peek().is_punct("(") and not self._is_call_like_context():
                self._next()
                params, variadic, names, has_prototype = self._parse_parameter_list()
                self._expect_punct(")")
                suffixes.append(("function", params, variadic, has_prototype))
                if not param_names:
                    param_names = names
            else:
                break

        result = base_type
        for const, volatile in pointer_layers:
            result = ct.PointerType(pointee=result, const=const, volatile=volatile)
        for suffix in reversed(suffixes):
            if suffix[0] == "array":
                size = None
                if suffix[1] is not None:
                    size = self._fold_const(suffix[1])
                    if size is None:
                        raise UnsupportedFeatureError(
                            "variable length arrays are not supported")
                result = ct.ArrayType(element=result, length=size)
            else:
                _, params, variadic, has_prototype = suffix
                result = ct.FunctionType(
                    return_type=result, parameters=tuple(params),
                    variadic=variadic, has_prototype=has_prototype)
        if nested is not None:
            name, result, inner_param_names = self._apply_nested(nested, result)
            if inner_param_names:
                param_names = inner_param_names
        return name, result, param_names

    def _parse_declarator_shape(self) -> tuple[Optional[str], list, list[str]]:
        """Parse the inside of a parenthesised declarator without a base type.

        Returns the name, a list of "type builders" (recorded operations to
        apply around the base type later), and function parameter names.
        """
        pointer_layers: list[tuple[bool, bool]] = []
        while self._peek().is_punct("*"):
            self._next()
            const = volatile = False
            while self._peek().kind is TokenKind.KEYWORD and self._peek().text in _QUALIFIER_KEYWORDS:
                qual = self._next().text
                const = const or qual == "const"
                volatile = volatile or qual == "volatile"
            pointer_layers.append((const, volatile))
        name: Optional[str] = None
        nested: Optional[tuple[Optional[str], list, list[str]]] = None
        if self._peek().is_punct("(") and self._is_nested_declarator():
            self._next()
            nested = self._parse_declarator_shape()
            self._expect_punct(")")
            name = nested[0]
        elif self._peek().kind is TokenKind.IDENTIFIER:
            name = self._next().text
        suffixes: list[tuple] = []
        param_names: list[str] = []
        while True:
            if self._accept_punct("["):
                if self._accept_punct("]"):
                    suffixes.append(("array", None))
                else:
                    size_expr = self._parse_conditional()
                    self._expect_punct("]")
                    suffixes.append(("array", size_expr))
            elif self._peek().is_punct("("):
                self._next()
                params, variadic, names, has_prototype = self._parse_parameter_list()
                self._expect_punct(")")
                suffixes.append(("function", params, variadic, has_prototype))
                if not param_names:
                    param_names = names
            else:
                break
        builders: list = [("pointers", pointer_layers), ("suffixes", suffixes), ("nested", nested)]
        return name, builders, param_names

    def _apply_nested(self, nested: tuple[Optional[str], list, list[str]],
                      base: ct.CType) -> tuple[Optional[str], ct.CType, list[str]]:
        name, builders, param_names = nested
        pointer_layers = builders[0][1]
        suffixes = builders[1][1]
        inner = builders[2][1]
        result = base
        for const, volatile in pointer_layers:
            result = ct.PointerType(pointee=result, const=const, volatile=volatile)
        for suffix in reversed(suffixes):
            if suffix[0] == "array":
                size = None
                if suffix[1] is not None:
                    size = self._fold_const(suffix[1])
                    if size is None:
                        raise UnsupportedFeatureError("variable length arrays are not supported")
                result = ct.ArrayType(element=result, length=size)
            else:
                _, params, variadic, has_prototype = suffix
                result = ct.FunctionType(
                    return_type=result, parameters=tuple(params),
                    variadic=variadic, has_prototype=has_prototype)
        if inner is not None:
            return self._apply_nested(inner, result)
        return name, result, param_names

    def _is_nested_declarator(self) -> bool:
        """Disambiguate ``(declarator)`` from a parameter list after '('."""
        nxt = self._peek(1)
        if nxt.is_punct("*", "("):
            return True
        if nxt.kind is TokenKind.IDENTIFIER and nxt.text not in self.typedefs:
            return True
        return False

    def _is_call_like_context(self) -> bool:
        """Declarators never treat '(' as a call; always False (placeholder)."""
        return False

    def _parse_parameter_list(self) -> tuple[list[ct.CType], bool, list[str], bool]:
        params: list[ct.CType] = []
        names: list[str] = []
        variadic = False
        has_prototype = True
        if self._peek().is_punct(")"):
            # Empty parens: an old-style declaration with no prototype.
            return params, variadic, names, False
        if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
            self._next()
            return params, variadic, names, True
        while True:
            if self._accept_punct("..."):
                variadic = True
                break
            base_type, storage = self._parse_declaration_specifiers()
            name, full_type, _ = self._parse_declarator(base_type)
            # Parameters of array/function type adjust to pointers (§6.7.6.3).
            full_type = ct.decay(full_type)
            params.append(full_type)
            names.append(name or "")
            if not self._accept_punct(","):
                break
        return params, variadic, names, has_prototype

    def _parse_type_name(self) -> ct.CType:
        base_type, storage = self._parse_declaration_specifiers()
        if storage is not None:
            raise self._error("storage class in type name")
        name, full_type, _ = self._parse_declarator(base_type, abstract_ok=True)
        if name is not None:
            raise self._error("type name must not declare an identifier")
        return full_type

    def _parse_initializer(self) -> c_ast.Expression:
        if self._peek().is_punct("{"):
            token = self._next()
            items: list[c_ast.Expression] = []
            while not self._peek().is_punct("}"):
                items.append(self._parse_initializer())
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return c_ast.InitList(line=token.line, items=items)
        return self._parse_assignment()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_compound_statement(self) -> c_ast.Compound:
        start = self._expect_punct("{")
        block = c_ast.Compound(line=start.line)
        while not self._peek().is_punct("}"):
            if self._at_eof():
                raise self._error("unterminated block")
            block.items.extend(self._parse_block_item())
        self._expect_punct("}")
        return block

    def _parse_block_item(self) -> list[c_ast.Node]:
        if self._peek().is_keyword("_Static_assert"):
            return [self._parse_static_assert()]
        if self._starts_declaration():
            return self._parse_local_declaration()
        return [self._parse_statement()]

    def _parse_local_declaration(self) -> list[c_ast.Node]:
        start = self._peek()
        base_type, storage = self._parse_declaration_specifiers()
        declarations: list[c_ast.Node] = []
        if self._accept_punct(";"):
            return declarations
        while True:
            name, full_type, _ = self._parse_declarator(base_type)
            initializer = None
            if self._accept_punct("="):
                initializer = self._parse_initializer()
            if storage == "typedef":
                if name:
                    self.typedefs[name] = full_type
            else:
                declarations.append(c_ast.Declaration(
                    line=start.line, name=name or "", type=full_type,
                    initializer=initializer, storage=storage))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return declarations

    def _parse_statement(self) -> c_ast.Statement:
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_compound_statement()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return c_ast.Return(line=token.line, value=value)
        if token.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return c_ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return c_ast.Continue(line=token.line)
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("case"):
            self._next()
            expr = self._parse_conditional()
            self._expect_punct(":")
            stmt = self._parse_statement()
            return c_ast.Case(line=token.line, expression=expr, statement=stmt)
        if token.is_keyword("default"):
            self._next()
            self._expect_punct(":")
            stmt = self._parse_statement()
            return c_ast.Default(line=token.line, statement=stmt)
        if token.is_keyword("goto"):
            self._next()
            label = self._expect_identifier().text
            self._expect_punct(";")
            return c_ast.Goto(line=token.line, label=label)
        if token.is_punct(";"):
            self._next()
            return c_ast.ExpressionStmt(line=token.line, expression=None)
        if (token.kind is TokenKind.IDENTIFIER and self._peek(1).is_punct(":")):
            self._next()
            self._next()
            stmt = self._parse_statement()
            return c_ast.Label(line=token.line, name=token.text, statement=stmt)
        expr = self._parse_expression()
        self._expect_punct(";")
        return c_ast.ExpressionStmt(line=token.line, expression=expr)

    def _parse_if(self) -> c_ast.If:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self._parse_statement()
        return c_ast.If(line=token.line, condition=condition, then=then, otherwise=otherwise)

    def _parse_while(self) -> c_ast.While:
        token = self._expect_keyword("while")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return c_ast.While(line=token.line, condition=condition, body=body)

    def _parse_do_while(self) -> c_ast.DoWhile:
        token = self._expect_keyword("do")
        body = self._parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return c_ast.DoWhile(line=token.line, body=body, condition=condition)

    def _parse_for(self) -> c_ast.For:
        token = self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[object] = None
        if not self._peek().is_punct(";"):
            if self._starts_declaration():
                declarations = self._parse_local_declaration()
                init = declarations
            else:
                init = self._parse_expression()
                self._expect_punct(";")
        else:
            self._next()
        condition = None
        if not self._peek().is_punct(";"):
            condition = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._peek().is_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return c_ast.For(line=token.line, init=init, condition=condition, step=step, body=body)

    def _parse_switch(self) -> c_ast.Switch:
        token = self._expect_keyword("switch")
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return c_ast.Switch(line=token.line, expression=expression, body=body)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expression(self) -> c_ast.Expression:
        expr = self._parse_assignment()
        while self._peek().is_punct(","):
            token = self._next()
            rhs = self._parse_assignment()
            expr = c_ast.Comma(line=token.line, left=expr, right=rhs)
        return expr

    def _parse_assignment(self) -> c_ast.Expression:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.PUNCTUATOR and token.text in _ASSIGN_OPS:
            self._next()
            value = self._parse_assignment()
            return c_ast.Assignment(line=token.line, op=token.text, target=left, value=value)
        return left

    def _parse_conditional(self) -> c_ast.Expression:
        condition = self._parse_logical_or()
        if self._peek().is_punct("?"):
            token = self._next()
            then = self._parse_expression()
            self._expect_punct(":")
            otherwise = self._parse_conditional()
            return c_ast.Conditional(line=token.line, condition=condition,
                                     then=then, otherwise=otherwise)
        return condition

    def _binary_level(self, operators: tuple[str, ...], next_level) -> c_ast.Expression:
        expr = next_level()
        while self._peek().kind is TokenKind.PUNCTUATOR and self._peek().text in operators:
            token = self._next()
            rhs = next_level()
            expr = c_ast.BinaryOp(line=token.line, op=token.text, left=expr, right=rhs)
        return expr

    def _parse_logical_or(self) -> c_ast.Expression:
        return self._binary_level(("||",), self._parse_logical_and)

    def _parse_logical_and(self) -> c_ast.Expression:
        return self._binary_level(("&&",), self._parse_bitwise_or)

    def _parse_bitwise_or(self) -> c_ast.Expression:
        return self._binary_level(("|",), self._parse_bitwise_xor)

    def _parse_bitwise_xor(self) -> c_ast.Expression:
        return self._binary_level(("^",), self._parse_bitwise_and)

    def _parse_bitwise_and(self) -> c_ast.Expression:
        return self._binary_level(("&",), self._parse_equality)

    def _parse_equality(self) -> c_ast.Expression:
        return self._binary_level(("==", "!="), self._parse_relational)

    def _parse_relational(self) -> c_ast.Expression:
        return self._binary_level(("<", ">", "<=", ">="), self._parse_shift)

    def _parse_shift(self) -> c_ast.Expression:
        return self._binary_level(("<<", ">>"), self._parse_additive)

    def _parse_additive(self) -> c_ast.Expression:
        return self._binary_level(("+", "-"), self._parse_multiplicative)

    def _parse_multiplicative(self) -> c_ast.Expression:
        return self._binary_level(("*", "/", "%"), self._parse_cast)

    def _starts_type_name(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind is TokenKind.KEYWORD:
            return token.text in _TYPE_SPECIFIER_KEYWORDS or token.text in _QUALIFIER_KEYWORDS
        return token.kind is TokenKind.IDENTIFIER and token.text in self.typedefs

    def _parse_cast(self) -> c_ast.Expression:
        if self._peek().is_punct("(") and self._starts_type_name(1):
            token = self._next()
            target_type = self._parse_type_name()
            self._expect_punct(")")
            if self._peek().is_punct("{"):
                # Compound literal: treat as an initializer-list expression
                # cast to the target type.
                init = self._parse_initializer()
                return c_ast.Cast(line=token.line, target_type=target_type, operand=init)
            operand = self._parse_cast()
            return c_ast.Cast(line=token.line, target_type=target_type, operand=operand)
        return self._parse_unary()

    def _parse_unary(self) -> c_ast.Expression:
        token = self._peek()
        if token.is_punct("++", "--"):
            self._next()
            operand = self._parse_unary()
            op = "++pre" if token.text == "++" else "--pre"
            return c_ast.UnaryOp(line=token.line, op=op, operand=operand)
        if token.is_punct("&", "*", "+", "-", "~", "!"):
            self._next()
            operand = self._parse_cast()
            return c_ast.UnaryOp(line=token.line, op=token.text, operand=operand)
        if token.is_keyword("sizeof"):
            self._next()
            if self._peek().is_punct("(") and self._starts_type_name(1):
                self._next()
                type_name = self._parse_type_name()
                self._expect_punct(")")
                return c_ast.SizeofType(line=token.line, type_name=type_name)
            operand = self._parse_unary()
            return c_ast.UnaryOp(line=token.line, op="sizeof", operand=operand)
        if token.is_keyword("_Alignof"):
            self._next()
            self._expect_punct("(")
            type_name = self._parse_type_name()
            self._expect_punct(")")
            node = c_ast.SizeofType(line=token.line, type_name=type_name)
            node.type_name = type_name
            return node
        return self._parse_postfix()

    def _parse_postfix(self) -> c_ast.Expression:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._next()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = c_ast.ArraySubscript(line=token.line, array=expr, index=index)
            elif token.is_punct("("):
                self._next()
                arguments: list[c_ast.Expression] = []
                if not self._peek().is_punct(")"):
                    arguments.append(self._parse_assignment())
                    while self._accept_punct(","):
                        arguments.append(self._parse_assignment())
                self._expect_punct(")")
                expr = c_ast.Call(line=token.line, function=expr, arguments=arguments)
            elif token.is_punct("."):
                self._next()
                member = self._expect_identifier().text
                expr = c_ast.Member(line=token.line, object=expr, member=member, arrow=False)
            elif token.is_punct("->"):
                self._next()
                member = self._expect_identifier().text
                expr = c_ast.Member(line=token.line, object=expr, member=member, arrow=True)
            elif token.is_punct("++"):
                self._next()
                expr = c_ast.UnaryOp(line=token.line, op="++post", operand=expr)
            elif token.is_punct("--"):
                self._next()
                expr = c_ast.UnaryOp(line=token.line, op="--post", operand=expr)
            else:
                return expr

    def _parse_primary(self) -> c_ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.INT_CONST:
            self._next()
            constant = token.value
            assert isinstance(constant, IntConstant)
            return c_ast.IntegerLiteral(
                line=token.line, value=constant.value,
                type=self._integer_constant_type(constant))
        if token.kind is TokenKind.FLOAT_CONST:
            self._next()
            constant = token.value
            assert isinstance(constant, FloatConstant)
            ftype = ct.FLOAT if constant.is_float else (
                ct.LDOUBLE if constant.is_long_double else ct.DOUBLE)
            return c_ast.FloatLiteral(line=token.line, value=constant.value, type=ftype)
        if token.kind is TokenKind.CHAR_CONST:
            self._next()
            return c_ast.CharLiteral(line=token.line, value=int(token.value))
        if token.kind is TokenKind.STRING:
            self._next()
            text = str(token.value)
            # Adjacent string literals concatenate (§6.4.5).
            while self._peek().kind is TokenKind.STRING:
                text += str(self._next().value)
            return c_ast.StringLiteral(line=token.line, value=text)
        if token.kind is TokenKind.IDENTIFIER:
            self._next()
            if token.text in self.enum_constants:
                return c_ast.IntegerLiteral(
                    line=token.line, value=self.enum_constants[token.text], type=ct.INT)
            return c_ast.Identifier(line=token.line, name=token.text)
        if token.is_punct("("):
            self._next()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _integer_constant_type(self, constant: IntConstant) -> ct.CType:
        """Pick the type of an integer constant (§6.4.4.1)."""
        candidates: list[ct.CType]
        if constant.unsigned:
            candidates = [ct.UINT, ct.ULONG, ct.ULLONG]
        elif constant.base != 10:
            candidates = [ct.INT, ct.UINT, ct.LONG, ct.ULONG, ct.LLONG, ct.ULLONG]
        else:
            candidates = [ct.INT, ct.LONG, ct.LLONG]
        if constant.long_long:
            candidates = [c for c in candidates if isinstance(c, ct.IntType) and c.rank >= 5]
        elif constant.long:
            candidates = [c for c in candidates if isinstance(c, ct.IntType) and c.rank >= 4]
        for candidate in candidates:
            if ct.fits_in(constant.value, candidate, self.profile):
                return candidate
        return candidates[-1] if candidates else ct.ULLONG

    # ------------------------------------------------------------------
    # Constant folding (for array bounds, enum values, case labels)
    # ------------------------------------------------------------------
    def _fold_const(self, expr: c_ast.Expression) -> Optional[int]:
        return fold_constant(expr, self.profile)


def fold_constant(expr: c_ast.Expression,
                  profile: ct.ImplementationProfile = ct.LP64) -> Optional[int]:
    """Best-effort integer constant folding used at parse/static-check time."""
    if isinstance(expr, c_ast.IntegerLiteral):
        return expr.value
    if isinstance(expr, c_ast.CharLiteral):
        return expr.value
    if isinstance(expr, c_ast.SizeofType) and expr.type_name is not None:
        try:
            return ct.size_of(expr.type_name, profile)
        except ct.LayoutError:
            return None
    if isinstance(expr, c_ast.UnaryOp) and expr.operand is not None:
        inner = fold_constant(expr.operand, profile)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "+":
            return inner
        if expr.op == "~":
            return ~inner
        if expr.op == "!":
            return 0 if inner else 1
        return None
    if isinstance(expr, c_ast.Cast) and expr.operand is not None:
        inner = fold_constant(expr.operand, profile)
        if inner is None or expr.target_type is None:
            return None
        if expr.target_type.is_integer:
            if ct.is_signed_type(expr.target_type, profile):
                bits = ct.integer_bits(expr.target_type, profile)
                inner &= (1 << bits) - 1
                if inner >= (1 << (bits - 1)):
                    inner -= 1 << bits
                return inner
            return ct.wrap_unsigned(inner, expr.target_type, profile)
        return None
    if isinstance(expr, c_ast.Conditional):
        cond = fold_constant(expr.condition, profile) if expr.condition else None
        if cond is None:
            return None
        branch = expr.then if cond else expr.otherwise
        return fold_constant(branch, profile) if branch is not None else None
    if isinstance(expr, c_ast.BinaryOp) and expr.left is not None and expr.right is not None:
        left = fold_constant(expr.left, profile)
        right = fold_constant(expr.right, profile)
        if left is None or right is None:
            return None
        op = expr.op
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    return None
                return int(left / right) if (left < 0) != (right < 0) else left // right
            if op == "%":
                if right == 0:
                    return None
                quotient = int(left / right) if (left < 0) != (right < 0) else left // right
                return left - quotient * right
            if op == "<<":
                return left << right if right >= 0 else None
            if op == ">>":
                return left >> right if right >= 0 else None
            if op == "&":
                return left & right
            if op == "|":
                return left | right
            if op == "^":
                return left ^ right
            if op == "==":
                return int(left == right)
            if op == "!=":
                return int(left != right)
            if op == "<":
                return int(left < right)
            if op == ">":
                return int(left > right)
            if op == "<=":
                return int(left <= right)
            if op == ">=":
                return int(left >= right)
            if op == "&&":
                return int(bool(left) and bool(right))
            if op == "||":
                return int(bool(left) or bool(right))
        except (ValueError, OverflowError):
            return None
    return None


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------

def parse(source: str, *, filename: str = "<input>",
          profile: ct.ImplementationProfile = ct.LP64,
          extra_headers: Optional[dict[str, str]] = None,
          run_preprocessor: bool = True) -> c_ast.TranslationUnit:
    """Preprocess, tokenize and parse C source text."""
    text = preprocess(source, extra_headers=extra_headers, filename=filename) \
        if run_preprocessor else source
    tokens = tokenize(text, filename)
    parser = Parser(tokens, filename=filename, profile=profile)
    unit = parser.parse_translation_unit()
    return unit


def parse_file(path: str, *, profile: ct.ImplementationProfile = ct.LP64) -> c_ast.TranslationUnit:
    """Parse a C file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), filename=path, profile=profile)
