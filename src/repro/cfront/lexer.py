"""A lexer for the C99/C11 subset supported by the reproduction.

The lexer works on already-preprocessed text (see
:mod:`repro.cfront.preprocessor`) and produces a flat list of
:class:`Token` objects carrying source positions, which every later stage
uses for error reports (kcc reports include the function and line of the
undefined behavior).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import CParseError


class TokenKind(enum.Enum):
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INT_CONST = "integer-constant"
    FLOAT_CONST = "floating-constant"
    CHAR_CONST = "character-constant"
    STRING = "string-literal"
    PUNCTUATOR = "punctuator"
    EOF = "eof"


KEYWORDS = frozenset({
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "restrict", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
    "unsigned", "void", "volatile", "while", "_Bool", "_Alignof",
    "_Static_assert", "_Noreturn",
})

# Longest-match-first list of punctuators.
PUNCTUATORS = (
    "...", "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "*=", "/=", "%=", "+=", "-=", "&=", "^=", "|=",
    "[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
    "/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",", "#",
)

SIMPLE_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "a": "\a", "b": "\b",
    "f": "\f", "v": "\v", "\\": "\\", "'": "'", '"': '"', "?": "?",
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: object = None  # decoded value for constants / string literals

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *names: str) -> bool:
        return self.kind is TokenKind.PUNCTUATOR and self.text in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, line={self.line})"


@dataclass(frozen=True)
class IntConstant:
    """Decoded integer constant: value plus suffix information."""

    value: int
    unsigned: bool = False
    long: bool = False
    long_long: bool = False
    base: int = 10


@dataclass(frozen=True)
class FloatConstant:
    value: float
    is_float: bool = False       # 'f' suffix
    is_long_double: bool = False


class Lexer:
    """Tokenizes preprocessed C source text."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low level helpers -------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _error(self, message: str) -> CParseError:
        return CParseError(message, line=self.line, column=self.column)

    # -- whitespace and comments -------------------------------------------
    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            elif ch == "#":
                # Residual line markers from the preprocessor: skip the line.
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    # -- token producers -----------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", self.line, self.column)
                return
            yield self._next_token()

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_identifier(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCTUATOR, punct, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (self._peek(1).isdigit() or
                                         (self._peek(1) in "+-" and self._peek(2).isdigit())):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        digits = self.source[start:self.pos]
        suffix_start = self.pos
        while self._peek() and self._peek() in "uUlLfF":
            self._advance()
        suffix = self.source[suffix_start:self.pos].lower()
        if is_float or "f" in suffix and not digits.lower().startswith("0x"):
            value = FloatConstant(
                value=float(digits),
                is_float="f" in suffix,
                is_long_double="l" in suffix and "f" not in suffix,
            )
            return Token(TokenKind.FLOAT_CONST, digits + suffix, line, column, value)
        base = 10
        text = digits
        if text.lower().startswith("0x"):
            base = 16
        elif text.startswith("0") and len(text) > 1:
            base = 8
        try:
            int_value = int(text, base)
        except ValueError as exc:
            raise CParseError(f"malformed integer constant {text!r}", line, column) from exc
        value = IntConstant(
            value=int_value,
            unsigned="u" in suffix,
            long=suffix.count("l") == 1,
            long_long=suffix.count("l") >= 2,
            base=base,
        )
        return Token(TokenKind.INT_CONST, digits + suffix, line, column, value)

    def _lex_escape(self) -> str:
        assert self._peek() == "\\"
        self._advance()
        ch = self._peek()
        if ch in SIMPLE_ESCAPES:
            self._advance()
            return SIMPLE_ESCAPES[ch]
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if not digits:
                raise self._error("\\x used with no following hex digits")
            return chr(int(digits, 16) & 0xFF)
        if ch.isdigit():
            digits = ""
            while self._peek().isdigit() and len(digits) < 3:
                digits += self._advance()
            return chr(int(digits, 8) & 0xFF)
        raise self._error(f"unknown escape sequence \\{ch}")

    def _lex_string(self, line: int, column: int) -> Token:
        assert self._peek() == '"'
        self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == '"':
                self._advance()
                break
            if ch == "\n":
                raise self._error("newline in string literal")
            if ch == "\\":
                chars.append(self._lex_escape())
            else:
                chars.append(self._advance())
        value = "".join(chars)
        return Token(TokenKind.STRING, f'"{value}"', line, column, value)

    def _lex_char(self, line: int, column: int) -> Token:
        assert self._peek() == "'"
        self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated character constant")
            ch = self._peek()
            if ch == "'":
                self._advance()
                break
            if ch == "\\":
                chars.append(self._lex_escape())
            else:
                chars.append(self._advance())
        if not chars:
            raise self._error("empty character constant")
        # Multi-character constants have implementation-defined value; we take
        # the last character, which matches common implementations.
        value = ord(chars[-1])
        return Token(TokenKind.CHAR_CONST, f"'{''.join(chars)}'", line, column, value)


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Tokenize preprocessed source into a list ending with an EOF token."""
    return list(Lexer(source, filename).tokens())
