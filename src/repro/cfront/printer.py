"""AST pretty-printer: render a parsed translation unit back to C source.

The fuzzing subsystem (:mod:`repro.fuzz`) leans on this module twice over:
the delta-debugging reducer edits ASTs and re-renders them between shrink
steps, and the generator's output is pinned by a *round-trip guarantee* —
for every generated program, ``parse(to_c_source(parse(src)))`` reproduces
the same AST (up to source positions; see :func:`ast_equivalent`).  The
guarantee is held by ``tests/cfront/test_printer.py``.

Two printing caveats, both consequences of what the parser itself erases:

* ``(parenthesized)`` expressions do not exist in the AST — the printer
  re-derives parentheses from operator precedence, so the rendered text can
  differ from the original spelling while parsing to the identical tree;
* typedef names are resolved away during parsing, so rendered declarations
  spell the underlying type; struct/union/enum *definitions* are re-emitted
  inline at the first declaration that mentions the tag.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct


class PrinterError(ValueError):
    """Raised for AST shapes the printer cannot render faithfully."""


#: C operator precedence, highest binds tightest.  Mirrors the parser's
#: ``_binary_level`` tower so the printer inserts exactly the parentheses the
#: parser needs to rebuild the same tree.
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_PREC_COMMA = -1
_PREC_ASSIGN = 0
_PREC_CONDITIONAL = 0.5
_PREC_UNARY = 11
_PREC_POSTFIX = 12

_INT_SUFFIXES = {
    "unsigned int": "u", "long": "L", "unsigned long": "UL",
    "long long": "LL", "unsigned long long": "ULL",
}

_CHAR_ESCAPES = {ord("\n"): "\\n", ord("\t"): "\\t", ord("\r"): "\\r",
                 ord("\0"): "\\0", ord("\\"): "\\\\", ord("'"): "\\'",
                 ord("\a"): "\\a", ord("\b"): "\\b", ord("\f"): "\\f",
                 ord("\v"): "\\v"}


def _escape_string(text: str) -> str:
    out = []
    for ch in text:
        code = ord(ch)
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif code in _CHAR_ESCAPES and ch not in ("'",):
            out.append(_CHAR_ESCAPES[code])
        elif 32 <= code < 127:
            out.append(ch)
        else:
            # Three-digit octal escapes terminate unambiguously, unlike \x.
            out.append(f"\\{code & 0o777:03o}")
    return '"' + "".join(out) + '"'


def _escape_char(value: int) -> str:
    code = value & 0xFF if value >= 0 else value
    if code in _CHAR_ESCAPES:
        return f"'{_CHAR_ESCAPES[code]}'"
    if 32 <= code < 127 and code != ord('"'):
        return f"'{chr(code)}'"
    return f"'\\{code & 0o777:03o}'"


class CPrinter:
    """Stateful printer: one instance renders one translation unit."""

    def __init__(self, *, indent: str = "    ") -> None:
        self.indent = indent
        self._defined_tags: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Types and declarators
    # ------------------------------------------------------------------
    def type_specifier(self, ctype: ct.CType, *, define_records: bool = False) -> str:
        """The declaration-specifier part of ``ctype`` (no declarator)."""
        quals = ctype.qualifier_str()
        prefix = f"{quals} " if quals else ""
        if isinstance(ctype, ct.VoidType):
            return prefix + "void"
        if isinstance(ctype, ct.BoolType):
            return prefix + "_Bool"
        if isinstance(ctype, (ct.IntType, ct.FloatType)):
            return prefix + ctype.kind
        if isinstance(ctype, (ct.StructType, ct.UnionType)):
            keyword = "struct" if isinstance(ctype, ct.StructType) else "union"
            if ctype.tag is None:
                # An anonymous record has no name to refer back to, so every
                # mention must carry the full definition inline.
                if ctype.fields is None:
                    raise PrinterError(
                        "cannot render an anonymous record type without its fields")
                fields = " ".join(
                    self.declaration(field.type, field.name) + ";"
                    for field in ctype.fields)
                return f"{prefix}{keyword} {{ {fields} }}"
            key = (keyword, ctype.tag)
            if define_records and ctype.fields is not None and key not in self._defined_tags:
                self._defined_tags.add(key)
                fields = " ".join(
                    self.declaration(field.type, field.name) + ";"
                    for field in ctype.fields)
                return f"{prefix}{keyword} {ctype.tag} {{ {fields} }}"
            return f"{prefix}{keyword} {ctype.tag}"
        if isinstance(ctype, ct.EnumType):
            if ctype.tag is None:
                if ctype.enumerators is None:
                    raise PrinterError(
                        "cannot render an anonymous enum type without its enumerators")
                body = ", ".join(f"{name} = {value}"
                                 for name, value in ctype.enumerators)
                return f"{prefix}enum {{ {body} }}"
            key = ("enum", ctype.tag)
            if define_records and ctype.enumerators is not None \
                    and key not in self._defined_tags:
                self._defined_tags.add(key)
                body = ", ".join(f"{name} = {value}"
                                 for name, value in ctype.enumerators)
                return f"{prefix}enum {ctype.tag} {{ {body} }}"
            return f"{prefix}enum {ctype.tag}"
        raise PrinterError(f"no specifier form for {type(ctype).__name__}")

    def declaration(self, ctype: ct.CType, name: str = "", *,
                    define_records: bool = False,
                    parameter_names: Optional[list[str]] = None) -> str:
        """Render ``ctype name`` as a C declaration (declarator algorithm)."""
        declarator = name
        current: ct.CType = ctype
        while True:
            if isinstance(current, ct.PointerType):
                quals = current.qualifier_str()
                declarator = "*" + (quals + " " if quals else "") + declarator
                # Qualifiers live on the pointer layer itself; the pointee is
                # rendered separately below.
                current = current.pointee
                if isinstance(current, (ct.ArrayType, ct.FunctionType)):
                    declarator = f"({declarator})"
            elif isinstance(current, ct.ArrayType):
                length = "" if current.length is None else str(current.length)
                declarator = f"{declarator}[{length}]"
                current = current.element
            elif isinstance(current, ct.FunctionType):
                declarator = f"{declarator}({self._parameters(current, parameter_names)})"
                current = current.return_type
                parameter_names = None
            else:
                specifier = self.type_specifier(current, define_records=define_records)
                return f"{specifier} {declarator}".strip() if declarator else specifier

    def _parameters(self, ftype: ct.FunctionType,
                    names: Optional[list[str]]) -> str:
        if not ftype.parameters:
            if ftype.variadic:
                raise PrinterError("variadic function with no named parameters")
            return "void" if ftype.has_prototype else ""
        rendered = []
        for index, param in enumerate(ftype.parameters):
            name = names[index] if names is not None and index < len(names) else ""
            rendered.append(self.declaration(param, name))
        if ftype.variadic:
            rendered.append("...")
        return ", ".join(rendered)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expression(self, node: c_ast.Expression) -> str:
        text, _prec = self._expr(node)
        return text

    def _paren(self, node: c_ast.Expression, parent_prec: float, *,
               right_operand: bool = False) -> str:
        text, prec = self._expr(node)
        # Binary operators associate left; a right operand at the same
        # precedence level needs parentheses to rebuild the same tree.
        if prec < parent_prec or (right_operand and prec == parent_prec):
            return f"({text})"
        return text

    def _expr(self, node: c_ast.Expression) -> tuple[str, float]:
        if isinstance(node, c_ast.IntegerLiteral):
            suffix = ""
            if isinstance(node.type, ct.IntType):
                suffix = _INT_SUFFIXES.get(node.type.kind, "")
            if node.value < 0:
                # Negative "literals" only appear in constructed ASTs; render
                # through unary minus so the parser rebuilds an equal value.
                return f"-{abs(node.value)}{suffix}", _PREC_UNARY
            return f"{node.value}{suffix}", _PREC_POSTFIX
        if isinstance(node, c_ast.FloatLiteral):
            text = repr(float(node.value))
            if "." not in text and "e" not in text and "inf" not in text:
                text += ".0"
            if isinstance(node.type, ct.FloatType):
                if node.type.kind == "float":
                    text += "f"
                elif node.type.kind == "long double":
                    text += "L"
            return text, _PREC_POSTFIX
        if isinstance(node, c_ast.CharLiteral):
            return _escape_char(node.value), _PREC_POSTFIX
        if isinstance(node, c_ast.StringLiteral):
            return _escape_string(node.value), _PREC_POSTFIX
        if isinstance(node, c_ast.Identifier):
            return node.name, _PREC_POSTFIX
        if isinstance(node, c_ast.UnaryOp):
            assert node.operand is not None
            if node.op in ("++post", "--post"):
                inner = self._paren(node.operand, _PREC_POSTFIX)
                return f"{inner}{node.op[:2]}", _PREC_POSTFIX
            if node.op in ("++pre", "--pre"):
                inner = self._paren(node.operand, _PREC_UNARY)
                return f"{node.op[:2]}{inner}", _PREC_UNARY
            if node.op == "sizeof":
                inner = self._paren(node.operand, _PREC_UNARY)
                return f"sizeof {inner}", _PREC_UNARY
            inner = self._paren(node.operand, _PREC_UNARY)
            spelled = f"{node.op}{inner}"
            if node.op in ("+", "-") and inner and inner[0] == node.op:
                spelled = f"{node.op} {inner}"  # avoid token-pasting `--x`
            return spelled, _PREC_UNARY
        if isinstance(node, c_ast.SizeofType):
            assert node.type_name is not None
            return f"sizeof({self.declaration(node.type_name)})", _PREC_UNARY
        if isinstance(node, c_ast.BinaryOp):
            assert node.left is not None and node.right is not None
            prec = _BINARY_PRECEDENCE[node.op]
            left = self._paren(node.left, prec)
            right = self._paren(node.right, prec, right_operand=True)
            return f"{left} {node.op} {right}", prec
        if isinstance(node, c_ast.Assignment):
            assert node.target is not None and node.value is not None
            target = self._paren(node.target, _PREC_UNARY)
            # Assignment associates right: an assignment RHS needs no parens.
            value, value_prec = self._expr(node.value)
            if value_prec < _PREC_ASSIGN:
                value = f"({value})"
            return f"{target} {node.op} {value}", _PREC_ASSIGN
        if isinstance(node, c_ast.Conditional):
            assert node.condition is not None
            assert node.then is not None and node.otherwise is not None
            cond = self._paren(node.condition, _BINARY_PRECEDENCE["||"])
            then, _ = self._expr(node.then)
            otherwise = self._paren(node.otherwise, _PREC_CONDITIONAL)
            return f"{cond} ? {then} : {otherwise}", _PREC_CONDITIONAL
        if isinstance(node, c_ast.Comma):
            assert node.left is not None and node.right is not None
            left = self._paren(node.left, _PREC_COMMA)
            right = self._paren(node.right, _PREC_ASSIGN)
            return f"{left}, {right}", _PREC_COMMA
        if isinstance(node, c_ast.Cast):
            assert node.operand is not None and node.target_type is not None
            type_name = self.declaration(node.target_type)
            if isinstance(node.operand, c_ast.InitList):
                items = ", ".join(self.expression(i) for i in node.operand.items)
                return f"({type_name}){{{items}}}", _PREC_UNARY
            inner = self._paren(node.operand, _PREC_UNARY)
            return f"({type_name}){inner}", _PREC_UNARY
        if isinstance(node, c_ast.Call):
            assert node.function is not None
            function = self._paren(node.function, _PREC_POSTFIX)
            arguments = ", ".join(
                self._paren(argument, _PREC_ASSIGN) for argument in node.arguments)
            return f"{function}({arguments})", _PREC_POSTFIX
        if isinstance(node, c_ast.ArraySubscript):
            assert node.array is not None and node.index is not None
            array = self._paren(node.array, _PREC_POSTFIX)
            return f"{array}[{self.expression(node.index)}]", _PREC_POSTFIX
        if isinstance(node, c_ast.Member):
            assert node.object is not None
            obj = self._paren(node.object, _PREC_POSTFIX)
            opr = "->" if node.arrow else "."
            return f"{obj}{opr}{node.member}", _PREC_POSTFIX
        if isinstance(node, c_ast.InitList):
            items = ", ".join(self._paren(i, _PREC_ASSIGN) for i in node.items)
            return f"{{{items}}}", _PREC_POSTFIX
        raise PrinterError(f"no rendering for {type(node).__name__}")

    # ------------------------------------------------------------------
    # Statements and declarations
    # ------------------------------------------------------------------
    def statement(self, node: c_ast.Node, depth: int = 0) -> list[str]:
        pad = self.indent * depth
        if isinstance(node, c_ast.Declaration):
            return [pad + self._declaration_line(node)]
        if isinstance(node, c_ast.ExpressionStmt):
            if node.expression is None:
                return [pad + ";"]
            return [pad + self.expression(node.expression) + ";"]
        if isinstance(node, c_ast.Compound):
            lines = [pad + "{"]
            for item in node.items:
                lines.extend(self.statement(item, depth + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(node, c_ast.If):
            assert node.condition is not None
            lines = [pad + f"if ({self.expression(node.condition)})"]
            lines.extend(self._branch(node.then, depth))
            if node.otherwise is not None:
                lines.append(pad + "else")
                lines.extend(self._branch(node.otherwise, depth))
            return lines
        if isinstance(node, c_ast.While):
            assert node.condition is not None
            lines = [pad + f"while ({self.expression(node.condition)})"]
            lines.extend(self._branch(node.body, depth))
            return lines
        if isinstance(node, c_ast.DoWhile):
            assert node.condition is not None
            lines = [pad + "do"]
            lines.extend(self._branch(node.body, depth))
            lines.append(pad + f"while ({self.expression(node.condition)});")
            return lines
        if isinstance(node, c_ast.For):
            init = ""
            if isinstance(node.init, list):
                if len(node.init) != 1:
                    raise PrinterError(
                        "multi-declaration for-initializers are not supported")
                init = self._declaration_line(node.init[0]).rstrip(";")
            elif isinstance(node.init, c_ast.Declaration):
                init = self._declaration_line(node.init).rstrip(";")
            elif node.init is not None:
                init = self.expression(node.init)
            condition = self.expression(node.condition) if node.condition else ""
            step = self.expression(node.step) if node.step else ""
            lines = [pad + f"for ({init}; {condition}; {step})"]
            lines.extend(self._branch(node.body, depth))
            return lines
        if isinstance(node, c_ast.Return):
            if node.value is None:
                return [pad + "return;"]
            return [pad + f"return {self.expression(node.value)};"]
        if isinstance(node, c_ast.Break):
            return [pad + "break;"]
        if isinstance(node, c_ast.Continue):
            return [pad + "continue;"]
        if isinstance(node, c_ast.Switch):
            assert node.expression is not None
            lines = [pad + f"switch ({self.expression(node.expression)})"]
            lines.extend(self._branch(node.body, depth))
            return lines
        if isinstance(node, c_ast.Case):
            assert node.expression is not None
            lines = [pad + f"case {self.expression(node.expression)}:"]
            lines.extend(self.statement(node.statement, depth + 1)
                         if node.statement is not None else [])
            return lines
        if isinstance(node, c_ast.Default):
            lines = [pad + "default:"]
            lines.extend(self.statement(node.statement, depth + 1)
                         if node.statement is not None else [])
            return lines
        if isinstance(node, c_ast.Goto):
            return [pad + f"goto {node.label};"]
        if isinstance(node, c_ast.Label):
            lines = [pad + f"{node.name}:"]
            lines.extend(self.statement(node.statement, depth)
                         if node.statement is not None else [pad + ";"])
            return lines
        if isinstance(node, c_ast.StaticAssert):
            assert node.condition is not None
            message = _escape_string(node.message)
            return [pad + f"_Static_assert({self.expression(node.condition)}, {message});"]
        raise PrinterError(f"no rendering for statement {type(node).__name__}")

    def _branch(self, body: Optional[c_ast.Statement], depth: int) -> list[str]:
        if body is None:
            return [self.indent * (depth + 1) + ";"]
        if isinstance(body, c_ast.Compound):
            return self.statement(body, depth)
        return self.statement(body, depth + 1)

    def _declaration_line(self, node: c_ast.Declaration) -> str:
        assert node.type is not None
        storage = f"{node.storage} " if node.storage else ""
        text = storage + self.declaration(node.type, node.name, define_records=True)
        if node.initializer is not None:
            text += f" = {self.expression(node.initializer)}"
        return text + ";"

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def function(self, node: c_ast.FunctionDef) -> list[str]:
        assert isinstance(node.type, ct.FunctionType) and node.body is not None
        storage = f"{node.storage} " if node.storage else ""
        header = storage + self.declaration(
            node.type, node.name, define_records=True,
            parameter_names=list(node.parameter_names))
        lines = [header]
        lines.extend(self.statement(node.body, 0))
        return lines

    def translation_unit(self, unit: c_ast.TranslationUnit) -> str:
        lines: list[str] = []
        for declaration in unit.declarations:
            if isinstance(declaration, c_ast.FunctionDef):
                lines.extend(self.function(declaration))
            elif isinstance(declaration, c_ast.Declaration):
                lines.append(self._declaration_line(declaration))
            elif isinstance(declaration, c_ast.StaticAssert):
                lines.extend(self.statement(declaration, 0))
            else:
                raise PrinterError(
                    f"no rendering for top-level {type(declaration).__name__}")
            lines.append("")
        return "\n".join(lines).rstrip("\n") + "\n"


def to_c_source(node: Union[c_ast.TranslationUnit, c_ast.Node]) -> str:
    """Render an AST back to compilable C source text.

    Accepts a whole :class:`~repro.cfront.ast.TranslationUnit` (the common
    case) or any single statement/expression node.
    """
    printer = CPrinter()
    if isinstance(node, c_ast.TranslationUnit):
        return printer.translation_unit(node)
    if isinstance(node, c_ast.Expression):
        return printer.expression(node)
    return "\n".join(printer.statement(node, 0)) + "\n"


# ---------------------------------------------------------------------------
# Structural AST comparison (the round-trip property's notion of "equal")
# ---------------------------------------------------------------------------

def ast_equivalent(left: c_ast.Node, right: c_ast.Node) -> bool:
    """Structural equality of two ASTs, ignoring source positions.

    Line numbers necessarily differ between an original parse and a parse of
    the pretty-printed text; everything else — node kinds, names, operators,
    values, types — must match exactly.
    """
    return _describe(left) == _describe(right)


def _describe(node: object) -> object:
    if isinstance(node, c_ast.Node):
        fields = {}
        for name in node.__dataclass_fields__:
            if name in ("line", "column", "filename"):
                continue
            fields[name] = _describe(getattr(node, name))
        return (type(node).__name__, tuple(sorted(fields.items(), key=lambda kv: kv[0])))
    if isinstance(node, list):
        return tuple(_describe(item) for item in node)
    if isinstance(node, ct.CType):
        return str(node)
    return node
