"""Abstract syntax for the supported C subset.

The AST is deliberately close to the concrete syntax: the dynamic semantics
(:mod:`repro.core`) plays the role of the K rewrite rules and interprets these
nodes directly, and the static checks (:mod:`repro.sema`) walk them.

Every node carries a source ``line`` so undefined-behavior reports can point
at the offending construct, as kcc's reports do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cfront.ctypes import CType


@dataclass
class Node:
    """Base class of all AST nodes."""

    line: int = 0


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expression(Node):
    pass


@dataclass
class IntegerLiteral(Expression):
    value: int = 0
    type: Optional[CType] = None


@dataclass
class FloatLiteral(Expression):
    value: float = 0.0
    type: Optional[CType] = None


@dataclass
class CharLiteral(Expression):
    value: int = 0


@dataclass
class StringLiteral(Expression):
    value: str = ""


@dataclass
class Identifier(Expression):
    name: str = ""


@dataclass
class UnaryOp(Expression):
    """Unary operators.

    ``op`` is one of ``+ - ~ ! * &`` for the ordinary unary operators,
    ``++pre --pre ++post --post`` for increment/decrement, and ``sizeof``
    for ``sizeof expr``.
    """

    op: str = ""
    operand: Optional[Expression] = None


@dataclass
class SizeofType(Expression):
    type_name: Optional[CType] = None


@dataclass
class BinaryOp(Expression):
    """Binary operators: arithmetic, relational, bitwise, logical.

    The operands of ``&&``/``||`` are sequenced; the rest are unsequenced,
    which is what the evaluation-order search explores.
    """

    op: str = ""
    left: Optional[Expression] = None
    right: Optional[Expression] = None


@dataclass
class Assignment(Expression):
    """Simple (``=``) or compound (``+=`` ...) assignment."""

    op: str = "="
    target: Optional[Expression] = None
    value: Optional[Expression] = None


@dataclass
class Conditional(Expression):
    condition: Optional[Expression] = None
    then: Optional[Expression] = None
    otherwise: Optional[Expression] = None


@dataclass
class Comma(Expression):
    left: Optional[Expression] = None
    right: Optional[Expression] = None


@dataclass
class Cast(Expression):
    target_type: Optional[CType] = None
    operand: Optional[Expression] = None


@dataclass
class Call(Expression):
    function: Optional[Expression] = None
    arguments: list[Expression] = field(default_factory=list)


@dataclass
class ArraySubscript(Expression):
    array: Optional[Expression] = None
    index: Optional[Expression] = None


@dataclass
class Member(Expression):
    """``obj.field`` (arrow=False) or ``ptr->field`` (arrow=True)."""

    object: Optional[Expression] = None
    member: str = ""
    arrow: bool = False


@dataclass
class InitList(Expression):
    """A brace-enclosed initializer list (no designators)."""

    items: list[Expression] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Statement(Node):
    pass


@dataclass
class ExpressionStmt(Statement):
    expression: Optional[Expression] = None  # None == empty statement


@dataclass
class Compound(Statement):
    items: list[Union["Statement", "Declaration"]] = field(default_factory=list)


@dataclass
class If(Statement):
    condition: Optional[Expression] = None
    then: Optional[Statement] = None
    otherwise: Optional[Statement] = None


@dataclass
class While(Statement):
    condition: Optional[Expression] = None
    body: Optional[Statement] = None


@dataclass
class DoWhile(Statement):
    body: Optional[Statement] = None
    condition: Optional[Expression] = None


@dataclass
class For(Statement):
    init: Optional[Union["Declaration", Expression, list["Declaration"]]] = None
    condition: Optional[Expression] = None
    step: Optional[Expression] = None
    body: Optional[Statement] = None


@dataclass
class Return(Statement):
    value: Optional[Expression] = None


@dataclass
class Break(Statement):
    pass


@dataclass
class Continue(Statement):
    pass


@dataclass
class Switch(Statement):
    expression: Optional[Expression] = None
    body: Optional[Statement] = None


@dataclass
class Case(Statement):
    expression: Optional[Expression] = None
    statement: Optional[Statement] = None


@dataclass
class Default(Statement):
    statement: Optional[Statement] = None


@dataclass
class Goto(Statement):
    label: str = ""


@dataclass
class Label(Statement):
    name: str = ""
    statement: Optional[Statement] = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class Declaration(Node):
    """A single declared name (one init-declarator)."""

    name: str = ""
    type: Optional[CType] = None
    initializer: Optional[Expression] = None
    storage: Optional[str] = None  # 'typedef' | 'static' | 'extern' | 'auto' | 'register' | None
    is_definition: bool = True


@dataclass
class FunctionDef(Node):
    name: str = ""
    type: Optional[CType] = None          # FunctionType
    parameter_names: list[str] = field(default_factory=list)
    body: Optional[Compound] = None
    storage: Optional[str] = None


@dataclass
class StaticAssert(Node):
    condition: Optional[Expression] = None
    message: str = ""


@dataclass
class TranslationUnit(Node):
    """A whole parsed program: the ordered list of top-level declarations."""

    declarations: list[Union[Declaration, FunctionDef, StaticAssert]] = field(default_factory=list)
    filename: str = "<input>"

    def functions(self) -> dict[str, FunctionDef]:
        return {d.name: d for d in self.declarations if isinstance(d, FunctionDef)}

    def globals(self) -> list[Declaration]:
        return [d for d in self.declarations if isinstance(d, Declaration)]


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------

_CHILD_FIELDS = {
    IntegerLiteral: (),
    FloatLiteral: (),
    CharLiteral: (),
    StringLiteral: (),
    Identifier: (),
    UnaryOp: ("operand",),
    SizeofType: (),
    BinaryOp: ("left", "right"),
    Assignment: ("target", "value"),
    Conditional: ("condition", "then", "otherwise"),
    Comma: ("left", "right"),
    Cast: ("operand",),
    Call: ("function", "arguments"),
    ArraySubscript: ("array", "index"),
    Member: ("object",),
    InitList: ("items",),
    ExpressionStmt: ("expression",),
    Compound: ("items",),
    If: ("condition", "then", "otherwise"),
    While: ("condition", "body"),
    DoWhile: ("body", "condition"),
    For: ("init", "condition", "step", "body"),
    Return: ("value",),
    Break: (),
    Continue: (),
    Switch: ("expression", "body"),
    Case: ("expression", "statement"),
    Default: ("statement",),
    Goto: (),
    Label: ("statement",),
    Declaration: ("initializer",),
    FunctionDef: ("body",),
    StaticAssert: ("condition",),
    TranslationUnit: ("declarations",),
}


def children(node: Node) -> list[Node]:
    """Return the direct child nodes of ``node`` (for generic walks)."""
    result: list[Node] = []
    for field_name in _CHILD_FIELDS.get(type(node), ()):
        value = getattr(node, field_name, None)
        if value is None:
            continue
        if isinstance(value, list):
            result.extend(v for v in value if isinstance(v, Node))
        elif isinstance(value, Node):
            result.append(value)
    return result


def walk(node: Node):
    """Yield ``node`` and all its descendants in preorder."""
    yield node
    for child in children(node):
        yield from walk(child)
