"""The C type model and the implementation profile.

The paper stresses (Section 2.5.1) that whether a program is undefined can
depend on *implementation-defined* choices such as the size of ``int``.  We
therefore make every size/alignment/signedness decision explicit in an
:class:`ImplementationProfile` object that the whole pipeline threads through,
so the same program can be checked under different implementations.

Types are immutable dataclasses.  Qualifiers (``const``/``volatile``) live on
the type object itself; ``with_qualifiers`` / ``unqualified`` produce qualified
and stripped variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


# ---------------------------------------------------------------------------
# Implementation profile
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ImplementationProfile:
    """Implementation-defined parameters of the C abstract machine.

    The defaults model a typical LP64 platform (x86-64 Linux), which is what
    the paper's experiments ran on.  An ILP32 profile is provided for the
    implementation-defined-undefinedness experiments.
    """

    name: str = "lp64"
    char_bits: int = 8
    char_signed: bool = True
    sizeof_short: int = 2
    sizeof_int: int = 4
    sizeof_long: int = 8
    sizeof_long_long: int = 8
    sizeof_pointer: int = 8
    sizeof_float: int = 4
    sizeof_double: int = 8
    sizeof_long_double: int = 8
    sizeof_bool: int = 1
    # Alignment equals size for scalars up to this bound.
    max_alignment: int = 8

    def sizeof_kind(self, kind: str) -> int:
        """Size in bytes of a basic integer/float kind name."""
        return self._kind_sizes()[kind]

    def _kind_sizes(self) -> dict:
        # Built once per profile: sizeof_kind sits on the interpreter's
        # hottest paths (every load, store, and arithmetic conversion).
        table = self.__dict__.get("_kind_size_table")
        if table is None:
            table = {
                "_Bool": self.sizeof_bool,
                "char": 1,
                "signed char": 1,
                "unsigned char": 1,
                "short": self.sizeof_short,
                "unsigned short": self.sizeof_short,
                "int": self.sizeof_int,
                "unsigned int": self.sizeof_int,
                "long": self.sizeof_long,
                "unsigned long": self.sizeof_long,
                "long long": self.sizeof_long_long,
                "unsigned long long": self.sizeof_long_long,
                "float": self.sizeof_float,
                "double": self.sizeof_double,
                "long double": self.sizeof_long_double,
            }
            object.__setattr__(self, "_kind_size_table", table)
        return table


LP64 = ImplementationProfile(name="lp64")
ILP32 = ImplementationProfile(
    name="ilp32",
    sizeof_long=4,
    sizeof_long_long=8,
    sizeof_pointer=4,
    sizeof_long_double=8,
    max_alignment=4,
)
#: Profile with 8-byte ints, used to reproduce the Section 2.5.1 example in
#: which ``malloc(4)`` is or is not enough room for an ``int``.
WIDE_INT = ImplementationProfile(name="wide-int", sizeof_int=8)

PROFILES = {p.name: p for p in (LP64, ILP32, WIDE_INT)}


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CType:
    """Base class for all C types."""

    const: bool = False
    volatile: bool = False

    # -- qualifier helpers ------------------------------------------------
    def with_qualifiers(self, const: bool = False, volatile: bool = False) -> "CType":
        return replace(self, const=self.const or const, volatile=self.volatile or volatile)

    def unqualified(self) -> "CType":
        if not self.const and not self.volatile:
            return self
        return replace(self, const=False, volatile=False)

    # -- classification ----------------------------------------------------
    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, (IntType, BoolType, EnumType))

    @property
    def is_floating(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_floating

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_union(self) -> bool:
        return isinstance(self, UnionType)

    @property
    def is_record(self) -> bool:
        return isinstance(self, (StructType, UnionType))

    @property
    def is_scalar(self) -> bool:
        return self.is_arithmetic or self.is_pointer

    @property
    def is_signed(self) -> bool:
        return False

    def qualifier_str(self) -> str:
        parts = []
        if self.const:
            parts.append("const")
        if self.volatile:
            parts.append("volatile")
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return self.__class__.__name__


@dataclass(frozen=True)
class VoidType(CType):
    def __str__(self) -> str:
        q = self.qualifier_str()
        return f"{q} void".strip()


@dataclass(frozen=True)
class BoolType(CType):
    def __str__(self) -> str:
        q = self.qualifier_str()
        return f"{q} _Bool".strip()


#: canonical integer kind names, in conversion-rank order (low to high)
INTEGER_KINDS = (
    "_Bool",
    "char",
    "signed char",
    "unsigned char",
    "short",
    "unsigned short",
    "int",
    "unsigned int",
    "long",
    "unsigned long",
    "long long",
    "unsigned long long",
)

_RANK = {
    "_Bool": 0,
    "char": 1,
    "signed char": 1,
    "unsigned char": 1,
    "short": 2,
    "unsigned short": 2,
    "int": 3,
    "unsigned int": 3,
    "long": 4,
    "unsigned long": 4,
    "long long": 5,
    "unsigned long long": 5,
}


@dataclass(frozen=True)
class IntType(CType):
    """An integer type.  ``kind`` is one of :data:`INTEGER_KINDS` (not _Bool)."""

    kind: str = "int"

    @property
    def is_signed(self) -> bool:
        if self.kind == "char":
            # signedness of plain char is implementation-defined; resolved by
            # the profile at evaluation time.  Treat as signed by default in
            # type-level queries; value-level code consults the profile.
            return True
        return not self.kind.startswith("unsigned")

    @property
    def rank(self) -> int:
        return _RANK[self.kind]

    def __str__(self) -> str:
        q = self.qualifier_str()
        return f"{q} {self.kind}".strip()


@dataclass(frozen=True)
class FloatType(CType):
    kind: str = "double"  # 'float' | 'double' | 'long double'

    @property
    def is_signed(self) -> bool:
        return True

    def __str__(self) -> str:
        q = self.qualifier_str()
        return f"{q} {self.kind}".strip()


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType = field(default_factory=VoidType)

    def __str__(self) -> str:
        q = self.qualifier_str()
        star = "*" + (" " + q if q else "")
        return f"{self.pointee} {star}".strip()


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType = field(default_factory=lambda: IntType(kind="int"))
    length: Optional[int] = None  # None == incomplete array type

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.element} [{n}]"


@dataclass(frozen=True)
class StructField:
    name: str
    type: CType
    bit_width: Optional[int] = None


@dataclass(frozen=True, eq=False)
class StructType(CType):
    """A struct type.

    Record types compare by tag (C compatibility is nominal, §6.2.7), which
    also avoids infinite recursion on self-referential types such as linked
    list nodes.  The ``fields`` slot of an incomplete struct is completed in
    place by the parser when the definition is seen (``complete()``), so every
    reference made before the definition sees the completed type.
    """

    tag: Optional[str] = None
    fields: Optional[tuple[StructField, ...]] = None  # None == incomplete

    @property
    def is_complete(self) -> bool:
        return self.fields is not None

    def complete(self, fields: tuple[StructField, ...]) -> None:
        object.__setattr__(self, "fields", fields)

    def field_named(self, name: str) -> Optional[StructField]:
        if self.fields is None:
            return None
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructType):
            return NotImplemented
        if self.tag is None or other.tag is None:
            return self is other
        return (self.tag, self.const, self.volatile) == (other.tag, other.const, other.volatile)

    def __hash__(self) -> int:
        return hash(("struct", self.tag, self.const, self.volatile))

    def __str__(self) -> str:
        return f"struct {self.tag or '<anon>'}"


@dataclass(frozen=True, eq=False)
class UnionType(CType):
    tag: Optional[str] = None
    fields: Optional[tuple[StructField, ...]] = None

    @property
    def is_complete(self) -> bool:
        return self.fields is not None

    def complete(self, fields: tuple[StructField, ...]) -> None:
        object.__setattr__(self, "fields", fields)

    def field_named(self, name: str) -> Optional[StructField]:
        if self.fields is None:
            return None
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionType):
            return NotImplemented
        if self.tag is None or other.tag is None:
            return self is other
        return (self.tag, self.const, self.volatile) == (other.tag, other.const, other.volatile)

    def __hash__(self) -> int:
        return hash(("union", self.tag, self.const, self.volatile))

    def __str__(self) -> str:
        return f"union {self.tag or '<anon>'}"


@dataclass(frozen=True)
class EnumType(CType):
    tag: Optional[str] = None
    enumerators: Optional[tuple[tuple[str, int], ...]] = None

    @property
    def is_signed(self) -> bool:
        return True

    @property
    def is_complete(self) -> bool:
        return self.enumerators is not None

    def __str__(self) -> str:
        return f"enum {self.tag or '<anon>'}"


@dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType = field(default_factory=VoidType)
    parameters: tuple[CType, ...] = ()
    variadic: bool = False
    has_prototype: bool = True

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters) or "void"
        if self.variadic:
            params += ", ..."
        return f"{self.return_type} (*)({params})"


# Convenient singletons for the common cases -------------------------------

VOID = VoidType()
BOOL = BoolType()
CHAR = IntType(kind="char")
SCHAR = IntType(kind="signed char")
UCHAR = IntType(kind="unsigned char")
SHORT = IntType(kind="short")
USHORT = IntType(kind="unsigned short")
INT = IntType(kind="int")
UINT = IntType(kind="unsigned int")
LONG = IntType(kind="long")
ULONG = IntType(kind="unsigned long")
LLONG = IntType(kind="long long")
ULLONG = IntType(kind="unsigned long long")
FLOAT = FloatType(kind="float")
DOUBLE = FloatType(kind="double")
LDOUBLE = FloatType(kind="long double")
CHAR_PTR = PointerType(pointee=CHAR)
VOID_PTR = PointerType(pointee=VOID)


# ---------------------------------------------------------------------------
# Size, alignment and layout
# ---------------------------------------------------------------------------

class LayoutError(Exception):
    """Raised when asked for the size of an incomplete type."""


def size_of(ctype: CType, profile: ImplementationProfile) -> int:
    """Size of ``ctype`` in bytes under ``profile``."""
    # Fast path for the flat scalar kinds that dominate interpreter traffic.
    tp = type(ctype)
    if tp is IntType or tp is FloatType:
        return profile._kind_sizes()[ctype.kind]
    if tp is PointerType:
        return profile.sizeof_pointer
    if isinstance(ctype, VoidType):
        raise LayoutError("void type has no size")
    if isinstance(ctype, BoolType):
        return profile.sizeof_bool
    if isinstance(ctype, IntType):
        return profile.sizeof_kind(ctype.kind)
    if isinstance(ctype, FloatType):
        return profile.sizeof_kind(ctype.kind)
    if isinstance(ctype, EnumType):
        return profile.sizeof_int
    if isinstance(ctype, PointerType):
        return profile.sizeof_pointer
    if isinstance(ctype, ArrayType):
        if ctype.length is None:
            raise LayoutError("incomplete array type has no size")
        return ctype.length * size_of(ctype.element, profile)
    if isinstance(ctype, StructType):
        if ctype.fields is None:
            raise LayoutError(f"incomplete struct {ctype.tag!r} has no size")
        return struct_layout(ctype, profile).size
    if isinstance(ctype, UnionType):
        if ctype.fields is None:
            raise LayoutError(f"incomplete union {ctype.tag!r} has no size")
        if not ctype.fields:
            return 0
        size = max(size_of(f.type, profile) for f in ctype.fields)
        align = align_of(ctype, profile)
        return _round_up(size, align)
    if isinstance(ctype, FunctionType):
        raise LayoutError("function type has no size")
    raise LayoutError(f"cannot compute size of {ctype}")


def align_of(ctype: CType, profile: ImplementationProfile) -> int:
    """Alignment requirement of ``ctype`` in bytes under ``profile``."""
    if isinstance(ctype, (VoidType, FunctionType)):
        return 1
    if isinstance(ctype, ArrayType):
        return align_of(ctype.element, profile)
    if isinstance(ctype, (StructType, UnionType)):
        if ctype.fields is None or not ctype.fields:
            return 1
        return max(align_of(f.type, profile) for f in ctype.fields)
    return min(size_of(ctype, profile), profile.max_alignment)


@dataclass(frozen=True)
class FieldLayout:
    name: str
    type: CType
    offset: int
    size: int


@dataclass(frozen=True)
class RecordLayout:
    size: int
    align: int
    fields: tuple[FieldLayout, ...]

    def field(self, name: str) -> Optional[FieldLayout]:
        for f in self.fields:
            if f.name == name:
                return f
        return None


def _round_up(value: int, align: int) -> int:
    if align <= 1:
        return value
    return (value + align - 1) // align * align


def struct_layout(ctype: StructType | UnionType, profile: ImplementationProfile) -> RecordLayout:
    """Compute the layout of a complete struct or union type.

    Struct fields are laid out in declaration order with natural padding
    (fields are "ordered though not necessarily contiguous", §6.7.2.1); union
    fields all sit at offset 0.
    """
    if ctype.fields is None:
        raise LayoutError("cannot lay out an incomplete record type")
    fields: list[FieldLayout] = []
    if isinstance(ctype, UnionType):
        size = 0
        align = 1
        for f in ctype.fields:
            fsize = size_of(f.type, profile)
            falign = align_of(f.type, profile)
            fields.append(FieldLayout(f.name, f.type, 0, fsize))
            size = max(size, fsize)
            align = max(align, falign)
        return RecordLayout(_round_up(size, align), align, tuple(fields))
    offset = 0
    align = 1
    for f in ctype.fields:
        fsize = size_of(f.type, profile)
        falign = align_of(f.type, profile)
        offset = _round_up(offset, falign)
        fields.append(FieldLayout(f.name, f.type, offset, fsize))
        offset += fsize
        align = max(align, falign)
    return RecordLayout(_round_up(offset, align), align, tuple(fields))


# ---------------------------------------------------------------------------
# Integer value ranges and conversions
# ---------------------------------------------------------------------------

def is_signed_type(ctype: CType, profile: ImplementationProfile) -> bool:
    """Whether ``ctype`` is a signed integer type under ``profile``."""
    if isinstance(ctype, BoolType):
        return False
    if isinstance(ctype, EnumType):
        return True
    if isinstance(ctype, IntType):
        if ctype.kind == "char":
            return profile.char_signed
        return ctype.is_signed
    if isinstance(ctype, FloatType):
        return True
    raise TypeError(f"{ctype} is not an integer type")


#: Memoized (type, profile) -> (min, max).  Only flat scalar types are used
#: as keys: record types hash by *tag* (nominal typing), so two units' same-
#: named structs would collide in a process-wide cache — IntType/BoolType
#: hash structurally and are collision-free.
_INTEGER_RANGE_CACHE: dict = {}


def integer_range(ctype: CType, profile: ImplementationProfile) -> tuple[int, int]:
    """Return ``(min, max)`` representable values of an integer type."""
    key = (ctype, profile)
    cached = _INTEGER_RANGE_CACHE.get(key)
    if cached is not None:
        return cached
    if isinstance(ctype, BoolType):
        result = (0, 1)
    else:
        if isinstance(ctype, EnumType):
            ctype = INT
        if not isinstance(ctype, IntType):
            raise TypeError(f"{ctype} is not an integer type")
        bits = size_of(ctype, profile) * profile.char_bits
        if is_signed_type(ctype, profile):
            result = (-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
        else:
            result = (0, (1 << bits) - 1)
    if len(_INTEGER_RANGE_CACHE) < 65536:
        _INTEGER_RANGE_CACHE[key] = result
    return result


def integer_bits(ctype: CType, profile: ImplementationProfile) -> int:
    return size_of(ctype, profile) * profile.char_bits


def wrap_unsigned(value: int, ctype: CType, profile: ImplementationProfile) -> int:
    """Reduce ``value`` modulo 2**N for an unsigned type (always defined)."""
    bits = integer_bits(ctype, profile)
    return value & ((1 << bits) - 1)


def fits_in(value: int, ctype: CType, profile: ImplementationProfile) -> bool:
    lo, hi = integer_range(ctype, profile)
    return lo <= value <= hi


_PROMOTE_CACHE: dict = {}


def promote_integer(ctype: CType, profile: ImplementationProfile) -> CType:
    """Integer promotion (§6.3.1.1:2): small integer types promote to int."""
    key = (ctype, profile)
    cached = _PROMOTE_CACHE.get(key)
    if cached is not None:
        return cached
    if isinstance(ctype, (BoolType, EnumType)):
        result = INT
    elif isinstance(ctype, IntType) and ctype.rank < _RANK["int"]:
        lo, hi = integer_range(ctype, profile)
        ilo, ihi = integer_range(INT, profile)
        if ilo <= lo and hi <= ihi:
            result = INT
        else:
            result = UINT
    else:
        result = ctype.unqualified() if isinstance(ctype, IntType) else ctype
    if isinstance(ctype, (IntType, BoolType, EnumType)) and len(_PROMOTE_CACHE) < 65536:
        _PROMOTE_CACHE[key] = result
    return result


#: Types whose dataclass equality/hash is purely structural (no nominal tag),
#: hence safe as process-wide cache keys.
_FLAT_ARITH_TYPES = (IntType, BoolType, FloatType)

_UAC_CACHE: dict = {}


def usual_arithmetic_conversions(
        left: CType, right: CType, profile: ImplementationProfile) -> CType:
    """The usual arithmetic conversions (§6.3.1.8) for two arithmetic types."""
    # Flat scalar types hash structurally, so the pair is a collision-free
    # process-wide cache key (unlike nominal record types, never seen here).
    if type(left) in _FLAT_ARITH_TYPES and type(right) in _FLAT_ARITH_TYPES:
        key = (left, right, profile)
        cached = _UAC_CACHE.get(key)
        if cached is None:
            cached = _usual_arithmetic_conversions(left, right, profile)
            if len(_UAC_CACHE) < 65536:
                _UAC_CACHE[key] = cached
        return cached
    return _usual_arithmetic_conversions(left, right, profile)


def _usual_arithmetic_conversions(
        left: CType, right: CType, profile: ImplementationProfile) -> CType:
    if isinstance(left, FloatType) or isinstance(right, FloatType):
        order = {"float": 0, "double": 1, "long double": 2}
        lk = left.kind if isinstance(left, FloatType) else None
        rk = right.kind if isinstance(right, FloatType) else None
        best = max((k for k in (lk, rk) if k is not None), key=lambda k: order[k])
        return FloatType(kind=best)
    left = promote_integer(left.unqualified(), profile)
    right = promote_integer(right.unqualified(), profile)
    assert isinstance(left, IntType) and isinstance(right, IntType)
    if left.kind == right.kind:
        return left
    lsigned = is_signed_type(left, profile)
    rsigned = is_signed_type(right, profile)
    if lsigned == rsigned:
        return left if left.rank >= right.rank else right
    signed_t, unsigned_t = (left, right) if lsigned else (right, left)
    if unsigned_t.rank >= signed_t.rank:
        return unsigned_t
    # unsigned has lower rank: use signed if it can represent all unsigned values
    _, umax = integer_range(unsigned_t, profile)
    _, smax = integer_range(signed_t, profile)
    if umax <= smax:
        return signed_t
    return _unsigned_counterpart(signed_t)


def _unsigned_counterpart(ctype: IntType) -> IntType:
    mapping = {
        "char": UCHAR, "signed char": UCHAR,
        "short": USHORT, "int": UINT, "long": ULONG, "long long": ULLONG,
    }
    return mapping.get(ctype.kind, ctype)


# ---------------------------------------------------------------------------
# Type compatibility / composition
# ---------------------------------------------------------------------------

def types_compatible(a: CType, b: CType) -> bool:
    """Structural compatibility test (§6.2.7), ignoring top-level qualifiers
    only when both sides agree."""
    a_unq, b_unq = a, b
    if a.const != b.const or a.volatile != b.volatile:
        return False
    if isinstance(a_unq, VoidType) and isinstance(b_unq, VoidType):
        return True
    if isinstance(a_unq, BoolType) and isinstance(b_unq, BoolType):
        return True
    if isinstance(a_unq, IntType) and isinstance(b_unq, IntType):
        return a_unq.kind == b_unq.kind
    if isinstance(a_unq, FloatType) and isinstance(b_unq, FloatType):
        return a_unq.kind == b_unq.kind
    if isinstance(a_unq, EnumType) and isinstance(b_unq, EnumType):
        return a_unq.tag == b_unq.tag
    if isinstance(a_unq, EnumType) and isinstance(b_unq, IntType):
        return b_unq.kind == "int"
    if isinstance(a_unq, IntType) and isinstance(b_unq, EnumType):
        return a_unq.kind == "int"
    if isinstance(a_unq, PointerType) and isinstance(b_unq, PointerType):
        return types_compatible(a_unq.pointee, b_unq.pointee)
    if isinstance(a_unq, ArrayType) and isinstance(b_unq, ArrayType):
        if not types_compatible(a_unq.element, b_unq.element):
            return False
        if a_unq.length is None or b_unq.length is None:
            return True
        return a_unq.length == b_unq.length
    if isinstance(a_unq, (StructType, UnionType)) and type(a_unq) is type(b_unq):
        if a_unq.tag is not None or b_unq.tag is not None:
            return a_unq.tag == b_unq.tag
        return a_unq.fields == b_unq.fields
    if isinstance(a_unq, FunctionType) and isinstance(b_unq, FunctionType):
        if not types_compatible(a_unq.return_type, b_unq.return_type):
            return False
        if not a_unq.has_prototype or not b_unq.has_prototype:
            return True
        if a_unq.variadic != b_unq.variadic:
            return False
        if len(a_unq.parameters) != len(b_unq.parameters):
            return False
        return all(types_compatible(pa.unqualified(), pb.unqualified())
                   for pa, pb in zip(a_unq.parameters, b_unq.parameters))
    return False


def is_null_pointer_constant_type(ctype: CType) -> bool:
    return ctype.is_integer or (
        isinstance(ctype, PointerType) and isinstance(ctype.pointee, VoidType))


def decay(ctype: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay (§6.3.2.1)."""
    if isinstance(ctype, ArrayType):
        return PointerType(pointee=ctype.element)
    if isinstance(ctype, FunctionType):
        return PointerType(pointee=ctype)
    return ctype


def is_character_type(ctype: CType) -> bool:
    return isinstance(ctype, IntType) and ctype.kind in ("char", "signed char", "unsigned char")


def is_unsigned_char_type(ctype: CType) -> bool:
    return isinstance(ctype, IntType) and ctype.kind == "unsigned char"


def aliasing_compatible(lvalue_type: CType, effective_type: CType,
                        profile: ImplementationProfile) -> bool:
    """May an object with ``effective_type`` be accessed through an lvalue of
    ``lvalue_type``?  (§6.5:7 -- the strict aliasing rule.)

    Character-typed lvalues may access anything; otherwise the types must be
    compatible up to signedness and qualifiers, or the effective type must be
    a record containing a member of the lvalue type.
    """
    if is_character_type(lvalue_type):
        return True
    lv = lvalue_type.unqualified()
    ef = effective_type.unqualified()
    if types_compatible(lv, ef):
        return True
    if isinstance(lv, IntType) and isinstance(ef, IntType):
        # signed/unsigned variants of the same width are allowed
        return size_of(lv, profile) == size_of(ef, profile) and lv.rank == ef.rank
    if isinstance(lv, (BoolType, EnumType)) and isinstance(ef, IntType):
        return size_of(lv, profile) == size_of(ef, profile)
    if isinstance(ef, (StructType, UnionType)) and ef.fields is not None:
        return any(aliasing_compatible(lv, f.type, profile) for f in ef.fields)
    if isinstance(ef, ArrayType):
        return aliasing_compatible(lv, ef.element, profile)
    return False
