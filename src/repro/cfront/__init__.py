"""C front end: lexer, preprocessor, type model, abstract syntax, parser.

This package is the "substrate" the paper's semantics sits on: it turns C
source text into a typed abstract syntax tree that the static checker
(:mod:`repro.sema`), the dynamic semantics (:mod:`repro.core`) and the
baseline analyzers (:mod:`repro.analyzers`) all consume.
"""

from repro.cfront.lexer import Lexer, Token, TokenKind, tokenize
from repro.cfront.preprocessor import Preprocessor, preprocess
from repro.cfront.parser import Parser, parse, parse_file
from repro.cfront.printer import CPrinter, ast_equivalent, to_c_source
from repro.cfront.ctypes import ImplementationProfile

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Preprocessor",
    "preprocess",
    "Parser",
    "parse",
    "parse_file",
    "CPrinter",
    "ast_equivalent",
    "to_c_source",
    "ImplementationProfile",
]
