"""A small, self-contained C preprocessor.

The preprocessor supports the features our test suites and example programs
actually use:

* ``#include <header>`` / ``#include "header"`` resolved against the builtin
  header table (:mod:`repro.cfront.headers`) plus an optional user-provided
  mapping (so multi-file test programs work without touching the host file
  system),
* object-like and function-like ``#define`` / ``#undef`` with recursive
  expansion protection,
* conditional compilation: ``#if`` / ``#ifdef`` / ``#ifndef`` / ``#elif`` /
  ``#else`` / ``#endif`` with an integer constant-expression evaluator
  (``defined``, ``!``, ``&&``, ``||``, comparisons, arithmetic),
* ``#error`` (raises), other directives (``#pragma``, ``#line``) are ignored.

The output is plain C text with original line structure preserved as far as
possible so that token line numbers still make sense for error reports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.cfront.headers import BUILTIN_HEADERS
from repro.errors import CParseError


@dataclass
class MacroDefinition:
    name: str
    body: str
    parameters: Optional[list[str]] = None  # None == object-like

    @property
    def is_function_like(self) -> bool:
        return self.parameters is not None


_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_DEFINE_RE = re.compile(
    r"^\s*#\s*define\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?P<params>\([^)]*\))?(?P<body>.*)$")
_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+[<"](?P<name>[^>"]+)[>"]\s*$')
_DIRECTIVE_RE = re.compile(r"^\s*#\s*(?P<directive>[a-z_]+)\b(?P<rest>.*)$")


class Preprocessor:
    """Expand directives and macros in C source text."""

    def __init__(self, extra_headers: Optional[dict[str, str]] = None,
                 predefined: Optional[dict[str, str]] = None) -> None:
        self.headers = dict(BUILTIN_HEADERS)
        if extra_headers:
            self.headers.update(extra_headers)
        self.macros: dict[str, MacroDefinition] = {}
        for name, body in (predefined or {}).items():
            self.macros[name] = MacroDefinition(name, body)
        self._included: set[str] = set()

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def preprocess(self, source: str, filename: str = "<input>") -> str:
        lines = self._join_continuations(source).split("\n")
        out = self._process_lines(lines, filename)
        return "\n".join(out)

    @staticmethod
    def _join_continuations(source: str) -> str:
        return source.replace("\\\n", " ")

    def _process_lines(self, lines: list[str], filename: str) -> list[str]:
        output: list[str] = []
        # Conditional stack: each entry is (taking, taken_any, seen_else)
        cond_stack: list[list[bool]] = []

        def active() -> bool:
            return all(frame[0] for frame in cond_stack)

        for lineno, line in enumerate(lines, start=1):
            directive = self._match_directive(line)
            if directive is None:
                if active():
                    output.append(self._expand_line(line, lineno, filename))
                else:
                    output.append("")
                continue
            name, rest = directive
            if name in ("ifdef", "ifndef", "if"):
                if not active():
                    cond_stack.append([False, True, False])
                    output.append("")
                    continue
                taking = self._evaluate_condition(name, rest, lineno)
                cond_stack.append([taking, taking, False])
            elif name == "elif":
                if not cond_stack:
                    raise CParseError("#elif without #if", lineno)
                frame = cond_stack[-1]
                if frame[2]:
                    raise CParseError("#elif after #else", lineno)
                if frame[1]:
                    frame[0] = False
                else:
                    cond_stack.pop()
                    if active():
                        taking = self._evaluate_condition("if", rest, lineno)
                    else:
                        taking = False
                    cond_stack.append([taking, taking or frame[1], False])
            elif name == "else":
                if not cond_stack:
                    raise CParseError("#else without #if", lineno)
                frame = cond_stack[-1]
                if frame[2]:
                    raise CParseError("duplicate #else", lineno)
                frame[2] = True
                frame[0] = (not frame[1]) and all(f[0] for f in cond_stack[:-1])
                frame[1] = True
            elif name == "endif":
                if not cond_stack:
                    raise CParseError("#endif without #if", lineno)
                cond_stack.pop()
            elif not active():
                pass  # ignore all other directives inside a false branch
            elif name == "include":
                output.extend(self._handle_include(line, lineno, filename))
                continue
            elif name == "define":
                self._handle_define(line, lineno)
            elif name == "undef":
                macro_name = rest.strip()
                self.macros.pop(macro_name, None)
            elif name == "error":
                raise CParseError(f"#error{rest}", lineno)
            elif name in ("pragma", "line", "warning"):
                pass
            else:
                raise CParseError(f"unsupported preprocessor directive #{name}", lineno)
            output.append("")
        if cond_stack:
            raise CParseError("unterminated #if block")
        return output

    @staticmethod
    def _match_directive(line: str) -> Optional[tuple[str, str]]:
        stripped = line.lstrip()
        if not stripped.startswith("#"):
            return None
        match = _DIRECTIVE_RE.match(line)
        if not match:
            return ("pragma", "")  # bare '#' line: ignore
        return match.group("directive"), match.group("rest")

    # ------------------------------------------------------------------
    # Directives
    # ------------------------------------------------------------------
    def _handle_include(self, line: str, lineno: int, filename: str) -> list[str]:
        match = _INCLUDE_RE.match(line)
        if not match:
            raise CParseError(f"malformed #include: {line.strip()!r}", lineno)
        name = match.group("name")
        if name in self._included:
            return [""]
        if name not in self.headers:
            raise CParseError(f"unknown header {name!r} (no host includes available)", lineno)
        self._included.add(name)
        header_lines = self._join_continuations(self.headers[name]).split("\n")
        return self._process_lines(header_lines, name)

    def _handle_define(self, line: str, lineno: int) -> None:
        match = _DEFINE_RE.match(line)
        if not match:
            raise CParseError(f"malformed #define: {line.strip()!r}", lineno)
        name = match.group("name")
        params_text = match.group("params")
        body = match.group("body").strip()
        if params_text is None:
            self.macros[name] = MacroDefinition(name, body)
            return
        params_inner = params_text[1:-1].strip()
        if params_inner:
            params = [p.strip() for p in params_inner.split(",")]
        else:
            params = []
        self.macros[name] = MacroDefinition(name, body, params)

    # ------------------------------------------------------------------
    # Macro expansion
    # ------------------------------------------------------------------
    def _expand_line(self, line: str, lineno: int, filename: str) -> str:
        return self._expand_text(line, lineno, frozenset())

    def _expand_text(self, text: str, lineno: int, active: frozenset[str]) -> str:
        result: list[str] = []
        index = 0
        length = len(text)
        while index < length:
            ch = text[index]
            if ch == '"' or ch == "'":
                end = self._skip_literal(text, index)
                result.append(text[index:end])
                index = end
                continue
            if ch == "/" and index + 1 < length and text[index + 1] in "/*":
                result.append(text[index:])
                break
            match = _IDENTIFIER_RE.match(text, index)
            if not match:
                result.append(ch)
                index += 1
                continue
            name = match.group(0)
            index = match.end()
            macro = self.macros.get(name)
            if macro is None or name in active:
                result.append(name)
                continue
            if macro.is_function_like:
                call_end, args = self._parse_macro_args(text, index)
                if args is None:
                    result.append(name)
                    continue
                index = call_end
                expansion = self._substitute(macro, args, lineno, active)
            else:
                expansion = self._expand_text(macro.body, lineno, active | {name})
            result.append(expansion)
        return "".join(result)

    @staticmethod
    def _skip_literal(text: str, start: int) -> int:
        quote = text[start]
        index = start + 1
        while index < len(text):
            if text[index] == "\\":
                index += 2
                continue
            if text[index] == quote:
                return index + 1
            index += 1
        return len(text)

    @staticmethod
    def _parse_macro_args(text: str, index: int) -> tuple[int, Optional[list[str]]]:
        """Parse ``(arg, arg, ...)`` starting at ``index`` (skipping spaces)."""
        pos = index
        while pos < len(text) and text[pos] in " \t":
            pos += 1
        if pos >= len(text) or text[pos] != "(":
            return index, None
        depth = 0
        args: list[str] = []
        current: list[str] = []
        while pos < len(text):
            ch = text[pos]
            if ch in "\"'":
                end = Preprocessor._skip_literal(text, pos)
                current.append(text[pos:end])
                pos = end
                continue
            if ch == "(":
                depth += 1
                if depth > 1:
                    current.append(ch)
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current).strip())
                    return pos + 1, args
                current.append(ch)
            elif ch == "," and depth == 1:
                args.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
            pos += 1
        return index, None

    def _substitute(self, macro: MacroDefinition, args: list[str], lineno: int,
                    active: frozenset[str]) -> str:
        params = macro.parameters or []
        if len(params) != len(args):
            if not (len(params) == 0 and args == [""]):
                raise CParseError(
                    f"macro {macro.name!r} expects {len(params)} arguments, got {len(args)}",
                    lineno)
            args = []
        expanded_args = [self._expand_text(a, lineno, active) for a in args]
        mapping = dict(zip(params, expanded_args))
        body = macro.body
        out: list[str] = []
        index = 0
        while index < len(body):
            ch = body[index]
            if ch in "\"'":
                end = self._skip_literal(body, index)
                out.append(body[index:end])
                index = end
                continue
            match = _IDENTIFIER_RE.match(body, index)
            if match:
                name = match.group(0)
                out.append(mapping.get(name, name))
                index = match.end()
            else:
                out.append(ch)
                index += 1
        return self._expand_text("".join(out), lineno, active | {macro.name})

    # ------------------------------------------------------------------
    # #if expression evaluation
    # ------------------------------------------------------------------
    def _evaluate_condition(self, directive: str, rest: str, lineno: int) -> bool:
        rest = rest.strip()
        if directive == "ifdef":
            return rest in self.macros
        if directive == "ifndef":
            return rest not in self.macros
        return self._evaluate_if_expression(rest, lineno) != 0

    def _evaluate_if_expression(self, text: str, lineno: int) -> int:
        # Replace defined(NAME) / defined NAME before macro expansion.
        def replace_defined(match: re.Match[str]) -> str:
            name = match.group("name") or match.group("bare")
            return "1" if name in self.macros else "0"

        text = re.sub(
            r"defined\s*(?:\(\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\)|(?P<bare>[A-Za-z_][A-Za-z0-9_]*))",
            replace_defined, text)
        text = self._expand_text(text, lineno, frozenset())
        # Remaining identifiers evaluate to 0 per the standard.
        text = _IDENTIFIER_RE.sub("0", text)
        # Strip integer suffixes.
        text = re.sub(r"(\d)[uUlL]+", r"\1", text)
        return _ConstExprParser(text, lineno).parse()


class _ConstExprParser:
    """Tiny recursive-descent evaluator for #if constant expressions."""

    _TOKEN_RE = re.compile(
        r"\s*(?:(?P<num>0[xX][0-9a-fA-F]+|\d+)|(?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%()<>!~&|^?:]))")

    def __init__(self, text: str, lineno: int) -> None:
        self.tokens: list[str] = []
        self.lineno = lineno
        pos = 0
        while pos < len(text):
            match = self._TOKEN_RE.match(text, pos)
            if not match:
                if text[pos:].strip() == "":
                    break
                raise CParseError(f"bad #if expression near {text[pos:]!r}", lineno)
            self.tokens.append(match.group("num") or match.group("op"))
            pos = match.end()
        self.index = 0

    def parse(self) -> int:
        if not self.tokens:
            raise CParseError("empty #if expression", self.lineno)
        value = self._ternary()
        return value

    def _peek(self) -> Optional[str]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> str:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _accept(self, token: str) -> bool:
        if self._peek() == token:
            self.index += 1
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._accept(token):
            raise CParseError(f"expected {token!r} in #if expression", self.lineno)

    def _ternary(self) -> int:
        cond = self._logical_or()
        if self._accept("?"):
            then = self._ternary()
            self._expect(":")
            other = self._ternary()
            return then if cond else other
        return cond

    def _logical_or(self) -> int:
        value = self._logical_and()
        while self._accept("||"):
            rhs = self._logical_and()
            value = 1 if (value or rhs) else 0
        return value

    def _logical_and(self) -> int:
        value = self._bitwise()
        while self._accept("&&"):
            rhs = self._bitwise()
            value = 1 if (value and rhs) else 0
        return value

    def _bitwise(self) -> int:
        value = self._equality()
        while True:
            if self._accept("&"):
                value &= self._equality()
            elif self._accept("|"):
                value |= self._equality()
            elif self._accept("^"):
                value ^= self._equality()
            else:
                return value

    def _equality(self) -> int:
        value = self._relational()
        while True:
            if self._accept("=="):
                value = 1 if value == self._relational() else 0
            elif self._accept("!="):
                value = 1 if value != self._relational() else 0
            else:
                return value

    def _relational(self) -> int:
        value = self._shift()
        while True:
            if self._accept("<="):
                value = 1 if value <= self._shift() else 0
            elif self._accept(">="):
                value = 1 if value >= self._shift() else 0
            elif self._accept("<"):
                value = 1 if value < self._shift() else 0
            elif self._accept(">"):
                value = 1 if value > self._shift() else 0
            else:
                return value

    def _shift(self) -> int:
        value = self._additive()
        while True:
            if self._accept("<<"):
                value <<= self._additive()
            elif self._accept(">>"):
                value >>= self._additive()
            else:
                return value

    def _additive(self) -> int:
        value = self._multiplicative()
        while True:
            if self._accept("+"):
                value += self._multiplicative()
            elif self._accept("-"):
                value -= self._multiplicative()
            else:
                return value

    def _multiplicative(self) -> int:
        value = self._unary()
        while True:
            if self._accept("*"):
                value *= self._unary()
            elif self._accept("/"):
                rhs = self._unary()
                if rhs == 0:
                    raise CParseError("division by zero in #if expression", self.lineno)
                value = int(value / rhs)
            elif self._accept("%"):
                rhs = self._unary()
                if rhs == 0:
                    raise CParseError("modulo by zero in #if expression", self.lineno)
                value = int(value - int(value / rhs) * rhs)
            else:
                return value

    def _unary(self) -> int:
        if self._accept("-"):
            return -self._unary()
        if self._accept("+"):
            return self._unary()
        if self._accept("!"):
            return 0 if self._unary() else 1
        if self._accept("~"):
            return ~self._unary()
        if self._accept("("):
            value = self._ternary()
            self._expect(")")
            return value
        token = self._peek()
        if token is None:
            raise CParseError("unexpected end of #if expression", self.lineno)
        self._next()
        try:
            return int(token, 0)
        except ValueError as exc:
            raise CParseError(f"bad token {token!r} in #if expression", self.lineno) from exc


def preprocess(source: str, *, extra_headers: Optional[dict[str, str]] = None,
               predefined: Optional[dict[str, str]] = None,
               filename: str = "<input>") -> str:
    """Convenience wrapper: preprocess ``source`` with a fresh preprocessor."""
    return Preprocessor(extra_headers=extra_headers, predefined=predefined).preprocess(
        source, filename)
