"""Builtin standard-library headers.

The reproduction is self-contained: ``#include <...>`` pulls the text below
rather than reading files from the host system.  The headers declare the
subset of the C standard library the dynamic semantics implements as builtins
(:mod:`repro.core.stdlib`), plus the usual macros.

Keeping the headers as plain C text (parsed by our own front end) means the
type checker sees real prototypes, so "bad function call" undefined behaviors
involving library functions are checked the same way as user functions.
"""

from __future__ import annotations

_STDDEF_H = """
typedef unsigned long size_t;
typedef long ptrdiff_t;
typedef int wchar_t;
#define NULL ((void*)0)
"""

_STDBOOL_H = """
#define bool _Bool
#define true 1
#define false 0
"""

_LIMITS_H = """
#define CHAR_BIT 8
#define SCHAR_MIN (-128)
#define SCHAR_MAX 127
#define UCHAR_MAX 255
#define CHAR_MIN (-128)
#define CHAR_MAX 127
#define SHRT_MIN (-32768)
#define SHRT_MAX 32767
#define USHRT_MAX 65535
#define INT_MIN (-2147483647 - 1)
#define INT_MAX 2147483647
#define UINT_MAX 4294967295u
#define LONG_MIN (-9223372036854775807L - 1L)
#define LONG_MAX 9223372036854775807L
#define ULONG_MAX 18446744073709551615uL
#define LLONG_MIN (-9223372036854775807LL - 1LL)
#define LLONG_MAX 9223372036854775807LL
#define ULLONG_MAX 18446744073709551615uLL
"""

_STDINT_H = """
#include <stddef.h>
typedef signed char int8_t;
typedef unsigned char uint8_t;
typedef short int16_t;
typedef unsigned short uint16_t;
typedef int int32_t;
typedef unsigned int uint32_t;
typedef long long int64_t;
typedef unsigned long long uint64_t;
typedef long intptr_t;
typedef unsigned long uintptr_t;
#define INT8_MAX 127
#define INT16_MAX 32767
#define INT32_MAX 2147483647
#define INT64_MAX 9223372036854775807LL
#define UINT8_MAX 255
#define UINT16_MAX 65535
#define UINT32_MAX 4294967295u
#define UINT64_MAX 18446744073709551615uLL
#define SIZE_MAX 18446744073709551615uL
"""

_STDLIB_H = """
#include <stddef.h>
void *malloc(size_t size);
void *calloc(size_t nmemb, size_t size);
void *realloc(void *ptr, size_t size);
void free(void *ptr);
void exit(int status);
void abort(void);
int abs(int j);
long labs(long j);
int atoi(const char *nptr);
long atol(const char *nptr);
int rand(void);
void srand(unsigned int seed);
#define RAND_MAX 2147483647
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
"""

_STDIO_H = """
#include <stddef.h>
int printf(const char *format, ...);
int puts(const char *s);
int putchar(int c);
int getchar(void);
int sprintf(char *str, const char *format, ...);
int snprintf(char *str, size_t size, const char *format, ...);
int scanf(const char *format, ...);
#define EOF (-1)
"""

_STRING_H = """
#include <stddef.h>
void *memcpy(void *dest, const void *src, size_t n);
void *memmove(void *dest, const void *src, size_t n);
void *memset(void *s, int c, size_t n);
int memcmp(const void *s1, const void *s2, size_t n);
size_t strlen(const char *s);
char *strcpy(char *dest, const char *src);
char *strncpy(char *dest, const char *src, size_t n);
char *strcat(char *dest, const char *src);
char *strncat(char *dest, const char *src, size_t n);
int strcmp(const char *s1, const char *s2);
int strncmp(const char *s1, const char *s2, size_t n);
char *strchr(const char *s, int c);
char *strrchr(const char *s, int c);
char *strstr(const char *haystack, const char *needle);
"""

_ASSERT_H = """
void __assert_fail(const char *expr, int line);
#define assert(expr) ((expr) ? (void)0 : __assert_fail("assertion failed", 0))
"""

_MATH_H = """
double fabs(double x);
double sqrt(double x);
double pow(double x, double y);
double floor(double x);
double ceil(double x);
double fmod(double x, double y);
"""

_CTYPE_H = """
int isdigit(int c);
int isalpha(int c);
int isalnum(int c);
int isspace(int c);
int isupper(int c);
int islower(int c);
int toupper(int c);
int tolower(int c);
"""

_STDARG_H = """
typedef void *va_list;
#define va_start(ap, last) ((void)0)
#define va_end(ap) ((void)0)
"""

BUILTIN_HEADERS: dict[str, str] = {
    "stddef.h": _STDDEF_H,
    "stdbool.h": _STDBOOL_H,
    "limits.h": _LIMITS_H,
    "stdint.h": _STDINT_H,
    "stdlib.h": _STDLIB_H,
    "stdio.h": _STDIO_H,
    "string.h": _STRING_H,
    "assert.h": _ASSERT_H,
    "math.h": _MATH_H,
    "ctype.h": _CTYPE_H,
    "stdarg.h": _STDARG_H,
}

#: Names of the functions the dynamic semantics implements natively.  The
#: interpreter dispatches calls to these names to Python implementations in
#: :mod:`repro.core.stdlib` instead of looking for a C definition.
BUILTIN_FUNCTIONS = frozenset({
    "malloc", "calloc", "realloc", "free", "exit", "abort", "abs", "labs",
    "atoi", "atol", "rand", "srand",
    "printf", "puts", "putchar", "getchar", "sprintf", "snprintf", "scanf",
    "memcpy", "memmove", "memset", "memcmp",
    "strlen", "strcpy", "strncpy", "strcat", "strncat",
    "strcmp", "strncmp", "strchr", "strrchr", "strstr",
    "__assert_fail",
    "fabs", "sqrt", "pow", "floor", "ceil", "fmod",
    "isdigit", "isalpha", "isalnum", "isspace", "isupper", "islower",
    "toupper", "tolower",
})
