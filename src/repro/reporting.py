"""Plain-text table rendering for the reproduced evaluation tables."""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *,
                 title: str = "") -> str:
    """Render a simple aligned text table (used by the benchmark harness)."""
    columns = len(headers)
    normalized_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in normalized_rows:
        for index in range(columns):
            if index < len(row):
                widths[index] = max(widths[index], len(row[index]))

    def format_row(cells: Sequence[str]) -> str:
        parts = []
        for index in range(columns):
            cell = cells[index] if index < len(cells) else ""
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row([str(h) for h in headers]))
    lines.append(format_row(["-" * w for w in widths]))
    lines.extend(format_row(row) for row in normalized_rows)
    return "\n".join(lines)


def format_percent(value: Optional[float]) -> str:
    """Format a 0..1 fraction the way the paper's tables do (one decimal).

    ``None`` — a rate whose denominator was empty (no matching tests) —
    renders as ``—``, which is not the same thing as ``0.0``.
    """
    if value is None:
        return "—"
    return f"{value * 100.0:.1f}"
