"""The staged public API of the checker.

* :class:`Checker` — session facade: ``compile`` → :class:`CompiledUnit`
  (cached by content hash + profile), ``run`` → :class:`CheckReport`,
  ``check`` for one-shot use, ``check_many``/``iter_check_many`` for batches.
* :func:`check_many` — module-level batch entry point with a process pool.
* :func:`compile_shared` — process-wide compile cache shared by the
  semantics-based analysis tools.
* :mod:`repro.api.cli` — the ``kcc-check`` subcommand CLI.
"""

from repro.api.batch import check_many, iter_check_many, resolve_jobs
from repro.api.session import (
    Checker,
    CheckerStats,
    CompileCache,
    SHARED_COMPILE_CACHE,
    compile_shared,
)
from repro.core.kcc import CheckReport, CompiledUnit, content_hash

__all__ = [
    "Checker",
    "CheckerStats",
    "CheckReport",
    "CompileCache",
    "CompiledUnit",
    "SHARED_COMPILE_CACHE",
    "check_many",
    "compile_shared",
    "content_hash",
    "iter_check_many",
    "resolve_jobs",
]
