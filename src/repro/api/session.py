"""The staged session API: reusable compiles, cached by content + profile.

The seed exposed kcc only as one-shot ``check_program(source)`` calls, so
every analyzer re-parsed every program from scratch.  This module stages the
work the way the paper's own workflow is staged (Section 3.2: compile once,
then run/search many times over one translation unit):

* :meth:`Checker.compile` parses + statically checks a program into a
  :class:`~repro.core.kcc.CompiledUnit`, memoized by content hash and
  implementation profile; the unit also carries the lowered closure-tree IR
  (:mod:`repro.core.lowering`) the dynamic stage executes, materialized
  lazily per checker configuration;
* :meth:`Checker.run` executes a compiled unit — any number of times, with
  different stdin/argv or evaluation-order search, without re-parsing;
* :meth:`Checker.check` is the one-shot composition of the two;
* :meth:`Checker.check_many` fans a batch out over a process pool
  (see :mod:`repro.api.batch`).

A module-level cache (:func:`compile_shared`) lets independent tools — the
semantics-based baselines of the evaluation, for instance — share one parse
per (program, profile) pair.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.cfront.ctypes import ImplementationProfile
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.kcc import CheckReport, CompiledUnit, KccTool, content_hash
from repro.kframework.search import SearchBudget, SearchOptions


@dataclass
class CheckerStats:
    """Counters a session keeps about its own work.

    ``parse_count`` only moves when a program is actually parsed, so tests
    (and profiling) can observe that re-running a compiled unit — or
    re-compiling an already-cached source — skips the parse stage.

    The counters cover work done *in this process through this checker*: a
    ``check_many(jobs>1)`` batch fans out to worker processes that parse and
    run independently of the session cache, so only ``run_count`` (one per
    verdict the session hands back) moves for the pooled path.
    """

    parse_count: int = 0
    cache_hits: int = 0
    run_count: int = 0

    def __post_init__(self) -> None:
        # += on an attribute is a read-modify-write; a service checker is
        # shared across threads, so increments go through a lock.
        self._lock = threading.Lock()

    def bump(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"parse_count": self.parse_count, "cache_hits": self.cache_hits,
                    "run_count": self.run_count}


class CompileCache:
    """A bounded LRU of compiled units keyed by (content hash, profile).

    Compilation is single-flight: concurrent misses on the same key wait for
    the first caller's compile instead of each parsing the program, so the
    one-parse-per-(program, profile) invariant holds under threads too.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, CompiledUnit] = OrderedDict()
        self._inflight: dict[tuple, threading.Event] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def get_or_compile(self, source: str, *, filename: str,
                       profile: ImplementationProfile,
                       compile_fn: Callable[[], CompiledUnit],
                       stats: Optional[CheckerStats] = None) -> CompiledUnit:
        key = (content_hash(source), profile)  # profile is frozen → hashable
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                else:
                    gate = self._inflight.get(key)
                    if gate is None:
                        gate = self._inflight[key] = threading.Event()
                        break       # this caller compiles
            if cached is not None:
                if stats is not None:
                    stats.bump("cache_hits")
                if cached.filename != filename:
                    # Same content under a different name: share the parse,
                    # but label reports with the caller's filename.
                    return dataclasses.replace(cached, filename=filename)
                return cached
            gate.wait()             # another caller is compiling this key
        try:
            compiled = compile_fn()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            gate.set()              # waiters retry (and may become the owner)
            raise
        if stats is not None:
            stats.bump("parse_count")
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self._inflight.pop(key, None)
        gate.set()
        return compiled


#: Process-wide cache shared by all tools that opt in (the semantics-based
#: baselines do): one parse per (program, profile) pair, no matter how many
#: tools analyze the program.
SHARED_COMPILE_CACHE = CompileCache()


def compile_shared(source: str, *, filename: str = "<input>",
                   options: CheckerOptions = DEFAULT_OPTIONS,
                   stats: Optional[CheckerStats] = None) -> CompiledUnit:
    """Compile through the process-wide shared cache."""
    tool = KccTool(options)
    return SHARED_COMPILE_CACHE.get_or_compile(
        source, filename=filename, profile=options.profile,
        compile_fn=lambda: tool.compile_unit(source, filename=filename),
        stats=stats)


#: Process-wide tool memo behind :func:`tool_for`; bounded so a service that
#: sees many one-off option combinations cannot grow it without limit.
_TOOL_CACHE: OrderedDict[tuple, KccTool] = OrderedDict()
_TOOL_CACHE_LOCK = threading.Lock()
_TOOL_CACHE_ENTRIES = 64


def tool_for(options: CheckerOptions = DEFAULT_OPTIONS, *,
             search_evaluation_order: bool = False,
             run_static_checks: bool = True,
             search_options=None) -> KccTool:
    """A process-wide memoized :class:`KccTool` for one configuration.

    Warm-pool workers (:mod:`repro.service.pool`) run many one-item tasks
    over the lifetime of the process; constructing a tool per task is cheap
    but discards nothing-shared state, while a memoized tool keeps whatever
    the configuration warmed (and pairs with :data:`SHARED_COMPILE_CACHE`
    for cross-task parses).  Unhashable configurations fall back to a fresh
    tool — correctness never depends on the memo.
    """
    key: Optional[tuple]
    try:
        key = (options, search_evaluation_order, run_static_checks,
               search_options)
        hash(key)
    except TypeError:
        key = None
    if key is not None:
        with _TOOL_CACHE_LOCK:
            tool = _TOOL_CACHE.get(key)
            if tool is not None:
                _TOOL_CACHE.move_to_end(key)
                return tool
    tool = KccTool(options, search_evaluation_order=search_evaluation_order,
                   run_static_checks=run_static_checks,
                   search_options=search_options)
    if key is not None:
        with _TOOL_CACHE_LOCK:
            _TOOL_CACHE[key] = tool
            while len(_TOOL_CACHE) > _TOOL_CACHE_ENTRIES:
                _TOOL_CACHE.popitem(last=False)
    return tool


class Checker:
    """Facade over the staged pipeline, with a per-session compile cache.

    A checker is cheap to construct and safe to keep for the lifetime of a
    service: compiled units accumulate in its LRU cache, so checking the same
    program again (or running one unit under many configurations) costs only
    the dynamic stage.
    """

    def __init__(self, options: CheckerOptions = DEFAULT_OPTIONS, *,
                 search_evaluation_order: bool = False,
                 run_static_checks: bool = True,
                 cache: Optional[CompileCache] = None,
                 cache_size: int = 1024) -> None:
        self.options = options
        self.search_evaluation_order = search_evaluation_order
        self.run_static_checks = run_static_checks
        self.cache = cache if cache is not None else CompileCache(cache_size)
        self.stats = CheckerStats()
        self._tool = KccTool(options, search_evaluation_order=search_evaluation_order,
                             run_static_checks=run_static_checks)

    # -- stage 1 ------------------------------------------------------------
    def compile(self, source: str, *, filename: str = "<input>") -> CompiledUnit:
        """Parse + statically check ``source``; memoized by content + profile."""
        return self.cache.get_or_compile(
            source, filename=filename, profile=self.options.profile,
            compile_fn=lambda: self._tool.compile_unit(source, filename=filename),
            stats=self.stats)

    # -- stage 2 ------------------------------------------------------------
    def run(self, compiled: CompiledUnit, *, argv: Optional[list[str]] = None,
            stdin: str = "",
            search_evaluation_order: Optional[bool] = None,
            probes: Optional[Sequence] = None) -> CheckReport:
        """Execute a compiled unit; never re-parses.

        ``probes`` subscribes :class:`repro.events.Probe` instances to the
        run's execution-event stream (see ``docs/api.md`` "Instrumentation
        & probes").  One run feeds every probe — ``stats.run_count`` moves
        by exactly one however many probes are attached.
        """
        if search_evaluation_order is None or \
                search_evaluation_order == self.search_evaluation_order:
            tool = self._tool
        else:
            tool = KccTool(self.options, search_evaluation_order=search_evaluation_order,
                           run_static_checks=self.run_static_checks)
        report = tool.run_unit(compiled, argv=argv, stdin=stdin, probes=probes)
        self.stats.bump("run_count")  # counted only when a run actually happened
        return report

    # -- evaluation-order search ---------------------------------------------
    def search(self, source: str | CompiledUnit, *, filename: str = "<input>",
               argv: Optional[list[str]] = None, stdin: str = "",
               strategy: str = "dfs", budget: Optional[SearchBudget] = None,
               jobs: int = 1, seed: int = 0, dedup_states: bool = True,
               prune_commuting: bool = True, checkpoint: str = "auto",
               stop_at_first: bool = True,
               merge_symbolic: bool = False) -> CheckReport:
        """Explore the evaluation orders of one program (§2.5.2).

        The search runs on :class:`repro.kframework.engine.SearchEngine`:
        sibling orders resume from forked prefix checkpoints where the
        platform allows it (``checkpoint="auto"``), converging interleavings
        are merged by machine-state hash, and orders whose operand
        footprints commute are skipped.  ``strategy`` picks the frontier
        (``dfs``/``bfs``/``random`` + ``seed``), ``budget`` bounds the
        exploration (default: ``max_paths`` from the checker options), and
        ``jobs > 1`` shards the root frontier across a process pool.  The
        report's ``search`` field carries the stop reason and coverage.

        ``merge_symbolic=True`` adds the interval absorption layer on top
        of exact-state dedup: paths arriving at the same control point whose
        live memories differ only in a few cells are folded into one family
        once the family has shown uniform outcomes (counted in the result's
        ``merged_symbolic``; see ``docs/architecture.md``, "Symbolic
        engine").  Verdicts are unchanged — only the path count drops.
        """
        if isinstance(source, CompiledUnit):
            compiled = source
        else:
            compiled = self.compile(source, filename=filename)
        if budget is None:
            budget = SearchBudget(max_paths=self.options.max_search_paths)
        search_options = SearchOptions(
            strategy=strategy, budget=budget, seed=seed, jobs=jobs,
            dedup_states=dedup_states, prune_commuting=prune_commuting,
            checkpoint=checkpoint, stop_at_first=stop_at_first,
            merge_symbolic=merge_symbolic)
        report = self._tool.search_unit(compiled, argv=argv, stdin=stdin,
                                        search=search_options)
        self.stats.bump("run_count")
        return report

    # -- symbolic proving -----------------------------------------------------
    def prove(self, source: str | CompiledUnit, *,
              inputs: Optional[dict[str, tuple[int, int]]] = None,
              filename: str = "<input>"):
        """Range-prove a program with the abstract interval engine (§2.5).

        Compiles (cached) and runs :func:`repro.symbolic.prove_unit` over
        the lowered unit.  ``inputs`` maps ``int`` variable names declared
        in ``main`` to closed ``(lo, hi)`` ranges; the proof then quantifies
        over every concretization.  Returns a
        :class:`repro.symbolic.ProveReport` whose verdict is one of
        ``PROVED_DEFINED`` (every run of every input is defined),
        ``PROVED_UNDEFINED`` (a specific :class:`~repro.errors.UBKind` is
        reached on every input, with a witness interval), or
        ``INCONCLUSIVE`` (the abstract domain cannot decide — never a lie).
        """
        from repro.symbolic.prove import prove_unit

        if isinstance(source, CompiledUnit):
            compiled = source
        else:
            compiled = self.compile(source, filename=filename)
        report = prove_unit(compiled, options=self.options, inputs=inputs)
        self.stats.bump("run_count")
        return report

    # -- fuzzing --------------------------------------------------------------
    def fuzz(self, *, seed: int = 0, count: int = 100,
             inject: Optional[str] = "mixed", jobs: int = 1,
             corpus_dir: Optional[str] = None,
             reduce_failures: bool = False,
             generator=None, oracles=None):
        """Run a differential fuzzing campaign under this checker's options.

        Generates ``count`` ground-truth-labeled programs from ``seed``
        (clean, or with one planted defect per ``inject``), pushes each
        through the oracle stack of :mod:`repro.fuzz.oracles`, and returns
        a :class:`repro.fuzz.CampaignResult`.  ``jobs=N`` shards the case
        indices over the process pool with byte-identical results; corpus
        and reduction behave as on ``kcc-check fuzz``.
        """
        from repro.fuzz.campaign import CampaignConfig, run_campaign
        from repro.fuzz.generator import GeneratorConfig
        from repro.fuzz.oracles import OracleConfig

        config = CampaignConfig(
            seed=seed, count=count, inject=inject, jobs=jobs,
            generator=generator if generator is not None else GeneratorConfig(),
            oracles=oracles if oracles is not None else OracleConfig(),
            corpus_dir=corpus_dir, reduce_failures=reduce_failures)
        return run_campaign(config, options=self.options)

    # -- compositions --------------------------------------------------------
    def check(self, source: str, *, filename: str = "<input>",
              argv: Optional[list[str]] = None, stdin: str = "") -> CheckReport:
        """Compile (cached) and run ``source`` in one call."""
        return self.run(self.compile(source, filename=filename),
                        argv=argv, stdin=stdin)

    def check_many(self, sources: Sequence[str | tuple[str, str]], *,
                   jobs: Optional[int] = 1,
                   probe_factory=None) -> list[CheckReport]:
        """Check a batch of programs, fanning out over ``jobs`` processes.

        ``sources`` may be plain source strings or ``(filename, source)``
        pairs.  Verdicts come back in input order and are identical to the
        serial path; see :mod:`repro.api.batch`.  ``probe_factory(filename)``
        attaches fresh probes per program (forces the serial path — probes
        are in-process observers).
        """
        from repro.api.batch import check_many

        return check_many(sources, options=self.options,
                          search_evaluation_order=self.search_evaluation_order,
                          run_static_checks=self.run_static_checks,
                          jobs=jobs, checker=self, probe_factory=probe_factory,
                          search_options=self._tool.search_options)

    def iter_check_many(self, sources: Iterable[str | tuple[str, str]], *,
                        jobs: Optional[int] = 1):
        """Like :meth:`check_many`, but stream reports as they are ready (in order)."""
        from repro.api.batch import iter_check_many

        return iter_check_many(sources, options=self.options,
                               search_evaluation_order=self.search_evaluation_order,
                               run_static_checks=self.run_static_checks,
                               jobs=jobs, checker=self)
