"""The ``kcc-check`` command line interface, redesigned around subcommands.

::

    kcc-check check a.c b.c --jobs 4 --format json   # classify programs
    kcc-check run prog.c -- arg1 arg2                # run a defined program
    kcc-check search prog.c --coverage               # evaluation-order search
    kcc-check search prog.c --strategy bfs --budget paths=256,seconds=5
    kcc-check search prog.c --jobs 4                 # shard the root frontier
    kcc-check search prog.c --merge-symbolic         # interval path absorption
    kcc-check prove prog.c                           # abstract range proof
    kcc-check prove prog.c --inputs x=0:100          # ... over an input range
    kcc-check bench --smoke                          # evaluation tables
    kcc-check bench --tools valgrind,kcc             # a custom tool lineup
    kcc-check tools                                  # registered analyzers
    kcc-check fuzz --seed 0 --count 2000 --jobs 4    # differential fuzzing
    kcc-check fuzz --inject memory --reduce --corpus corpus/
    kcc-check serve --socket /tmp/kcc.sock --jobs 4  # long-lived service
    kcc-check campaign run --journal c.jsonl --count 2000   # journaled campaign
    kcc-check campaign run --resume-from c.jsonl            # survive restarts
    kcc-check campaign merge -o all.jsonl a.jsonl b.jsonl   # combine shards

    python -m repro check prog.c                     # same CLI, module form

Exit codes follow the seed tool: ``0`` all programs defined, ``1`` at least
one flagged (undefined or static error), ``2`` at least one inconclusive
(and none flagged); ``64`` (EX_USAGE) for unreadable inputs or bad tool
names, ``141`` when the consumer closes our pipe.  ``prove`` maps its
verdicts onto the same codes: PROVED_DEFINED → 0, PROVED_UNDEFINED → 1,
INCONCLUSIVE → 2.  ``run`` exits with the
program's own exit code when it is defined.  The seed's single-file
invocation (``kcc-check prog.c``) still works: a first argument that is not
a subcommand is treated as ``check``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions
from repro.core.kcc import CheckReport, KccTool
from repro.errors import OutcomeKind
from repro.api.batch import iter_check_many

SUBCOMMANDS = ("check", "run", "search", "prove", "bench", "tools", "fuzz",
               "serve", "campaign")

EXIT_DEFINED = 0
EXIT_FLAGGED = 1
EXIT_INCONCLUSIVE = 2
#: Bad invocation / unreadable input (BSD EX_USAGE) — distinct from
#: EXIT_INCONCLUSIVE so scripts re-queueing inconclusive analyses do not
#: re-queue typo'd paths.
EXIT_USAGE = 64
#: The consumer closed our stdout pipe; 128+SIGPIPE, as the shell reports it.
EXIT_PIPE_CLOSED = 141


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", default="lp64", choices=sorted(ct.PROFILES),
                        help="implementation profile (type sizes)")
    parser.add_argument("--no-static", action="store_true",
                        help="skip translation-time checks")
    parser.add_argument("--no-lowering", action="store_true",
                        help="run the dynamic stage on the legacy AST walker "
                             "instead of the lowered fast path (escape hatch; "
                             "verdicts are identical)")
    parser.add_argument("--engine", default="compiled",
                        choices=("walker", "lowered", "compiled"),
                        help="dynamic-stage engine: the flat register-"
                             "bytecode VM (default), the lowered closure "
                             "trees, or the legacy AST walker; verdicts are "
                             "identical across all three")
    parser.add_argument("--format", default="text", choices=("text", "json"),
                        help="report format")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kcc-check",
        description="Semantics-based undefinedness checker for C "
                    "(reproduction of Ellison & Rosu's kcc).")
    subparsers = parser.add_subparsers(dest="command", required=True)

    check = subparsers.add_parser(
        "check", help="classify programs (defined / undefined / static error)")
    check.add_argument("files", nargs="+", help="C source files to check")
    check.add_argument("--search", action="store_true",
                       help="search over evaluation orders")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="check N programs in parallel worker processes")
    _add_common_options(check)

    run = subparsers.add_parser(
        "run", help="run a (presumed defined) program, like a compiler+execute")
    run.add_argument("file", help="C source file to run")
    run.add_argument("args", nargs="*", help="program arguments")
    run.add_argument("--stdin", default="", help="text to feed the program's stdin")
    _add_common_options(run)

    search = subparsers.add_parser(
        "search", help="check programs, exploring all evaluation orders (§2.5.2)")
    search.add_argument("files", nargs="+", help="C source files to check")
    search.add_argument("--strategy", default="dfs",
                        choices=("dfs", "bfs", "random"),
                        help="frontier discipline for the order search")
    search.add_argument("--budget", default=None, metavar="SPEC",
                        help="search budget, e.g. paths=256,states=10000,"
                             "seconds=5 (default: paths=64)")
    search.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard each program's root frontier across N "
                             "worker processes")
    search.add_argument("--seed", type=int, default=0,
                        help="PRNG seed for --strategy random")
    search.add_argument("--coverage", action="store_true",
                        help="report explored/merged/pruned counts, the stop "
                             "reason, and the covered fraction per program")
    search.add_argument("--no-dedup", action="store_true",
                        help="disable state deduplication (explore every "
                             "interleaving separately)")
    search.add_argument("--no-prune", action="store_true",
                        help="disable the commutativity filter")
    search.add_argument("--checkpoint", default="auto",
                        choices=("auto", "fork", "replay"),
                        help="sibling resumption: fork prefix checkpoints "
                             "(POSIX) or scripted replay from main")
    search.add_argument("--merge-symbolic", action="store_true",
                        dest="merge_symbolic",
                        help="fold paths whose live memories differ in only "
                             "a few cells into interval families once they "
                             "show uniform outcomes (replay checkpointing "
                             "only; verdicts are unchanged)")
    _add_common_options(search)

    prove = subparsers.add_parser(
        "prove", help="range-prove programs defined/undefined with the "
                      "abstract interval engine")
    prove.add_argument("files", nargs="+", help="C source files to prove")
    prove.add_argument("--inputs", action="append", default=[],
                       metavar="NAME=LO:HI",
                       help="treat the 'int NAME = ...;' declaration in main "
                            "as a symbolic input over [LO, HI] (repeatable); "
                            "the verdict then quantifies over every value")
    _add_common_options(prove)

    bench = subparsers.add_parser(
        "bench", help="run the evaluation harness and print the paper's tables")
    bench.add_argument("--suite", default="ubsuite", choices=("ubsuite", "juliet"),
                       help="which test suite to evaluate")
    bench.add_argument("--smoke", action="store_true",
                       help="tiny fast subset with kcc only (CI smoke test)")
    bench.add_argument("--tools", default=None, metavar="NAME,NAME",
                       help="comma-separated tool names (default: all four)")
    bench.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run the harness with N worker processes")

    tools = subparsers.add_parser(
        "tools", help="list the registered analysis tools (@register_tool)")
    tools.add_argument("--format", default="text", choices=("text", "json"),
                       help="report format")

    fuzz = subparsers.add_parser(
        "fuzz", help="run a differential fuzzing campaign over generated "
                     "ground-truth programs")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed; campaigns are deterministic in it")
    fuzz.add_argument("--count", type=int, default=200, metavar="N",
                      help="number of programs to generate and oracle-check")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="shard the campaign over N worker processes "
                           "(byte-identical to serial)")
    fuzz.add_argument("--inject", default="mixed", metavar="FAMILY",
                      help="defect injection: 'none' (clean programs only), "
                           "'mixed' (~40%% clean), a check family "
                           "(arithmetic, memory, sequencing, const, "
                           "pointer_provenance, uninitialized, "
                           "effective_types, functions, terminal), or a "
                           "template name")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="stream oracle mismatches to DIR as replayable "
                           "JSON entries (deduped by signature)")
    fuzz.add_argument("--reduce", action="store_true",
                      help="ddmin-reduce each mismatching program before "
                           "reporting/writing it")
    fuzz.add_argument("--search-oracle", action="store_true",
                      help="also run the bounded evaluation-order-search "
                           "agreement oracle (slower)")
    fuzz.add_argument("--smoke", action="store_true",
                      help="small deterministic CI campaign (overrides "
                           "--count to 40)")
    _add_common_options(fuzz)

    serve = subparsers.add_parser(
        "serve", help="run the long-lived checking service (check/fuzz/search "
                      "jobs as newline-delimited JSON over a socket)")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="listen on a unix socket at PATH")
    serve.add_argument("--host", default=None, metavar="HOST",
                       help="listen on TCP (default 127.0.0.1 when no --socket)")
    serve.add_argument("--port", type=int, default=0, metavar="N",
                       help="TCP port (default: ephemeral, printed on startup)")
    serve.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="warm-pool worker processes (default: one per CPU)")

    campaign = subparsers.add_parser(
        "campaign", help="journaled, resumable, distributed work-unit "
                         "campaigns with a live results plane")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _campaign_drive_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="execute units over N warm-pool workers "
                              "(1: inline; byte-identical either way)")
        sub.add_argument("--endpoint", action="append", default=[],
                         metavar="EP", dest="endpoints",
                         help="dispatch units to a kcc-check serve endpoint "
                              "(repeatable; unix:PATH or HOST:PORT)")
        sub.add_argument("--units", default=None, metavar="LO:HI",
                         help="run only units with partition index in "
                              "[LO, HI) — disjoint slices on different "
                              "machines merge back together")
        sub.add_argument("--bias", action="store_true",
                         help="coverage-guided scheduling: prefer injection "
                              "families with the fewest distinct finding "
                              "signatures (execution order only; the result "
                              "is identical)")
        sub.add_argument("--no-records", action="store_true",
                         help="journal only summaries and findings, not "
                              "per-case records (for very large campaigns)")
        sub.add_argument("--retries", type=int, default=2, metavar="N",
                         help="retry a failed unit N times with backoff")
        sub.add_argument("--baseline", default=None, metavar="PATH",
                         help="family-rate baseline JSON for regression "
                              "deltas (e.g. benchmarks/results/"
                              "campaign_baseline.json)")
        sub.add_argument("--quiet", action="store_true",
                         help="suppress per-unit progress lines")

    campaign_run = campaign_sub.add_parser(
        "run", help="partition a fresh campaign into journaled work units "
                    "and drive them to completion")
    campaign_run.add_argument("file", nargs="?", default=None,
                              help="C source file (search campaigns only)")
    campaign_run.add_argument("--journal", default=None, metavar="PATH",
                              help="journal file to create (must not exist)")
    campaign_run.add_argument("--resume-from", default=None, metavar="PATH",
                              dest="resume_from",
                              help="journal path that may already exist: "
                                   "resume it if it does, create it if not")
    campaign_run.add_argument("--kind", default="fuzz",
                              choices=("fuzz", "suite", "search"),
                              help="campaign kind")
    campaign_run.add_argument("--seed", type=int, default=0,
                              help="master seed (fuzz campaigns)")
    campaign_run.add_argument("--count", type=int, default=200, metavar="N",
                              help="fuzz: programs; suite: case cap "
                                   "(0 = every case)")
    campaign_run.add_argument("--unit-size", type=int, default=25, metavar="N",
                              dest="unit_size",
                              help="cases (or search scripts) per work unit")
    campaign_run.add_argument("--inject", default="mixed", metavar="MODE",
                              help="fuzz injection: none, mixed, rotate "
                                   "(one family per unit, round-robin), a "
                                   "family, or a template name")
    campaign_run.add_argument("--suite", default="ubsuite",
                              choices=("ubsuite", "juliet"),
                              help="suite campaigns: which suite")
    campaign_run.add_argument("--budget", default=None, metavar="SPEC",
                              help="search campaigns: per-unit budget, e.g. "
                                   "paths=256,seconds=5")
    _campaign_drive_options(campaign_run)
    _add_common_options(campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="recover a journal (crash-truncated tails are fine) "
                       "and finish the missing units")
    campaign_resume.add_argument("--journal", required=True, metavar="PATH",
                                 help="journal file to resume")
    _campaign_drive_options(campaign_resume)
    campaign_resume.add_argument("--format", default="text",
                                 choices=("text", "json"), help="report format")

    campaign_status = campaign_sub.add_parser(
        "status", help="read-only view of a journal: progress, per-family "
                       "rates, findings")
    campaign_status.add_argument("--journal", required=True, metavar="PATH",
                                 help="journal file to inspect")
    campaign_status.add_argument("--baseline", default=None, metavar="PATH",
                                 help="family-rate baseline JSON for deltas")
    campaign_status.add_argument("--format", default="text",
                                 choices=("text", "json"), help="report format")

    campaign_merge = campaign_sub.add_parser(
        "merge", help="merge shard journals of one campaign into a single "
                      "canonical journal")
    campaign_merge.add_argument("inputs", nargs="+",
                                help="shard journal files to merge")
    campaign_merge.add_argument("-o", "--out", required=True, metavar="PATH",
                                help="merged journal to write")
    campaign_merge.add_argument("--baseline", default=None, metavar="PATH",
                                help="family-rate baseline JSON for deltas")
    campaign_merge.add_argument("--format", default="text",
                                choices=("text", "json"), help="report format")
    return parser


class CliInputError(Exception):
    """An input file could not be read; reported without a traceback."""


def _read_source(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        raise CliInputError(f"cannot read {path}: {error.strerror or error}") from None


def _options_for(arguments: argparse.Namespace) -> CheckerOptions:
    return CheckerOptions(profile=ct.PROFILES[arguments.profile],
                          enable_lowering=not getattr(arguments, "no_lowering", False),
                          engine=getattr(arguments, "engine", "compiled"))


def _batch_exit_code(reports: list[CheckReport]) -> int:
    if any(report.flagged for report in reports):
        return EXIT_FLAGGED
    if any(report.outcome.kind is OutcomeKind.INCONCLUSIVE for report in reports):
        return EXIT_INCONCLUSIVE
    return EXIT_DEFINED


def _emit_text(report: CheckReport, *, multiple: bool, out) -> None:
    if multiple:
        print(f"{report.filename}: {report.outcome.describe()}", file=out)
        if report.outcome.kind is not OutcomeKind.INCONCLUSIVE:
            # Inconclusive reports have a single note repeating the header
            # verbatim; error diagnostics add the code/line/C11 section.
            for diagnostic in report.diagnostics():
                print(f"  {diagnostic.render()}", file=out)
    else:
        print(report.render(), file=out)


def _cmd_check(arguments: argparse.Namespace, *, search: bool, out) -> int:
    options = _options_for(arguments)
    pairs = [(path, _read_source(path)) for path in arguments.files]
    reports = []
    json_docs = []
    multiple = len(pairs) > 1
    for report in iter_check_many(pairs, options=options,
                                  search_evaluation_order=search,
                                  run_static_checks=not arguments.no_static,
                                  jobs=arguments.jobs):
        reports.append(report)
        if arguments.format == "json":
            json_docs.append(report.to_dict())
        else:
            _emit_text(report, multiple=multiple, out=out)
    if arguments.format == "json":
        # Always a list, regardless of input count: consumers should not
        # have to branch on how many files the invocation happened to name.
        print(json.dumps(json_docs, indent=2), file=out)
    return _batch_exit_code(reports)


def _cmd_search(arguments: argparse.Namespace, *, out) -> int:
    """The engine-backed search subcommand (strategy/budget/coverage knobs).

    ``--jobs`` here shards each program's root frontier across worker
    processes (the programs themselves are processed in order); use
    ``check --search --jobs N`` to instead parallelize across programs.
    """
    from repro.kframework.search import SearchBudget, SearchOptions

    options = _options_for(arguments)
    try:
        budget = (SearchBudget.parse(arguments.budget)
                  if arguments.budget else SearchBudget())
    except ValueError as error:
        raise CliInputError(str(error)) from None
    search_options = SearchOptions(
        strategy=arguments.strategy, budget=budget, seed=arguments.seed,
        jobs=arguments.jobs, dedup_states=not arguments.no_dedup,
        prune_commuting=not arguments.no_prune,
        checkpoint=arguments.checkpoint,
        merge_symbolic=arguments.merge_symbolic)
    try:
        # Surface configuration conflicts (fork + non-DFS frontier, fork on
        # a platform without it) as usage errors, before reading any file.
        from repro.kframework.engine import resolve_checkpoint

        resolve_checkpoint(search_options)
    except ValueError as error:
        raise CliInputError(str(error)) from None
    tool = KccTool(options, search_evaluation_order=True,
                   run_static_checks=not arguments.no_static,
                   search_options=search_options)
    reports = []
    json_docs = []
    multiple = len(arguments.files) > 1
    for path in arguments.files:
        compiled = tool.compile_unit(_read_source(path), filename=path)
        report = tool.run_unit(compiled)
        reports.append(report)
        if arguments.format == "json":
            json_docs.append(report.to_dict())
            continue
        _emit_text(report, multiple=multiple, out=out)
        if arguments.coverage and report.search is not None:
            summary = report.search
            symbolic = (f"{summary.merged_symbolic} interval-absorbed, "
                        if summary.merged_symbolic else "")
            print(f"  search: {summary.explored} explored, "
                  f"{summary.merged_paths} merged, {symbolic}"
                  f"{summary.pruned_orders} pruned-equivalent, "
                  f"{summary.resumed_executions} resumed from checkpoints, "
                  f"{summary.runs_from_main} runs from main", file=out)
            print(f"  stopped: {summary.stop_reason} "
                  f"(coverage {summary.coverage():.0%})", file=out)
    if arguments.format == "json":
        print(json.dumps(json_docs, indent=2), file=out)
    return _batch_exit_code(reports)


def _parse_input_ranges(specs: list[str]) -> dict[str, tuple[int, int]]:
    """``NAME=LO:HI`` → ``{name: (lo, hi)}``; usage errors on bad specs."""
    inputs: dict[str, tuple[int, int]] = {}
    for spec in specs:
        name, sep, rest = spec.partition("=")
        lo_text, colon, hi_text = rest.partition(":")
        try:
            if not sep or not colon or not name.strip():
                raise ValueError
            lo, hi = int(lo_text), int(hi_text)
        except ValueError:
            raise CliInputError(
                f"bad --inputs value {spec!r}; expected NAME=LO:HI with "
                "integer bounds") from None
        if lo > hi:
            raise CliInputError(
                f"bad --inputs value {spec!r}: empty range [{lo}, {hi}]")
        inputs[name.strip()] = (lo, hi)
    return inputs


def _cmd_prove(arguments: argparse.Namespace, *, out) -> int:
    """Abstract range proofs; verdicts map onto the check exit codes."""
    from repro.symbolic.prove import (
        INCONCLUSIVE,
        PROVED_UNDEFINED,
        prove_unit,
    )

    options = _options_for(arguments)
    inputs = _parse_input_ranges(arguments.inputs)
    tool = KccTool(options, run_static_checks=not arguments.no_static)
    reports = []
    json_docs = []
    multiple = len(arguments.files) > 1
    for path in arguments.files:
        compiled = tool.compile_unit(_read_source(path), filename=path)
        try:
            report = prove_unit(compiled, options=options, inputs=inputs)
        except ValueError as error:
            raise CliInputError(f"{path}: {error}") from None
        reports.append(report)
        if arguments.format == "json":
            json_docs.append({"filename": path, **report.to_dict()})
        elif multiple:
            detail = report.kind.name if report.kind else (report.reason or "")
            print(f"{path}: {report.verdict}"
                  f"{' (' + detail + ')' if detail else ''}", file=out)
        else:
            print(report.render(), file=out)
    if arguments.format == "json":
        print(json.dumps(json_docs, indent=2), file=out)
    if any(report.verdict == PROVED_UNDEFINED for report in reports):
        return EXIT_FLAGGED
    if any(report.verdict == INCONCLUSIVE for report in reports):
        return EXIT_INCONCLUSIVE
    return EXIT_DEFINED


def _cmd_run(arguments: argparse.Namespace, *, out) -> int:
    options = _options_for(arguments)
    tool = KccTool(options, run_static_checks=not arguments.no_static)
    report = tool.check(_read_source(arguments.file), filename=arguments.file,
                        argv=list(arguments.args) or None, stdin=arguments.stdin)
    if arguments.format == "json":
        print(report.to_json(indent=2), file=out)
    elif report.outcome.kind is OutcomeKind.DEFINED:
        print(report.outcome.stdout, end="", file=out)
    else:
        print(report.render(), file=out)
    if report.flagged:
        return EXIT_FLAGGED
    if report.outcome.kind is OutcomeKind.INCONCLUSIVE:
        return EXIT_INCONCLUSIVE
    return report.outcome.exit_code or 0


def _cmd_bench(arguments: argparse.Namespace, *, out) -> int:
    # Imported lazily: the suites are big modules the other subcommands
    # never need.
    from repro.analyzers.registry import make_tools
    from repro.suites.harness import EvaluationHarness
    from repro.suites.juliet import generate_juliet_suite
    from repro.suites.ubsuite import generate_undefinedness_suite

    suite = (generate_juliet_suite() if arguments.suite == "juliet"
             else generate_undefinedness_suite())
    names = None
    if arguments.tools:
        names = [name.strip() for name in arguments.tools.split(",") if name.strip()]
    elif arguments.smoke:
        names = ["kcc"]
    try:
        tools = make_tools(names)
    except KeyError as error:
        raise CliInputError(str(error.args[0])) from None
    cases = suite.cases[:12] if arguments.smoke else None
    harness = EvaluationHarness(tools)
    comparison = harness.run_suite(suite, cases=cases, jobs=arguments.jobs)
    print(comparison.figure2_table(), file=out)
    print(file=out)
    print(comparison.figure3_table(), file=out)
    print(file=out)
    print(comparison.runtime_table(), file=out)
    return EXIT_DEFINED


def _cmd_fuzz(arguments: argparse.Namespace, *, out) -> int:
    """Run a fuzzing campaign; exit 0 iff the oracles found no mismatch."""
    from repro.fuzz.campaign import CampaignConfig, run_campaign
    from repro.fuzz.generator import injection_families, template_for
    from repro.fuzz.oracles import OracleConfig

    inject: Optional[str] = arguments.inject
    if inject in ("none", ""):
        inject = None
    elif inject != "mixed" and inject not in injection_families():
        try:
            template_for(inject)
        except KeyError:
            known = ", ".join(["none", "mixed"] + injection_families())
            raise CliInputError(
                f"unknown --inject value {inject!r}; expected one of {known}, "
                "or a template name") from None
    options = _options_for(arguments)
    config = CampaignConfig(
        seed=arguments.seed,
        count=40 if arguments.smoke else arguments.count,
        inject=inject,
        jobs=arguments.jobs,
        oracles=OracleConfig(check_search=arguments.search_oracle),
        corpus_dir=arguments.corpus,
        reduce_failures=arguments.reduce)
    result = run_campaign(config, options=options)
    if arguments.format == "json":
        print(json.dumps(result.to_dict(), indent=2), file=out)
    else:
        print(result.render(), file=out)
    return EXIT_DEFINED if result.ok else EXIT_FLAGGED


def _cmd_tools(arguments: argparse.Namespace, *, out) -> int:
    from repro.analyzers.registry import registered_tools
    from repro.reporting import render_table

    entries = [entry.describe() for entry in registered_tools()]
    if arguments.format == "json":
        print(json.dumps(entries, indent=2), file=out)
        return EXIT_DEFINED
    rows = [[entry["key"], entry["name"], entry["models"],
             ", ".join(entry["aliases"]) or "—",
             "yes" if entry["default_lineup"] else "no"]
            for entry in entries]
    print(render_table(["tool", "table name", "models", "aliases", "default lineup"],
                       rows, title="Registered analysis tools (@register_tool)"),
          file=out)
    return EXIT_DEFINED


def _parse_units_slice(text: Optional[str]) -> Optional[tuple[int, int]]:
    if text is None:
        return None
    lo, sep, hi = text.partition(":")
    if not sep or not lo.isdigit() or not hi.isdigit() or int(lo) >= int(hi):
        raise CliInputError(
            f"bad --units value {text!r}; expected LO:HI with LO < HI")
    return int(lo), int(hi)


def _campaign_schedule(arguments: argparse.Namespace, *, out):
    from repro.campaign.scheduler import ScheduleConfig

    def progress(snapshot: dict) -> None:
        findings = len(snapshot.get("findings", ()))
        print(f"  unit {snapshot.get('unit', '?')}: "
              f"{snapshot['units_done']}/{snapshot['units_total']} units, "
              f"{snapshot['cases']} cases, {findings} finding(s), "
              f"{snapshot.get('throughput') or '—'} cases/sec",
              file=out, flush=True)

    quiet = getattr(arguments, "quiet", False)
    wants_json = getattr(arguments, "format", "text") == "json"
    return ScheduleConfig(
        jobs=max(1, arguments.jobs),
        endpoints=tuple(arguments.endpoints),
        retries=max(0, arguments.retries),
        bias=arguments.bias,
        store_records=not arguments.no_records,
        units_slice=_parse_units_slice(arguments.units),
        baseline=arguments.baseline,
        progress=None if (quiet or wants_json) else progress,
    )


def _render_campaign_outcome(outcome, *, out) -> None:
    from repro.reporting import render_table

    payload = outcome.to_dict()
    rows = []
    for family, row in payload["families"].items():
        rate = f"{row['rate']:.0%}" if row["rate"] is not None else "—"
        rows.append([family, row["cases"], row["correct"], rate])
    print(render_table(
        ["family", "cases", "ground truth upheld", "rate"],
        rows,
        title=(f"Campaign {payload['campaign'][:12]}: "
               f"{payload['units_done']}/{payload['units_total']} units, "
               f"{payload['cases']} cases"),
    ), file=out)
    findings = payload["findings"]
    print(f"\n{len(findings)} distinct finding(s); "
          f"result digest {payload['result_digest'][:16]}", file=out)
    for finding in findings[:20]:
        print(f"  {finding['signature']} "
              f"(family {finding.get('family') or '—'}, "
              f"case {finding.get('case', '?')})", file=out)
    if len(findings) > 20:
        print(f"  ... and {len(findings) - 20} more", file=out)
    deltas = payload.get("deltas")
    if deltas:
        moved = {family: entry for family, entry in deltas.items()
                 if entry.get("delta")}
        if moved:
            print("regression deltas vs baseline:", file=out)
            for family, entry in moved.items():
                print(f"  {family}: {entry['delta']:+.4f} "
                      f"(now {entry['rate']}, baseline {entry['baseline']})",
                      file=out)
        else:
            print("no family rate moved against the baseline", file=out)


def _campaign_exit(outcome, arguments, *, out) -> int:
    if getattr(arguments, "format", "text") == "json":
        print(json.dumps(outcome.to_dict(), indent=2), file=out)
    else:
        _render_campaign_outcome(outcome, out=out)
    return EXIT_FLAGGED if outcome.to_dict()["findings"] else EXIT_DEFINED


def _cmd_campaign(arguments: argparse.Namespace, *, out) -> int:
    """Journaled campaigns: run / resume / status / merge."""
    from repro.campaign import CampaignSpec
    from repro.campaign.scheduler import (
        CampaignError,
        campaign_status,
        merge_campaign_journals,
        resume_campaign,
        run_campaign_spec,
    )

    command = arguments.campaign_command
    try:
        if command == "status":
            outcome = campaign_status(arguments.journal,
                                      baseline=arguments.baseline)
            return _campaign_exit(outcome, arguments, out=out)
        if command == "merge":
            outcome = merge_campaign_journals(arguments.inputs, arguments.out,
                                              baseline=arguments.baseline)
            print(f"merged {len(arguments.inputs)} journal(s) into "
                  f"{arguments.out}", file=out)
            return _campaign_exit(outcome, arguments, out=out)
        schedule = _campaign_schedule(arguments, out=out)
        if command == "resume":
            outcome = resume_campaign(arguments.journal, schedule)
            return _campaign_exit(outcome, arguments, out=out)
        assert command == "run"
        import pathlib

        from repro.service.protocol import options_to_dict

        journal = arguments.journal or arguments.resume_from
        if journal is None:
            raise CliInputError(
                "campaign run needs --journal PATH (or --resume-from PATH "
                "to pick up an existing journal)")
        inject: Optional[str] = arguments.inject
        if inject in ("none", ""):
            inject = None
        source = None
        if arguments.kind == "search":
            if arguments.file is None:
                raise CliInputError("search campaigns need a C source file")
            source = _read_source(arguments.file)
        try:
            spec = CampaignSpec(
                kind=arguments.kind,
                seed=arguments.seed,
                count=arguments.count,
                unit_size=arguments.unit_size,
                inject=inject,
                options=options_to_dict(_options_for(arguments)),
                suite=arguments.suite,
                source=source,
                filename=arguments.file or "<input>",
                budget=arguments.budget,
            )
        except ValueError as error:
            raise CliInputError(str(error)) from None
        path = pathlib.Path(journal)
        if arguments.resume_from and path.exists() and path.stat().st_size:
            outcome = resume_campaign(path, schedule)
        else:
            outcome = run_campaign_spec(spec, path, schedule)
        return _campaign_exit(outcome, arguments, out=out)
    except CampaignError as error:
        raise CliInputError(str(error)) from None


def _cmd_serve(arguments: argparse.Namespace, *, out) -> int:
    """Run the checking service until SIGTERM/SIGINT, then drain."""
    import asyncio
    import contextlib
    import signal as signal_module

    from repro.service.server import CheckService

    service = CheckService(socket_path=arguments.socket, host=arguments.host,
                           port=arguments.port, jobs=arguments.jobs)

    async def _serve() -> None:
        await service.start()
        print(f"kcc-check serve: listening on {service.endpoint}", file=out,
              flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, service.request_stop)
        await service.serve_forever()

    asyncio.run(_serve())
    print("kcc-check serve: drained (jobs finished, workers reaped)", file=out,
          flush=True)
    return EXIT_DEFINED


def main(argv: Optional[list[str]] = None, *, out=None) -> int:
    out = out if out is not None else sys.stdout
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat with the seed's single-file CLI: `kcc-check prog.c [...]`.
    if argv and argv[0] not in SUBCOMMANDS and argv[0] not in ("-h", "--help"):
        argv = ["check"] + argv
    arguments = build_parser().parse_args(argv)
    try:
        if arguments.command == "check":
            return _cmd_check(arguments, search=arguments.search, out=out)
        if arguments.command == "search":
            return _cmd_search(arguments, out=out)
        if arguments.command == "prove":
            return _cmd_prove(arguments, out=out)
        if arguments.command == "run":
            return _cmd_run(arguments, out=out)
        if arguments.command == "tools":
            return _cmd_tools(arguments, out=out)
        if arguments.command == "fuzz":
            return _cmd_fuzz(arguments, out=out)
        if arguments.command == "serve":
            return _cmd_serve(arguments, out=out)
        if arguments.command == "campaign":
            return _cmd_campaign(arguments, out=out)
        assert arguments.command == "bench"
        return _cmd_bench(arguments, out=out)
    except CliInputError as error:
        print(f"kcc-check: error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        # The consumer closed the pipe (e.g. `kcc-check ... | head`); die
        # quietly the way Unix tools do instead of tracebacking.  Point the
        # stdout fd at devnull so the interpreter's exit-time flush of the
        # buffered stream cannot trip over the dead pipe.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        return EXIT_PIPE_CLOSED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
