"""Batch checking: fan a list of programs out over the warm worker pool.

``check_many`` / ``iter_check_many`` take plain source strings or
``(filename, source)`` pairs, run each through the same staged pipeline the
serial API uses, and hand verdicts back **in input order**.  With ``jobs=1``
(the default) everything runs in the calling process through the session's
compile cache; with ``jobs>1`` the work fans out over the process-wide warm
pool (:mod:`repro.service.pool`): long-lived workers that pre-import the
engine, keep the shared compile cache across batches, receive work as
chunked tasks (the per-batch configuration is pickled once per chunk, not
once per program), and take large corpora by file-backed reference.

Reports that cross a process boundary are identical to serial reports except
that the parsed AST (``CheckReport.unit``) is dropped — shipping a full
translation unit per program would dominate the IPC cost, and batch callers
classify outcomes, they do not re-run units.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.kcc import CheckReport, KccTool
from repro.service.pool import (
    get_pool,
    resolve_jobs,
    run_pooled,
    run_staged,
)

SourceSpec = Union[str, Tuple[str, str]]

#: How many programs each pool chunk carries; larger chunks amortize pickling.
DEFAULT_CHUNKSIZE = 4

__all__ = [
    "DEFAULT_CHUNKSIZE",
    "check_many",
    "iter_check_many",
    "resolve_jobs",
    "run_pooled",
]


def _normalize(sources: Iterable[SourceSpec]) -> list[tuple[str, str]]:
    """Normalize inputs to (filename, source) pairs."""
    if isinstance(sources, str):
        # The natural migration mistake from check_program(source): a bare
        # string would iterate character-by-character into garbage reports.
        raise TypeError("check_many expects a sequence of programs; "
                        "wrap a single source in a list")
    normalized = []
    for index, spec in enumerate(sources):
        if isinstance(spec, str):
            normalized.append((f"<input:{index}>", spec))
        else:
            filename, source = spec
            normalized.append((filename, source))
    return normalized


def _strip_for_ipc(report: CheckReport) -> CheckReport:
    """Drop the AST before pickling a report back to the parent process."""
    return CheckReport(outcome=report.outcome, result=report.result,
                       search=report.search, unit=None, filename=report.filename)


def check_header(options: CheckerOptions, search_evaluation_order: bool,
                 run_static_checks: bool, search_options) -> tuple:
    """The per-batch configuration a check chunk ships once, not per item."""
    return (options, search_evaluation_order, run_static_checks,
            search_options)


def check_pair(header: tuple, pair: tuple[str, str]) -> CheckReport:
    """Pool worker: check one (filename, source) pair.

    Module-level (picklable); routes the compile through the worker's
    process-wide shared cache and the run through the memoized per-config
    tool, so a warm worker re-parses a program it has seen before in *any*
    earlier batch exactly never.
    """
    from repro.api.session import compile_shared, tool_for

    options, search_evaluation_order, run_static_checks, search_options = header
    filename, source = pair
    tool = tool_for(options,
                    search_evaluation_order=search_evaluation_order,
                    run_static_checks=run_static_checks,
                    search_options=search_options)
    compiled = compile_shared(source, filename=filename, options=options)
    return _strip_for_ipc(tool.run_unit(compiled))


def iter_check_many(sources: Iterable[SourceSpec], *,
                    options: CheckerOptions = DEFAULT_OPTIONS,
                    search_evaluation_order: bool = False,
                    run_static_checks: bool = True,
                    jobs: Optional[int] = 1,
                    checker=None,
                    probe_factory=None,
                    search_options=None) -> Iterator[CheckReport]:
    """Yield one :class:`CheckReport` per input, in input order.

    The parallel path streams: a verdict is yielded as soon as it (and all
    verdicts before it) are ready, so a consumer can start reporting while
    the pool is still working through the tail of the batch.

    ``probe_factory(filename) -> [Probe, ...]`` attaches fresh execution
    probes (:mod:`repro.events`) to each program's run.  Probes are
    in-process observers — the caller holds the references its factory
    created — so a batch with probes always runs serially in the calling
    process, whatever ``jobs`` says.
    """
    pairs = _normalize(sources)
    worker_count = resolve_jobs(jobs)
    if probe_factory is not None or worker_count <= 1 or len(pairs) <= 1:
        yield from _iter_serial(pairs, options=options,
                                search_evaluation_order=search_evaluation_order,
                                run_static_checks=run_static_checks,
                                checker=checker, probe_factory=probe_factory,
                                search_options=search_options)
        return
    pool = get_pool(min(worker_count, len(pairs)))
    if pool is None:  # pragma: no cover - sandboxed hosts
        yield from _iter_serial(pairs, options=options,
                                search_evaluation_order=search_evaluation_order,
                                run_static_checks=run_static_checks,
                                checker=checker,
                                search_options=search_options)
        return
    header = check_header(options, search_evaluation_order,
                          run_static_checks, search_options)
    chunks = [pairs[start:start + DEFAULT_CHUNKSIZE]
              for start in range(0, len(pairs), DEFAULT_CHUNKSIZE)]
    futures = [pool.submit_staged_chunk(check_pair, header, chunk)
               for chunk in chunks]
    try:
        for future in futures:
            for report in future.result():
                if checker is not None:
                    # The workers ran the programs, but the session owns the
                    # batch: keep run_count independent of the jobs value.
                    checker.stats.bump("run_count")
                yield report
    finally:
        # An abandoned iterator (e.g. the consumer's `| head -1` closing
        # the pipe) cancels the not-yet-started tail; the pool itself stays
        # warm for the next batch.
        for future in futures:
            future.cancel()


def _iter_serial(pairs: Sequence[tuple[str, str]], *, options: CheckerOptions,
                 search_evaluation_order: bool, run_static_checks: bool,
                 checker=None, probe_factory=None,
                 search_options=None) -> Iterator[CheckReport]:
    tool = KccTool(options, search_evaluation_order=search_evaluation_order,
                   run_static_checks=run_static_checks,
                   search_options=search_options)
    if checker is not None and checker.options == options:
        # Borrow the session's compile cache, but honor the explicit flags —
        # the checker's own search/static configuration may differ, and the
        # serial path must classify exactly like the worker-pool path.
        for filename, source in pairs:
            checker.stats.bump("run_count")
            probes = probe_factory(filename) if probe_factory is not None else None
            yield tool.run_unit(checker.compile(source, filename=filename),
                                probes=probes)
        return
    for filename, source in pairs:
        probes = probe_factory(filename) if probe_factory is not None else None
        yield tool.run_unit(tool.compile_unit(source, filename=filename),
                            probes=probes)


def check_many(sources: Sequence[SourceSpec], *,
               options: CheckerOptions = DEFAULT_OPTIONS,
               search_evaluation_order: bool = False,
               run_static_checks: bool = True,
               jobs: Optional[int] = 1,
               checker=None,
               probe_factory=None,
               search_options=None) -> list[CheckReport]:
    """Check a batch of programs; the list is ordered like the input."""
    pairs = _normalize(sources)
    worker_count = resolve_jobs(jobs)
    if probe_factory is not None or worker_count <= 1 or len(pairs) <= 1:
        return list(_iter_serial(
            pairs, options=options,
            search_evaluation_order=search_evaluation_order,
            run_static_checks=run_static_checks, checker=checker,
            probe_factory=probe_factory, search_options=search_options))
    header = check_header(options, search_evaluation_order,
                          run_static_checks, search_options)
    reports = run_staged(check_pair, header, pairs, jobs=worker_count,
                         chunksize=DEFAULT_CHUNKSIZE)
    if checker is not None:
        for _ in reports:
            checker.stats.bump("run_count")
    return reports
