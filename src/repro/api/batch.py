"""Batch checking: fan a list of programs out over a process pool.

``check_many`` / ``iter_check_many`` take plain source strings or
``(filename, source)`` pairs, run each through the same staged pipeline the
serial API uses, and hand verdicts back **in input order**.  With ``jobs=1``
(the default) everything runs in the calling process through the session's
compile cache; with ``jobs>1`` the work fans out over a
:class:`concurrent.futures.ProcessPoolExecutor` and results stream back as
they complete.

Reports that cross a process boundary are identical to serial reports except
that the parsed AST (``CheckReport.unit``) is dropped — shipping a full
translation unit per program would dominate the IPC cost, and batch callers
classify outcomes, they do not re-run units.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.kcc import CheckReport, KccTool

SourceSpec = Union[str, Tuple[str, str]]

#: How many programs each pool task carries; larger chunks amortize pickling.
DEFAULT_CHUNKSIZE = 4


def _normalize(sources: Iterable[SourceSpec]) -> list[tuple[str, str]]:
    """Normalize inputs to (filename, source) pairs."""
    if isinstance(sources, str):
        # The natural migration mistake from check_program(source): a bare
        # string would iterate character-by-character into garbage reports.
        raise TypeError("check_many expects a sequence of programs; "
                        "wrap a single source in a list")
    normalized = []
    for index, spec in enumerate(sources):
        if isinstance(spec, str):
            normalized.append((f"<input:{index}>", spec))
        else:
            filename, source = spec
            normalized.append((filename, source))
    return normalized


def _strip_for_ipc(report: CheckReport) -> CheckReport:
    """Drop the AST before pickling a report back to the parent process."""
    return CheckReport(outcome=report.outcome, result=report.result,
                       search=report.search, unit=None, filename=report.filename)


def _check_one(task: tuple) -> CheckReport:
    """Pool worker: check one program.  Must stay module-level (picklable)."""
    (options, search_evaluation_order, run_static_checks, search_options,
     filename, source) = task
    tool = KccTool(options, search_evaluation_order=search_evaluation_order,
                   run_static_checks=run_static_checks,
                   search_options=search_options)
    return _strip_for_ipc(tool.check(source, filename=filename))


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None`` means one worker per CPU; values are clamped to >= 1."""
    if jobs is None:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def _probe() -> bool:  # pragma: no cover - runs in the worker process
    return True


def _make_pool(workers: int) -> Optional[ProcessPoolExecutor]:
    """A process pool, or ``None`` where the host forbids subprocesses.

    ``ProcessPoolExecutor`` spawns its workers lazily on first submit, so
    constructing one proves nothing; submit a probe task and wait for it,
    forcing the spawn here where the fallback can catch a refusal.
    """
    pool = None
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
        pool.submit(_probe).result()
        return pool
    except (OSError, PermissionError, BrokenExecutor):  # pragma: no cover
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        # The degradation must be observable: a caller who asked for jobs=N
        # should not attribute a serial run's wall time to the tool.
        warnings.warn("cannot spawn worker processes; running serially",
                      RuntimeWarning, stacklevel=3)
        return None


def run_pooled(fn, tasks: Sequence, *, jobs: Optional[int],
               chunksize: int = DEFAULT_CHUNKSIZE) -> list:
    """Map ``fn`` over ``tasks`` on a process pool, preserving order.

    Falls back to the calling process when ``jobs`` resolves to 1 or the
    host cannot spawn workers.  ``fn`` and the tasks must be picklable.
    """
    worker_count = resolve_jobs(jobs)
    if worker_count <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    pool = _make_pool(min(worker_count, len(tasks)))
    if pool is None:  # pragma: no cover - sandboxed hosts
        return [fn(task) for task in tasks]
    with pool:
        return list(pool.map(fn, tasks, chunksize=max(1, chunksize)))


def iter_check_many(sources: Iterable[SourceSpec], *,
                    options: CheckerOptions = DEFAULT_OPTIONS,
                    search_evaluation_order: bool = False,
                    run_static_checks: bool = True,
                    jobs: Optional[int] = 1,
                    checker=None,
                    probe_factory=None,
                    search_options=None) -> Iterator[CheckReport]:
    """Yield one :class:`CheckReport` per input, in input order.

    The parallel path streams: a verdict is yielded as soon as it (and all
    verdicts before it) are ready, so a consumer can start reporting while
    the pool is still working through the tail of the batch.

    ``probe_factory(filename) -> [Probe, ...]`` attaches fresh execution
    probes (:mod:`repro.events`) to each program's run.  Probes are
    in-process observers — the caller holds the references its factory
    created — so a batch with probes always runs serially in the calling
    process, whatever ``jobs`` says.
    """
    pairs = _normalize(sources)
    worker_count = resolve_jobs(jobs)
    if probe_factory is not None or worker_count <= 1 or len(pairs) <= 1:
        yield from _iter_serial(pairs, options=options,
                                search_evaluation_order=search_evaluation_order,
                                run_static_checks=run_static_checks,
                                checker=checker, probe_factory=probe_factory,
                                search_options=search_options)
        return
    tasks = [(options, search_evaluation_order, run_static_checks,
              search_options, filename, source)
             for filename, source in pairs]
    pool = _make_pool(min(worker_count, len(tasks)))
    if pool is None:  # pragma: no cover - sandboxed hosts
        yield from _iter_serial(pairs, options=options,
                                search_evaluation_order=search_evaluation_order,
                                run_static_checks=run_static_checks,
                                checker=checker,
                                search_options=search_options)
        return
    # Not `with pool:` — map() submits every task up front, and the context
    # manager's shutdown(wait=True) would make an abandoned iterator (e.g.
    # the consumer's `| head -1` closing the pipe) block until the whole
    # remaining batch finished.  Cancel the queue instead when torn down early.
    completed = False
    try:
        for report in pool.map(_check_one, tasks, chunksize=DEFAULT_CHUNKSIZE):
            if checker is not None:
                # The workers ran the programs, but the session owns the
                # batch: keep run_count independent of the jobs value.
                checker.stats.bump("run_count")
            yield report
        completed = True
    finally:
        # wait=True even on early teardown: with the queue cancelled the
        # wait is bounded by the in-flight chunk, and skipping it races
        # concurrent.futures' atexit hook into "Exception ignored" noise.
        pool.shutdown(wait=True, cancel_futures=not completed)


def _iter_serial(pairs: Sequence[tuple[str, str]], *, options: CheckerOptions,
                 search_evaluation_order: bool, run_static_checks: bool,
                 checker=None, probe_factory=None,
                 search_options=None) -> Iterator[CheckReport]:
    tool = KccTool(options, search_evaluation_order=search_evaluation_order,
                   run_static_checks=run_static_checks,
                   search_options=search_options)
    if checker is not None and checker.options == options:
        # Borrow the session's compile cache, but honor the explicit flags —
        # the checker's own search/static configuration may differ, and the
        # serial path must classify exactly like the worker-pool path.
        for filename, source in pairs:
            checker.stats.bump("run_count")
            probes = probe_factory(filename) if probe_factory is not None else None
            yield tool.run_unit(checker.compile(source, filename=filename),
                                probes=probes)
        return
    for filename, source in pairs:
        probes = probe_factory(filename) if probe_factory is not None else None
        yield tool.run_unit(tool.compile_unit(source, filename=filename),
                            probes=probes)


def check_many(sources: Sequence[SourceSpec], *,
               options: CheckerOptions = DEFAULT_OPTIONS,
               search_evaluation_order: bool = False,
               run_static_checks: bool = True,
               jobs: Optional[int] = 1,
               checker=None,
               probe_factory=None,
               search_options=None) -> list[CheckReport]:
    """Check a batch of programs; the list is ordered like the input."""
    return list(iter_check_many(sources, options=options,
                                search_evaluation_order=search_evaluation_order,
                                run_static_checks=run_static_checks,
                                jobs=jobs, checker=checker,
                                probe_factory=probe_factory,
                                search_options=search_options))
