"""A catalog of the undefined behaviors of C11 (Annex J.2 style).

Section 5.2.1 of the paper classifies the 221 undefined behaviors listed in
the C11 standard into 92 statically detectable and 129 only dynamically
detectable behaviors.  This module records that classification.

The catalog below enumerates the behaviors individually, in the order and
wording style of Annex J.2, each tagged with:

* ``section`` — the normative C11 clause that makes the behavior undefined,
* ``stage`` — ``"static"`` if the behavior is detectable at translation time
  (it does not depend on a particular control flow), ``"dynamic"`` otherwise
  (following the paper's interpretation rule: a behavior is static only when
  code generation for it is implausible),
* ``kind`` — the :class:`repro.errors.UBKind` our checker reports for it, or
  ``None`` for behaviors outside the checker's current scope (the paper's own
  tool likewise covers a subset: its suite tests 70 of the 221).

The paper's headline counts are kept as module constants so the benchmark can
compare them with the catalog's own totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import UBKind

#: The counts reported in Section 5.2.1 of the paper.
PAPER_TOTAL_BEHAVIORS = 221
PAPER_STATIC_BEHAVIORS = 92
PAPER_DYNAMIC_BEHAVIORS = 129


@dataclass(frozen=True)
class UndefinedBehaviorEntry:
    """One undefined behavior of C11."""

    identifier: str
    section: str
    stage: str                      # "static" or "dynamic"
    description: str
    kind: Optional[UBKind] = None   # what our checker reports, if covered

    @property
    def is_static(self) -> bool:
        return self.stage == "static"

    @property
    def is_dynamic(self) -> bool:
        return self.stage == "dynamic"

    @property
    def covered(self) -> bool:
        return self.kind is not None


def _entry(identifier: str, section: str, stage: str, description: str,
           kind: Optional[UBKind] = None) -> UndefinedBehaviorEntry:
    return UndefinedBehaviorEntry(identifier=identifier, section=section, stage=stage,
                                  description=description, kind=kind)


#: The catalog.  Ordering loosely follows Annex J.2 (standard section order).
UB_CATALOG: list[UndefinedBehaviorEntry] = [
    # --- translation, environment, lexical (mostly static) -----------------
    _entry("nonempty-source-no-newline", "5.1.1.2", "static",
           "A non-empty source file does not end in a newline character."),
    _entry("token-paste-forms-invalid-token", "6.10.3.3", "static",
           "Token concatenation produces an invalid preprocessing token."),
    _entry("unmatched-quote-in-pp-token", "6.4", "static",
           "An unmatched ' or \" character is encountered on a logical source line."),
    _entry("reserved-identifier-defined", "7.1.3", "static",
           "The program declares or defines a reserved identifier.", UBKind.RESERVED_IDENTIFIER),
    _entry("identifier-significant-chars", "6.4.2", "static",
           "Two identifiers differ only in nonsignificant characters."),
    _entry("universal-char-name-mismatch", "6.4.3", "static",
           "A universal character name names a character outside the allowed range."),
    _entry("unspecified-escape-sequence", "6.4.4.4", "static",
           "An unspecified escape sequence is used in a character constant or string literal."),
    _entry("header-name-invalid-chars", "6.4.7", "static",
           "Characters ', \\, //, or /* appear between < and > in a header name."),
    _entry("include-depth-exceeded", "6.10.2", "static",
           "A #include directive nests past the translation limit."),
    _entry("macro-argument-count-mismatch", "6.10.3", "static",
           "A function-like macro is invoked with the wrong number of arguments."),
    _entry("defined-produced-by-expansion", "6.10.1", "static",
           "Macro expansion produces the token 'defined' inside an #if expression."),
    _entry("line-directive-out-of-range", "6.10.4", "static",
           "A #line directive specifies a line number of zero or greater than 2147483647."),
    _entry("undefined-pragma", "6.10.6", "static",
           "A non-STDC #pragma causes translation to fail in a documented way."),
    _entry("main-wrong-signature", "5.1.2.2.1", "static",
           "main is defined with a signature other than the permitted forms.",
           UBKind.MAIN_BAD_SIGNATURE),
    _entry("program-exceeds-limits", "5.2.4.1", "dynamic",
           "The program exceeds an implementation translation or execution limit.",
           UBKind.STACK_EXHAUSTION),

    # --- identifiers, linkage, declarations (static) ------------------------
    _entry("internal-and-external-linkage", "6.2.2", "static",
           "An identifier is declared with both internal and external linkage in one unit.",
           UBKind.IDENTIFIER_LINKAGE_MISMATCH),
    _entry("object-referred-outside-lifetime", "6.2.4", "dynamic",
           "An object is referred to outside of its lifetime.", UBKind.DANGLING_DEREFERENCE),
    _entry("pointer-to-dead-object-used", "6.2.4", "dynamic",
           "The value of a pointer to an object whose lifetime has ended is used.",
           UBKind.DANGLING_DEREFERENCE),
    _entry("indeterminate-auto-object-used", "6.2.4, 6.7.9", "dynamic",
           "The value of an uninitialized automatic object is used while indeterminate.",
           UBKind.UNINITIALIZED_READ),
    _entry("trap-representation-read", "6.2.6.1", "dynamic",
           "A trap representation is read by an lvalue expression without character type.",
           UBKind.UNINITIALIZED_READ),
    _entry("trap-representation-produced", "6.2.6.1", "dynamic",
           "A trap representation is produced by a side effect that modifies part of an "
           "object through an lvalue without character type.", UBKind.UNINITIALIZED_READ),
    _entry("incompatible-declarations-same-object", "6.2.7", "static",
           "Two declarations of the same object or function specify incompatible types.",
           UBKind.INCOMPATIBLE_DECLARATIONS),
    _entry("conversion-unrepresentable-fp-int", "6.3.1.4", "dynamic",
           "Conversion to or from an integer type produces a value outside the range of a "
           "floating type, or the real value cannot be represented.", UBKind.CONVERSION_OVERFLOW),
    _entry("demotion-unrepresentable-fp", "6.3.1.5", "dynamic",
           "Demotion of a real floating value produces a value outside the representable range.",
           UBKind.CONVERSION_OVERFLOW),
    _entry("lvalue-with-incomplete-type", "6.3.2.1", "dynamic",
           "An lvalue with incomplete type is used in a context that requires its value.",
           UBKind.INCOMPLETE_TYPE_OBJECT),
    _entry("lvalue-designates-no-object", "6.3.2.1", "dynamic",
           "An lvalue that does not designate an object when evaluated is used.",
           UBKind.DANGLING_DEREFERENCE),
    _entry("void-expression-value-used", "6.3.2.2", "static",
           "The (nonexistent) value of a void expression is used or converted.",
           UBKind.VOID_VALUE_USED),
    _entry("misaligned-pointer-conversion", "6.3.2.3", "dynamic",
           "A pointer is converted to a pointer type for which the value is incorrectly aligned.",
           UBKind.UNALIGNED_ACCESS),
    _entry("function-pointer-wrong-type-call", "6.3.2.3", "dynamic",
           "A converted function pointer is used to call a function of incompatible type.",
           UBKind.BAD_FUNCTION_TYPE),

    # --- expressions (mostly dynamic) ----------------------------------------
    _entry("unsequenced-side-effects", "6.5", "dynamic",
           "A side effect on a scalar object is unsequenced relative to another side effect "
           "or value computation using the same object.", UBKind.UNSEQUENCED_SIDE_EFFECT),
    _entry("arithmetic-exceptional-condition", "6.5", "dynamic",
           "An exceptional condition (overflow) occurs during expression evaluation.",
           UBKind.SIGNED_OVERFLOW),
    _entry("effective-type-violation", "6.5", "dynamic",
           "An object has its stored value accessed by an lvalue of a type that is not "
           "allowed by the effective type rules.", UBKind.EFFECTIVE_TYPE_VIOLATION),
    _entry("function-called-wrong-type", "6.5.2.2", "dynamic",
           "A function is called with a function type incompatible with the called definition.",
           UBKind.BAD_FUNCTION_TYPE),
    _entry("call-arguments-mismatch-no-prototype", "6.5.2.2", "dynamic",
           "The number or types of arguments disagree with the function definition when no "
           "prototype is in scope.", UBKind.BAD_FUNCTION_CALL),
    _entry("member-access-non-struct", "6.5.2.3", "static",
           "The . or -> operator is applied to an expression without the appropriate "
           "structure or union type."),
    _entry("compound-literal-in-function-call-return", "6.5.2.5", "dynamic",
           "A compound literal with automatic storage is used after its block terminates.",
           UBKind.DANGLING_DEREFERENCE),
    _entry("invalid-address-of", "6.5.3.2", "static",
           "The operand of the unary & operator is not an lvalue, function designator, or "
           "[] / * expression."),
    _entry("invalid-pointer-dereference", "6.5.3.2", "dynamic",
           "An invalid value (null, dangling, misaligned) has been assigned to the operand "
           "of the unary * operator.", UBKind.NULL_DEREFERENCE),
    _entry("division-by-zero", "6.5.5", "dynamic",
           "The value of the second operand of the / or % operator is zero.",
           UBKind.DIVISION_BY_ZERO),
    _entry("division-quotient-unrepresentable", "6.5.5", "dynamic",
           "The quotient a/b is not representable (INT_MIN / -1).", UBKind.SIGNED_OVERFLOW),
    _entry("pointer-addition-outside-object", "6.5.6", "dynamic",
           "Addition or subtraction of a pointer and an integer produces a result that does "
           "not point into, or one past, the same array object.",
           UBKind.INVALID_POINTER_ARITHMETIC),
    _entry("one-past-end-dereferenced", "6.5.6", "dynamic",
           "The result of pointer arithmetic points one past the array and is dereferenced.",
           UBKind.OUT_OF_BOUNDS),
    _entry("array-access-out-of-bounds", "6.5.6", "dynamic",
           "An array subscript is out of range even if the object is apparently accessible "
           "(a[1][7] for int a[4][5]).", UBKind.OUT_OF_BOUNDS),
    _entry("pointer-subtraction-different-objects", "6.5.6", "dynamic",
           "Pointers that do not point into the same array object are subtracted.",
           UBKind.POINTER_SUBTRACT_UNRELATED),
    _entry("pointer-difference-unrepresentable", "6.5.6", "dynamic",
           "The difference of two pointers is not representable in ptrdiff_t.",
           UBKind.SIGNED_OVERFLOW),
    _entry("shift-amount-out-of-range", "6.5.7", "dynamic",
           "The shift amount is negative or >= the width of the promoted left operand.",
           UBKind.SHIFT_TOO_FAR),
    _entry("left-shift-negative-or-overflow", "6.5.7", "dynamic",
           "A negative value is left-shifted, or the shifted result is not representable.",
           UBKind.SHIFT_OVERFLOW),
    _entry("relational-comparison-unrelated-pointers", "6.5.8", "dynamic",
           "Pointers that do not point to the same aggregate or union are compared with "
           "relational operators.", UBKind.POINTER_COMPARE_UNRELATED),
    _entry("assignment-overlapping-objects", "6.5.16.1", "dynamic",
           "An object is assigned to an inexactly overlapping or incompatibly typed "
           "overlapping object.", UBKind.OVERLAPPING_COPY),

    # --- declarations (mostly static) ----------------------------------------
    _entry("incomplete-type-object-defined", "6.7, 6.9.2", "static",
           "An object is defined with an incomplete type.", UBKind.INCOMPLETE_TYPE_OBJECT),
    _entry("const-object-modified", "6.7.3", "dynamic",
           "An object defined with a const-qualified type is modified through a "
           "non-const-qualified lvalue.", UBKind.CONST_VIOLATION),
    _entry("volatile-through-nonvolatile", "6.7.3", "dynamic",
           "An object defined with a volatile-qualified type is referred to through an "
           "lvalue with non-volatile-qualified type."),
    _entry("function-type-with-qualifiers", "6.7.3", "static",
           "The specification of a function type includes any type qualifiers.",
           UBKind.QUALIFIED_FUNCTION_TYPE),
    _entry("restrict-aliasing-violation", "6.7.3.1", "dynamic",
           "An object accessed through a restrict-qualified pointer is also accessed through "
           "another pointer."),
    _entry("restrict-copy-between-overlapping", "6.7.3.1", "dynamic",
           "A restrict-qualified pointer is assigned a value based on another restricted "
           "pointer whose referenced object overlaps."),
    _entry("array-size-not-positive", "6.7.6.2", "static",
           "An array is declared with a constant size that is not greater than zero.",
           UBKind.ARRAY_SIZE_NOT_POSITIVE),
    _entry("vla-size-not-positive", "6.7.6.2", "dynamic",
           "A variable length array has a size that evaluates to a non-positive value.",
           UBKind.ARRAY_SIZE_NOT_POSITIVE),
    _entry("function-returns-array-or-function", "6.7.6.3", "static",
           "A function is declared to return an array type or a function type."),
    _entry("incompatible-function-redeclaration", "6.7.6.3", "static",
           "Declarations of the same function have incompatible parameter lists.",
           UBKind.INCOMPATIBLE_DECLARATIONS),
    _entry("initializer-not-constant-static", "6.7.9", "static",
           "The initializer of an object with static storage duration is not a constant "
           "expression."),
    _entry("initializer-for-incomplete-entity", "6.7.9", "static",
           "An initializer attempts to provide a value for an object not contained within "
           "the entity being initialized."),

    # --- statements -----------------------------------------------------------
    _entry("duplicate-labels", "6.8.1", "static",
           "The same label appears more than once in a function.", UBKind.DUPLICATE_LABEL),
    _entry("goto-into-vm-scope", "6.8.6.1", "static",
           "A goto jumps into the scope of an identifier with variably modified type.",
           UBKind.GOTO_INTO_VLA_SCOPE),
    _entry("return-value-mismatch-void", "6.8.6.4", "static",
           "A return statement with an expression appears in a function whose return type "
           "is void (constraint) or vice versa and the value is used.",
           UBKind.VOID_RETURN_WITH_VALUE),
    _entry("missing-return-value-used", "6.9.1", "dynamic",
           "The } terminating a non-void function is reached and the caller uses the value.",
           UBKind.MISSING_RETURN_VALUE),
    _entry("identifier-used-but-not-defined", "6.9", "static",
           "An identifier with external linkage is used but no definition exists in the "
           "program."),
    _entry("recursive-main-exit", "5.1.2.2.3", "dynamic",
           "The program's exit semantics are violated (e.g. exit called during exit "
           "handling)."),

    # --- string literals, character constants --------------------------------
    _entry("string-literal-modified", "6.4.5", "dynamic",
           "The program attempts to modify a string literal.", UBKind.MODIFY_STRING_LITERAL),
    _entry("adjacent-wide-and-narrow-strings", "6.4.5", "static",
           "Adjacent string literal tokens with incompatible encoding prefixes are "
           "concatenated."),

    # --- preprocessor-level dynamic-ish ---------------------------------------
    _entry("offsetof-invalid-member", "7.19", "static",
           "The member designator parameter of offsetof does not designate a valid member."),
    _entry("setjmp-misused", "7.13", "dynamic",
           "setjmp appears in a context other than the allowed comparison forms, or "
           "longjmp targets a frame that has already returned."),
    _entry("va-arg-type-mismatch", "7.16.1.1", "dynamic",
           "va_arg is invoked with a type incompatible with the actual next argument.",
           UBKind.VARIADIC_MISUSE),
    _entry("va-start-not-matched", "7.16.1", "dynamic",
           "va_start or va_copy is invoked without a corresponding va_end."),

    # --- library: general ------------------------------------------------------
    _entry("library-invalid-argument", "7.1.4", "dynamic",
           "A library function is called with an invalid argument (out-of-range value, "
           "null pointer, wrong buffer size).", UBKind.BAD_FUNCTION_CALL),
    _entry("library-array-too-small", "7.1.4", "dynamic",
           "A library function is given an array too small to hold the result.",
           UBKind.BUFFER_OVERFLOW),
    _entry("assert-macro-suppressed-wrong", "7.2", "static",
           "The assert macro is redefined or suppressed in a non-conforming way."),
    _entry("errno-macro-redefined", "7.5", "static",
           "The program defines a macro or identifier named errno."),
    _entry("printf-conversion-mismatch", "7.21.6.1", "dynamic",
           "A printf-family conversion specification does not match the type of the "
           "corresponding argument.", UBKind.FORMAT_MISMATCH),
    _entry("printf-insufficient-arguments", "7.21.6.1", "dynamic",
           "There are fewer arguments than required by the format string.",
           UBKind.FORMAT_MISMATCH),
    _entry("scanf-result-pointer-invalid", "7.21.6.2", "dynamic",
           "A scanf-family result pointer does not point to suitable storage.",
           UBKind.BUFFER_OVERFLOW),
    _entry("string-function-unterminated", "7.24", "dynamic",
           "A string handling function is applied to an array with no terminating null "
           "character.", UBKind.UNTERMINATED_STRING_OP),
    _entry("memcpy-overlapping", "7.24.2.1", "dynamic",
           "memcpy or strcpy is used with overlapping source and destination objects.",
           UBKind.OVERLAPPING_COPY),
    _entry("free-invalid-pointer", "7.22.3.3", "dynamic",
           "The argument to free or realloc does not match a pointer earlier returned by an "
           "allocation function.", UBKind.BAD_FREE),
    _entry("free-already-freed", "7.22.3.3", "dynamic",
           "The argument to free or realloc refers to space that has been deallocated.",
           UBKind.DOUBLE_FREE),
    _entry("allocated-object-used-after-free", "7.22.3", "dynamic",
           "Memory obtained from an allocation function is used after it has been "
           "deallocated.", UBKind.USE_AFTER_FREE),
    _entry("abs-of-most-negative", "7.22.6.1", "dynamic",
           "The absolute value of the most negative number cannot be represented.",
           UBKind.SIGNED_OVERFLOW),
    _entry("exit-called-twice", "7.22.4.4", "dynamic",
           "exit or quick_exit is called more than once, or both are called."),
    _entry("getenv-result-modified", "7.22.4.6", "dynamic",
           "The string returned by getenv is modified by the program."),
    _entry("signal-handler-bad-call", "7.14.1.1", "dynamic",
           "A signal handler calls a function outside the allowed set, or refers to an "
           "object with static storage duration that is not a volatile sig_atomic_t."),
    _entry("strtok-null-on-first-call", "7.24.5.8", "dynamic",
           "strtok is called with a null first argument before any non-null call."),
    _entry("fgets-null-or-closed-stream", "7.21", "dynamic",
           "A stream function is applied to a stream that has been closed or never opened."),
    _entry("fflush-input-stream", "7.21.5.2", "dynamic",
           "fflush is applied to an input stream."),
    _entry("file-position-invalid", "7.21.9", "dynamic",
           "A file positioning function is given a position not previously obtained for "
           "that stream."),
    _entry("qsort-comparator-inconsistent", "7.22.5", "dynamic",
           "The comparison function passed to bsearch or qsort alters the array or gives "
           "inconsistent answers."),
    _entry("ungetc-pushback-overflow", "7.21.7.10", "dynamic",
           "Too many characters are pushed back onto a stream without intervening reads."),
    _entry("multibyte-invalid-sequence", "7.22.7", "dynamic",
           "A multibyte character conversion function is given an invalid sequence."),
    _entry("locale-string-modified", "7.11.1.1", "dynamic",
           "The string returned by setlocale is modified by the program."),
    _entry("time-conversion-out-of-range", "7.27.3", "dynamic",
           "A time conversion function is given values outside the normalized ranges."),
    _entry("atexit-handler-longjmp", "7.22.4", "dynamic",
           "A function registered with atexit terminates via longjmp instead of returning."),
    _entry("wide-char-null-pointer", "7.29", "dynamic",
           "A wide character function is called with a null pointer where an object is "
           "required."),

    # --- threads (C11) ----------------------------------------------------------
    _entry("data-race", "5.1.2.4", "dynamic",
           "Two conflicting actions in different threads, at least one not atomic, and "
           "neither happens before the other (a data race)."),
    _entry("mutex-not-owned-unlock", "7.26.4", "dynamic",
           "A thread unlocks a mutex it does not own."),
    _entry("thread-storage-after-exit", "7.26.5", "dynamic",
           "Thread-specific storage is accessed after the owning thread has exited."),
    _entry("condition-variable-different-mutexes", "7.26.3", "dynamic",
           "Threads block on one condition variable using different mutexes."),
]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

def count_static() -> int:
    """Number of statically detectable behaviors in the catalog."""
    return sum(1 for entry in UB_CATALOG if entry.is_static)


def count_dynamic() -> int:
    """Number of dynamically detectable behaviors in the catalog."""
    return sum(1 for entry in UB_CATALOG if entry.is_dynamic)


def count_covered() -> int:
    """Number of behaviors the checker currently maps to a concrete UBKind."""
    return sum(1 for entry in UB_CATALOG if entry.covered)


def entries_for_kind(kind: UBKind) -> list[UndefinedBehaviorEntry]:
    """All catalog entries that our checker reports as ``kind``."""
    return [entry for entry in UB_CATALOG if entry.kind is kind]


def entries_for_section(section_prefix: str) -> list[UndefinedBehaviorEntry]:
    return [entry for entry in UB_CATALOG if entry.section.startswith(section_prefix)]


def coverage_summary() -> dict[str, int]:
    """Summary used by the catalog benchmark (E3)."""
    return {
        "catalog_total": len(UB_CATALOG),
        "catalog_static": count_static(),
        "catalog_dynamic": count_dynamic(),
        "catalog_covered_by_checker": count_covered(),
        "paper_total": PAPER_TOTAL_BEHAVIORS,
        "paper_static": PAPER_STATIC_BEHAVIORS,
        "paper_dynamic": PAPER_DYNAMIC_BEHAVIORS,
    }
