"""The catalog of C11 undefined behaviors (see :mod:`repro.ub.catalog`)."""

from repro.ub.catalog import (
    UB_CATALOG,
    UndefinedBehaviorEntry,
    count_dynamic,
    count_static,
    entries_for_kind,
)

__all__ = [
    "UB_CATALOG",
    "UndefinedBehaviorEntry",
    "count_dynamic",
    "count_static",
    "entries_for_kind",
]
