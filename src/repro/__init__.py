"""repro — a semantics-based undefinedness checker for C.

This package reproduces the system of Ellison & Roșu, *Defining the
Undefinedness of C*: an executable semantics of a large C subset extended
with the checks needed to detect undefined behavior at run time, plus the
test suites and baseline analyzers used in the paper's evaluation.

Quickstart — the staged session API::

    from repro import Checker

    checker = Checker()

    # Stage 1: compile (parse + static checks), cached by content + profile.
    compiled = checker.compile('''
        int main(void) {
            int x = 0;
            return (x = 1) + (x = 2);
        }
    ''')

    # Stage 2: run the compiled unit — as many times as you like, with
    # different inputs or evaluation-order search, without re-parsing.
    report = checker.run(compiled)
    print(report.render())                    # kcc-style error 00016 report
    print(report.to_json(indent=2))           # structured diagnostics

    # Batches fan out over a process pool; verdicts come back in order.
    reports = checker.check_many([src1, src2, src3], jobs=4)

One-shot helpers ``check_program(source)`` and ``run_program(source)`` are
kept as thin wrappers over the same pipeline.  On the command line::

    kcc-check check a.c b.c --jobs 4 --format json
    python -m repro check prog.c

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
reproduction of the paper's Figure 2 and Figure 3.
"""

from repro.api.batch import check_many, iter_check_many
from repro.api.session import Checker, CheckerStats, CompileCache, compile_shared
from repro.cfront.ctypes import ILP32, LP64, WIDE_INT, ImplementationProfile, PROFILES
from repro.core.config import CheckerOptions
from repro.core.interpreter import ExecutionResult, Interpreter
from repro.core.kcc import (
    CheckReport,
    CompiledUnit,
    KccTool,
    check_program,
    content_hash,
    run_program,
)
from repro.errors import (
    Diagnostic,
    InconclusiveAnalysis,
    Outcome,
    OutcomeKind,
    StaticViolation,
    UBKind,
    UndefinedBehaviorError,
)
from repro.events import ExecutionTrace, Probe, TraceRecorderProbe
from repro.kframework.search import SearchBudget, SearchOptions, SearchResult

__version__ = "1.2.0"

__all__ = [
    "Checker",
    "CheckerOptions",
    "CheckerStats",
    "CheckReport",
    "CompileCache",
    "CompiledUnit",
    "Diagnostic",
    "ExecutionResult",
    "ExecutionTrace",
    "ILP32",
    "ImplementationProfile",
    "InconclusiveAnalysis",
    "Interpreter",
    "KccTool",
    "LP64",
    "Outcome",
    "OutcomeKind",
    "PROFILES",
    "Probe",
    "SearchBudget",
    "SearchOptions",
    "SearchResult",
    "StaticViolation",
    "TraceRecorderProbe",
    "UBKind",
    "UndefinedBehaviorError",
    "WIDE_INT",
    "check_many",
    "check_program",
    "compile_shared",
    "content_hash",
    "iter_check_many",
    "run_program",
    "__version__",
]
