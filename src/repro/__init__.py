"""repro — a semantics-based undefinedness checker for C.

This package reproduces the system of Ellison & Roșu, *Defining the
Undefinedness of C*: an executable semantics of a large C subset extended
with the checks needed to detect undefined behavior at run time, plus the
test suites and baseline analyzers used in the paper's evaluation.

Quickstart::

    from repro import check_program

    report = check_program('''
        int main(void) {
            int x = 0;
            return (x = 1) + (x = 2);
        }
    ''')
    print(report.render())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
reproduction of the paper's Figure 2 and Figure 3.
"""

from repro.cfront.ctypes import ILP32, LP64, WIDE_INT, ImplementationProfile, PROFILES
from repro.core.config import CheckerOptions
from repro.core.interpreter import ExecutionResult, Interpreter
from repro.core.kcc import CheckReport, KccTool, check_program, run_program
from repro.errors import (
    Outcome,
    OutcomeKind,
    StaticViolation,
    UBKind,
    UndefinedBehaviorError,
)

__version__ = "1.0.0"

__all__ = [
    "CheckerOptions",
    "CheckReport",
    "ExecutionResult",
    "ILP32",
    "ImplementationProfile",
    "Interpreter",
    "KccTool",
    "LP64",
    "Outcome",
    "OutcomeKind",
    "PROFILES",
    "StaticViolation",
    "UBKind",
    "UndefinedBehaviorError",
    "WIDE_INT",
    "check_program",
    "run_program",
    "__version__",
]
