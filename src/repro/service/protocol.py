"""The checking-service wire protocol: newline-delimited JSON frames.

One frame per line, UTF-8 JSON objects.  Client-to-server frames carry an
``op``; server-to-client frames carry an ``event``.  Every job-bearing
request names a client-chosen job ``id`` (unique per connection), and every
frame the server emits about that job echoes it back as ``job``, so one
connection can multiplex any number of concurrent jobs.

Request vocabulary (``op``):

=========  ================================================================
``check``  ``sources`` (list of ``[filename, source]`` pairs or bare
           strings), optional ``options``, ``search`` (bool), ``budget``
           (a ``paths=256,seconds=5`` spec used when ``search`` is true).
``fuzz``   ``seed``, ``count``, ``inject``, optional ``options``.
``search`` ``source``, optional ``filename``, ``strategy``, ``budget``,
           ``seed``, ``options`` — full evaluation-order search of one
           program.
``unit``   ``spec`` (a campaign spec dict) plus ``unit`` (one work-unit
           dict): execute one relocatable campaign work unit and return
           its result — the primitive remote campaign schedulers dispatch.
``campaign`` ``spec`` only: partition and run a whole campaign on the
           service, streaming ``campaign-progress`` aggregate snapshots.
``cancel`` ``id`` of the job to cancel.
``ping``   liveness round-trip.
``stats``  server counters plus warm-pool state.
=========  ================================================================

Response vocabulary (``event``): ``hello`` (sent once on connect),
``accepted``, ``progress`` (``done``/``total``), ``report`` (one
``CheckReport.to_dict()`` per checked program, with its input ``index``),
``result`` (a fuzz campaign's ``CampaignResult.to_dict()``, a work unit's
result dict, or a campaign's canonical aggregate), ``campaign-progress``
(an incremental aggregate snapshot — the live results plane), ``done``
(terminal; ``status`` is ``ok`` / ``error`` / ``cancelled``), ``error``
(malformed or failed requests; ``code`` plus ``message``), ``pong``,
``stats``.  Report and result payloads reuse the established ``to_dict()``
vocabulary unchanged — a service consumer parses exactly what
``kcc-check --format json`` prints.

Every frame is validated on receipt; a malformed line yields an ``error``
frame (``code="protocol"``) instead of a dropped connection, so one bad
request cannot take down the stream of a well-formed concurrent job.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS

#: Protocol identifier, announced in the ``hello`` frame.
PROTOCOL = "repro.service/1"

#: Ops that start a job (carry an ``id``, end with a ``done`` frame).
JOB_OPS = ("check", "fuzz", "search", "unit", "campaign")
#: Ops answered inline with a single frame.
CONTROL_OPS = ("cancel", "ping", "stats")

#: Terminal job statuses (the ``status`` field of a ``done`` frame).
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_CANCELLED = "cancelled"

#: ``error`` frame codes.
ERROR_PROTOCOL = "protocol"  # unparseable or structurally invalid frame
ERROR_BAD_REQUEST = "bad-request"  # well-formed frame, bad contents
ERROR_INTERNAL = "internal"  # the job itself raised

_MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """A frame violated the protocol; ``code`` picks the error-frame code."""

    def __init__(self, message: str, *, code: str = ERROR_PROTOCOL) -> None:
        super().__init__(message)
        self.code = code


def encode_frame(frame: dict[str, Any]) -> bytes:
    """One frame as a newline-terminated JSON line."""
    line = json.dumps(frame, separators=(",", ":"), sort_keys=True)
    return (line + "\n").encode("utf-8")


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one line into a frame dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        if len(line) > _MAX_FRAME_BYTES:
            raise ProtocolError("frame exceeds the 64 MiB limit")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not UTF-8: {error}") from None
    try:
        frame = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be an object, got {type(frame).__name__}")
    return frame


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------


def _bad(message: str) -> ProtocolError:
    return ProtocolError(message, code=ERROR_BAD_REQUEST)


def _require_str(frame: dict[str, Any], field: str, what: str) -> str:
    value = frame.get(field)
    if not isinstance(value, str):
        raise _bad(f"{frame.get('op', '?')!r} request needs {field!r} ({what})")
    return value


def normalize_sources(raw: Any) -> list[tuple[str, str]]:
    """Validate a ``check`` request's program list into (filename, source)."""
    if not isinstance(raw, list) or not raw:
        raise _bad("'check' request needs 'sources' (a non-empty list)")
    pairs: list[tuple[str, str]] = []
    for index, item in enumerate(raw):
        if isinstance(item, str):
            pairs.append((f"<input:{index}>", item))
        elif (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and all(isinstance(part, str) for part in item)
        ):
            pairs.append((item[0], item[1]))
        else:
            raise _bad(
                f"sources[{index}] must be a source string "
                "or a [filename, source] pair",
            )
    return pairs


def _validate_check(frame: dict[str, Any], request: dict[str, Any]) -> None:
    request["sources"] = normalize_sources(frame.get("sources"))
    search = frame.get("search", False)
    if not isinstance(search, bool):
        raise _bad("'check' field 'search' must be a boolean")
    request["search"] = search


def _validate_fuzz(frame: dict[str, Any], request: dict[str, Any]) -> None:
    for field, default in (("seed", 0), ("count", 100)):
        value = frame.get(field, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise _bad(f"'fuzz' field {field!r} must be a non-negative integer")
        request[field] = value
    inject = frame.get("inject", "mixed")
    if inject is not None and not isinstance(inject, str):
        raise _bad("'fuzz' field 'inject' must be a string or null")
    request["inject"] = None if inject in (None, "none", "") else inject


def _validate_search(frame: dict[str, Any], request: dict[str, Any]) -> None:
    _require_str(frame, "source", "the program text")
    request.setdefault("filename", "<input>")
    if not isinstance(request["filename"], str):
        raise _bad("'search' field 'filename' must be a string")
    strategy = frame.get("strategy", "dfs")
    if strategy not in ("dfs", "bfs", "random"):
        raise _bad(f"unknown search strategy {strategy!r}")
    request["strategy"] = strategy
    seed = frame.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise _bad("'search' field 'seed' must be an integer")
    request["seed"] = seed


def _validate_unit(frame: dict[str, Any], request: dict[str, Any]) -> None:
    # Lazy import: protocol is a leaf module; the campaign layer imports it.
    from repro.campaign.workunit import CampaignSpec, WorkUnit

    try:
        spec = CampaignSpec.from_dict(frame.get("spec"))
    except ValueError as error:
        raise _bad(f"'unit' field 'spec' is invalid: {error}") from None
    try:
        unit = WorkUnit.from_dict(frame.get("unit"))
    except ValueError as error:
        raise _bad(f"'unit' field 'unit' is invalid: {error}") from None
    if unit.spec_digest != spec.digest():
        raise _bad(
            f"unit {unit.unit_id} does not belong to the request's campaign "
            f"spec ({unit.spec_digest[:12]} vs {spec.digest()[:12]})"
        )
    request["spec"] = spec.to_dict()
    request["unit"] = unit.to_dict()
    request["options_dict"] = frame.get("options")


def _validate_campaign(frame: dict[str, Any], request: dict[str, Any]) -> None:
    from repro.campaign.workunit import CampaignSpec

    try:
        spec = CampaignSpec.from_dict(frame.get("spec"))
    except ValueError as error:
        raise _bad(f"'campaign' field 'spec' is invalid: {error}") from None
    request["spec"] = spec.to_dict()
    request["options_dict"] = frame.get("options")


def validate_request(frame: dict[str, Any]) -> dict[str, Any]:
    """Check a request frame's shape; returns it with defaults filled in.

    Raises :class:`ProtocolError` with ``code="bad-request"`` for a frame
    that parses but cannot be executed (unknown op, missing or wrongly
    typed fields, unknown option or profile names).  Payload-bearing fields
    are normalized in place — ``sources`` into pairs, ``options`` into
    :class:`CheckerOptions`, ``budget`` into a ``SearchBudget`` — so the
    server executes exactly what validation approved.
    """
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request frame needs a string 'op'")
    if op not in JOB_OPS and op not in CONTROL_OPS:
        known = ", ".join(JOB_OPS + CONTROL_OPS)
        raise _bad(f"unknown op {op!r}; expected one of {known}")
    request = dict(frame)
    if op in JOB_OPS or op == "cancel":
        _require_str(frame, "id", "a client-chosen job id string")
    if op in JOB_OPS:
        request["options"] = options_from_dict(frame.get("options"))
    if op == "check":
        _validate_check(frame, request)
    elif op == "fuzz":
        _validate_fuzz(frame, request)
    elif op == "search":
        _validate_search(frame, request)
    elif op == "unit":
        _validate_unit(frame, request)
    elif op == "campaign":
        _validate_campaign(frame, request)
    if frame.get("budget") is not None:
        from repro.kframework.search import SearchBudget

        if not isinstance(frame["budget"], str):
            raise _bad("'budget' must be a spec string like 'paths=256,seconds=5'")
        try:
            request["budget"] = SearchBudget.parse(frame["budget"])
        except ValueError as error:
            raise _bad(str(error)) from None
    else:
        request["budget"] = None
    return request


# ---------------------------------------------------------------------------
# CheckerOptions over the wire
# ---------------------------------------------------------------------------

#: Option fields a client may set, with the expected scalar type of each.
_OPTION_FIELDS: dict[str, type] = {
    "check_arithmetic": bool,
    "check_memory": bool,
    "check_sequencing": bool,
    "check_const": bool,
    "check_pointer_provenance": bool,
    "check_uninitialized": bool,
    "check_effective_types": bool,
    "check_functions": bool,
    "max_steps": int,
    "max_call_depth": int,
    "max_heap_objects": int,
    "enable_lowering": bool,
    "evaluation_order": str,
    "max_search_paths": int,
}


def options_to_dict(options: CheckerOptions) -> dict[str, Any]:
    """Serialize options for a request frame (profile travels by name)."""
    data: dict[str, Any] = {"profile": options.profile.name}
    for field in _OPTION_FIELDS:
        value = getattr(options, field)
        if value != getattr(DEFAULT_OPTIONS, field):
            data[field] = value
    return data


def options_from_dict(data: Optional[dict[str, Any]]) -> CheckerOptions:
    """Rebuild :class:`CheckerOptions` from a request frame's dict form."""
    if data is None:
        return DEFAULT_OPTIONS
    if not isinstance(data, dict):
        raise _bad("'options' must be a JSON object")
    fields: dict[str, Any] = {}
    for key, value in data.items():
        if key == "profile":
            if value not in ct.PROFILES:
                known = ", ".join(sorted(ct.PROFILES))
                raise _bad(f"unknown profile {value!r}; expected one of {known}")
            fields["profile"] = ct.PROFILES[value]
            continue
        expected = _OPTION_FIELDS.get(key)
        if expected is None:
            raise _bad(f"unknown option field {key!r}")
        if expected is bool and not isinstance(value, bool):
            raise _bad(f"option {key!r} must be a boolean")
        if expected is int and (not isinstance(value, int) or isinstance(value, bool)):
            raise _bad(f"option {key!r} must be an integer")
        if expected is str and not isinstance(value, str):
            raise _bad(f"option {key!r} must be a string")
        fields[key] = value
    return CheckerOptions(**fields)


# ---------------------------------------------------------------------------
# Response frame constructors (one place decides the field names)
# ---------------------------------------------------------------------------


def hello_frame(*, version: str, pool: dict[str, Any]) -> dict[str, Any]:
    return {"event": "hello", "protocol": PROTOCOL, "version": version, "pool": pool}


def accepted_frame(job: str, op: str, total: int) -> dict[str, Any]:
    return {"event": "accepted", "job": job, "op": op, "total": total}


def progress_frame(job: str, done: int, total: int) -> dict[str, Any]:
    return {"event": "progress", "job": job, "done": done, "total": total}


def report_frame(job: str, index: int, report: dict[str, Any]) -> dict[str, Any]:
    return {"event": "report", "job": job, "index": index, "report": report}


def result_frame(job: str, result: dict[str, Any]) -> dict[str, Any]:
    return {"event": "result", "job": job, "result": result}


def campaign_progress_frame(job: str, snapshot: dict[str, Any]) -> dict[str, Any]:
    """One incremental aggregate snapshot — the live results plane."""
    return {"event": "campaign-progress", "job": job, "snapshot": snapshot}


def done_frame(
    job: str,
    status: str,
    *,
    elapsed_seconds: Optional[float] = None,
) -> dict[str, Any]:
    frame: dict[str, Any] = {"event": "done", "job": job, "status": status}
    if elapsed_seconds is not None:
        frame["elapsed_seconds"] = round(elapsed_seconds, 6)
    return frame


def error_frame(
    message: str,
    *,
    code: str = ERROR_BAD_REQUEST,
    job: Optional[str] = None,
) -> dict[str, Any]:
    frame: dict[str, Any] = {"event": "error", "code": code, "message": message}
    if job is not None:
        frame["job"] = job
    return frame


# ---------------------------------------------------------------------------
# Request frame constructors (the client side of the same vocabulary)
# ---------------------------------------------------------------------------


def check_request(
    job: str,
    sources: Iterable[Any],
    *,
    options: Optional[CheckerOptions] = None,
    search: bool = False,
    budget: Optional[str] = None,
) -> dict[str, Any]:
    """The client-side constructor for a ``check`` request frame."""
    listed = [item if isinstance(item, str) else list(item) for item in sources]
    frame: dict[str, Any] = {
        "op": "check",
        "id": job,
        "sources": listed,
        "search": search,
    }
    if options is not None:
        frame["options"] = options_to_dict(options)
    if budget is not None:
        frame["budget"] = budget
    return frame


def fuzz_request(
    job: str,
    *,
    seed: int = 0,
    count: int = 100,
    inject: Optional[str] = "mixed",
    options: Optional[CheckerOptions] = None,
) -> dict[str, Any]:
    frame: dict[str, Any] = {
        "op": "fuzz",
        "id": job,
        "seed": seed,
        "count": count,
        "inject": inject,
    }
    if options is not None:
        frame["options"] = options_to_dict(options)
    return frame


def search_request(
    job: str,
    source: str,
    *,
    filename: str = "<input>",
    strategy: str = "dfs",
    seed: int = 0,
    budget: Optional[str] = None,
    options: Optional[CheckerOptions] = None,
) -> dict[str, Any]:
    frame: dict[str, Any] = {
        "op": "search",
        "id": job,
        "source": source,
        "filename": filename,
        "strategy": strategy,
        "seed": seed,
    }
    if budget is not None:
        frame["budget"] = budget
    if options is not None:
        frame["options"] = options_to_dict(options)
    return frame


def unit_request(
    job: str,
    spec: dict[str, Any],
    unit: dict[str, Any],
    *,
    options: Optional[CheckerOptions] = None,
) -> dict[str, Any]:
    """Execute one campaign work unit remotely."""
    frame: dict[str, Any] = {"op": "unit", "id": job, "spec": spec, "unit": unit}
    if options is not None:
        frame["options"] = options_to_dict(options)
    return frame


def campaign_request(
    job: str,
    spec: dict[str, Any],
    *,
    options: Optional[CheckerOptions] = None,
) -> dict[str, Any]:
    """Run a whole campaign on the service (progress streamed)."""
    frame: dict[str, Any] = {"op": "campaign", "id": job, "spec": spec}
    if options is not None:
        frame["options"] = options_to_dict(options)
    return frame


__all__ = [
    "CONTROL_OPS",
    "ERROR_BAD_REQUEST",
    "ERROR_INTERNAL",
    "ERROR_PROTOCOL",
    "JOB_OPS",
    "PROTOCOL",
    "STATUS_CANCELLED",
    "STATUS_ERROR",
    "STATUS_OK",
    "ProtocolError",
    "accepted_frame",
    "campaign_progress_frame",
    "campaign_request",
    "check_request",
    "decode_frame",
    "done_frame",
    "encode_frame",
    "error_frame",
    "fuzz_request",
    "hello_frame",
    "normalize_sources",
    "options_from_dict",
    "options_to_dict",
    "progress_frame",
    "report_frame",
    "result_frame",
    "search_request",
    "unit_request",
    "validate_request",
]
