"""End-to-end smoke drive of ``kcc-check serve`` (the CI ``serve-smoke`` job).

Starts a real server subprocess on a unix socket, drives a mixed workload —
concurrent check batches from eight clients, a fuzz campaign, an
evaluation-order search, a mid-job cancellation — asserts every verdict is
identical to a direct in-process :class:`repro.api.Checker`, then sends
SIGTERM and verifies the drain: exit code 0 and an empty process group (no
orphaned warm-pool workers).

Run it as ``python -m repro.service.smoke``; exits non-zero on any failure.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Optional

CLIENTS = 8

#: The check workload: defined and undefined programs, plus a static error.
PROGRAMS = [
    "int main(void) { return 0; }",
    "int main(void) { int x = 0; return 1 / x; }",
    "int main(void) { int i = 0; return i++ + i++; }",
    "int main(void) { int *p = 0; return *p; }",
    "int main(void) { int a[2] = {1, 2}; return a[0] + a[1]; }",
    'int main(void) { return "x" + 1 == 0; }',
]

SEARCH_PROGRAM = "int main(void) { int i = 0; return (i = 1) + (i = 2); }"


def _spawn_server(socket_path: pathlib.Path) -> subprocess.Popen:
    src_root = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p],
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--socket",
        str(socket_path),
        "--jobs",
        "2",
    ]
    # Its own session: the server and its pool workers form one process
    # group, so "no orphans" is one killpg probe at the end.
    return subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        start_new_session=True,
    )


def _wait_for_socket(
    socket_path: pathlib.Path,
    process: subprocess.Popen,
    timeout: float = 120.0,
) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            output = process.stdout.read() if process.stdout else ""
            raise RuntimeError(f"server exited before binding:\n{output}")
        if socket_path.exists():
            return
        time.sleep(0.05)
    raise RuntimeError("server did not bind its socket in time")


def _client_workload(
    endpoint: str,
    worker: int,
    expected: list[dict],
    failures: list[str],
) -> None:
    from repro.service.client import ServiceClient

    try:
        with ServiceClient(endpoint) as client:
            if worker == CLIENTS - 1:
                report = client.search(SEARCH_PROGRAM, budget="paths=16")
                if report["outcome"]["kind"] != "undefined":
                    failures.append(f"worker {worker}: search missed the UB")
            elif worker == CLIENTS - 2:
                result = client.fuzz(seed=3, count=8, inject="mixed")
                if result["cases"] != 8:
                    failures.append(f"worker {worker}: fuzz ran {result['cases']}/8")
            else:
                reports = client.check(PROGRAMS)
                if reports != expected:
                    failures.append(f"worker {worker}: verdicts differ from serial")
    except Exception as error:
        failures.append(f"worker {worker}: {type(error).__name__}: {error}")


def _cancellation_exercise(endpoint: str, failures: list[str]) -> None:
    from repro.service.client import JobCancelled, ServiceClient

    try:
        with ServiceClient(endpoint) as client:
            job = client.next_job_id()

            def on_event(frame: dict) -> None:
                if frame.get("event") == "progress":
                    client.cancel(job)

            try:
                client.check(PROGRAMS * 10, job=job, on_event=on_event)
            except JobCancelled as cancelled:
                if len(cancelled.partial) >= len(PROGRAMS) * 10:
                    failures.append("cancel: job ran to completion anyway")
            else:
                failures.append("cancel: job was never cancelled")
    except Exception as error:
        failures.append(f"cancel: {type(error).__name__}: {error}")


def main(argv: Optional[list[str]] = None) -> int:
    from repro.api.session import Checker
    from repro.service.client import ServiceClient

    failures: list[str] = []
    expected = [report.to_dict() for report in Checker().check_many(PROGRAMS)]
    with tempfile.TemporaryDirectory(prefix="kcc-serve-smoke-") as tempdir:
        socket_path = pathlib.Path(tempdir) / "serve.sock"
        process = _spawn_server(socket_path)
        try:
            _wait_for_socket(socket_path, process)
            endpoint = f"unix:{socket_path}"
            threads = [
                threading.Thread(
                    target=_client_workload,
                    args=(endpoint, worker, expected, failures),
                )
                for worker in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300.0)
            _cancellation_exercise(endpoint, failures)
            with ServiceClient(endpoint) as client:
                client.ping()
                stats = client.stats()
                if stats["jobs_completed"] < CLIENTS:
                    failures.append(f"stats: only {stats['jobs_completed']} jobs done")
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=120.0)
            if process.returncode != 0:
                failures.append(f"server exited {process.returncode} on SIGTERM")
            # The server was its process group's leader; after a clean drain
            # nothing in the group may survive.
            try:
                os.killpg(process.pid, 0)
            except ProcessLookupError:
                pass
            else:
                failures.append("orphaned processes survived the drain")
        finally:
            if process.poll() is None:
                with contextlib.suppress(ProcessLookupError):
                    os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=30.0)
    if failures:
        for failure in failures:
            print(f"serve-smoke FAIL: {failure}")
        return 1
    print(
        f"serve-smoke OK: {CLIENTS} concurrent clients, verdicts identical "
        "to serial, cancel honored, drained with no orphans",
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
