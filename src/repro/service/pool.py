"""The process-wide warm worker pool (Layer 1 of :mod:`repro.service`).

The PR-1 pool stood up a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
for every ``run_pooled`` call: each batch paid a full worker spawn, a probe
round-trip, cold imports in every worker, and per-item pickled tasks — on
small batches the overhead exceeded the work, and ``jobs=4`` measured *slower*
than serial.  This module replaces that with a **persistent** pool:

* **One pool per process, spawned lazily and kept warm.**  ``get_pool(jobs)``
  returns a process-wide singleton whose workers outlive any single batch;
  growing the worker count replaces the pool once, shrinking never does.
  The "can this host spawn processes at all?" probe verdict is cached, so a
  sandboxed host pays the failed-spawn discovery exactly once and every
  later call falls back to serial immediately.

* **Warm workers.**  Each worker pre-imports the heavy ``repro`` modules in
  its initializer and holds the process-shared compile cache
  (:data:`repro.api.session.SHARED_COMPILE_CACHE`) plus a per-configuration
  tool cache across tasks, so repeated batches re-use parses instead of
  re-warming from scratch.

* **Batched submission with explicit chunk framing.**  Work ships as chunk
  tasks (``fn`` + a slice of items in one future) rather than per-item
  futures, amortizing pickling and future bookkeeping; results preserve
  input order.  :func:`run_staged` additionally splits a task into a
  ``header`` pickled once per chunk and per-item payloads, so batch callers
  stop shipping their configuration ``len(tasks)`` times.

* **File-backed corpus handoff.**  When a staged item list pickles past
  :data:`STAGE_THRESHOLD_BYTES`, it is written to a spool file once and
  workers receive ``(path, digest, span)`` references; each worker loads
  and caches the payload by digest, so a large corpus crosses the process
  boundary once per worker instead of once per chunk.

The ``jobs=N``-equals-serial byte-identity guarantee is untouched: chunking
only changes *where* an item runs, and every seeded subsystem derives its
randomness per item (:mod:`repro.seeding`), never per worker.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import tempfile
import threading
import warnings
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "DEFAULT_CHUNKSIZE",
    "STAGE_THRESHOLD_BYTES",
    "WarmPool",
    "get_pool",
    "pool_stats",
    "resolve_jobs",
    "run_pooled",
    "run_staged",
    "shutdown_pool",
]

#: How many items one chunk task carries by default; larger chunks amortize
#: pickling and per-future overhead, smaller chunks stream results sooner.
DEFAULT_CHUNKSIZE = 8

#: Staged item lists whose pickled size exceeds this are handed to workers
#: by file reference (see module docstring) instead of inline in each chunk.
STAGE_THRESHOLD_BYTES = 256 * 1024

#: Worker-side payload cache: at most this many staged corpora stay loaded.
_PAYLOAD_CACHE_ENTRIES = 4


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None`` means one worker per CPU; values are clamped to >= 1."""
    if jobs is None:
        return os.cpu_count() or 1
    return max(1, int(jobs))


# ---------------------------------------------------------------------------
# Worker side: warm-up, chunk execution, staged-payload cache
# ---------------------------------------------------------------------------


def _warm_worker() -> None:  # pragma: no cover - runs in the worker process
    """Pool initializer: pre-import the modules every task would pull in.

    A cold worker used to pay these imports inside its first task; paying
    them at spawn keeps task latency flat from the first submission on.
    """
    import repro.api.session  # noqa: F401  (SHARED_COMPILE_CACHE lives here)
    import repro.core.interpreter  # noqa: F401
    import repro.core.kcc  # noqa: F401
    import repro.core.lowering  # noqa: F401
    import repro.fuzz.generator  # noqa: F401
    import repro.fuzz.oracles  # noqa: F401
    import repro.kframework.engine  # noqa: F401


def _probe() -> bool:  # pragma: no cover - runs in the worker process
    return True


_payload_cache: dict[str, Any] = {}


def _load_payload(ref: tuple[str, str]) -> Any:
    """Load (and cache) a file-staged payload in this worker process."""
    path, digest = ref
    cached = _payload_cache.get(digest)
    if cached is not None:
        return cached
    with open(path, "rb") as handle:
        data = handle.read()
    actual = hashlib.sha256(data).hexdigest()
    if actual != digest:
        raise RuntimeError(
            f"staged payload {path} digest mismatch: "
            f"expected {digest[:12]}..., read {actual[:12]}..."
        )
    payload = pickle.loads(data)
    while len(_payload_cache) >= _PAYLOAD_CACHE_ENTRIES:
        _payload_cache.pop(next(iter(_payload_cache)))
    _payload_cache[digest] = payload
    return payload


def _reap_after_task() -> None:
    """Reap any stray forked children a task left behind.

    Search tasks fork prefix checkpoints (:mod:`repro.kframework.engine`);
    in a short-lived pool a leaked child died with its worker, but warm
    workers live for the process lifetime, so each chunk sweeps zombies
    before returning.
    """
    try:
        from repro.kframework.engine import reap_stray_children
    except ImportError:  # pragma: no cover - partial installs
        return
    reap_stray_children()


def _run_chunk(fn: Callable[[Any], Any], items: Sequence[Any]) -> list:
    """Chunk task: apply ``fn`` to each item (module-level: picklable)."""
    try:
        return [fn(item) for item in items]
    finally:
        _reap_after_task()


def _run_staged_chunk(
    fn: Callable[[Any, Any], Any],
    header: Any,
    payload: Any,
    span: Optional[tuple[int, int]],
) -> list:
    """Staged chunk task: ``fn(header, item)`` over an inline or staged span."""
    if span is not None:
        items = _load_payload(payload)[span[0] : span[1]]
    else:
        items = payload
    try:
        return [fn(header, item) for item in items]
    finally:
        _reap_after_task()


# ---------------------------------------------------------------------------
# The pool object and the process-wide singleton
# ---------------------------------------------------------------------------


class WarmPool:
    """A persistent process pool with warm workers and chunked submission."""

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self.batches_run = 0
        self._lock = threading.Lock()
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_warm_worker
        )
        # ProcessPoolExecutor spawns lazily; force one worker up now so a
        # host that cannot spawn fails here, where get_pool() can fall back.
        self._executor.submit(_probe).result()

    # -- submission -----------------------------------------------------------
    def submit_chunk(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Future:
        """Submit one chunk; the future resolves to the list of results."""
        return self._executor.submit(_run_chunk, fn, list(items))

    def submit_staged_chunk(
        self,
        fn: Callable[[Any, Any], Any],
        header: Any,
        payload: Any,
        span: Optional[tuple[int, int]] = None,
    ) -> Future:
        """Submit one staged chunk (``fn(header, item)`` per item)."""
        return self._executor.submit(_run_staged_chunk, fn, header, payload, span)

    def run_batched(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        chunksize: Optional[int] = None,
    ) -> list:
        """Map ``fn`` over ``tasks`` in order, one future per chunk."""
        tasks = list(tasks)
        size = self._effective_chunksize(len(tasks), chunksize)
        futures = [self.submit_chunk(fn, chunk) for chunk in _chunked(tasks, size)]
        return self._collect(futures)

    def run_staged(
        self,
        fn: Callable[[Any, Any], Any],
        header: Any,
        items: Sequence[Any],
        *,
        chunksize: Optional[int] = None,
    ) -> list:
        """Map ``fn(header, item)`` over ``items`` in order.

        ``header`` is pickled once per chunk; when the item list itself is
        large it is staged to a spool file and shipped by reference.
        """
        items = list(items)
        size = self._effective_chunksize(len(items), chunksize)
        spans = [
            (start, min(start + size, len(items)))
            for start in range(0, len(items), size)
        ]
        staged_path: Optional[str] = None
        try:
            payload_blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
            if len(payload_blob) >= STAGE_THRESHOLD_BYTES and len(spans) > 1:
                staged_path, digest = _stage_blob(payload_blob)
                ref = (staged_path, digest)
                futures = [
                    self.submit_staged_chunk(fn, header, ref, span)
                    for span in spans
                ]
            else:
                futures = [
                    self.submit_staged_chunk(fn, header, items[lo:hi], None)
                    for lo, hi in spans
                ]
            return self._collect(futures)
        finally:
            if staged_path is not None:
                try:
                    os.unlink(staged_path)
                except OSError:  # pragma: no cover - already gone
                    pass

    def _collect(self, futures: Sequence[Future]) -> list:
        try:
            results = []
            for future in futures:
                results.extend(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        with self._lock:
            self.batches_run += 1
        return results

    def _effective_chunksize(self, total: int, chunksize: Optional[int]) -> int:
        if chunksize is not None:
            return max(1, int(chunksize))
        if total <= self.workers:
            return 1
        # Aim for a few chunks per worker so stragglers rebalance, while
        # keeping chunks big enough to amortize the round-trip.
        per_worker = max(1, total // (self.workers * 4))
        return min(DEFAULT_CHUNKSIZE, per_worker)

    # -- lifecycle ------------------------------------------------------------
    @property
    def alive(self) -> bool:
        broken = getattr(self._executor, "_broken", False)
        shutdown = getattr(self._executor, "_shutdown_thread", False)
        return not broken and not shutdown

    def stats(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "alive": self.alive,
            "batches_run": self.batches_run,
        }

    def shutdown(self, *, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait, cancel_futures=True)


def _chunked(items: list, size: int) -> list[list]:
    return [items[start : start + size] for start in range(0, len(items), size)]


def _stage_blob(blob: bytes) -> tuple[str, str]:
    """Write a pickled payload to a spool file; returns (path, digest)."""
    digest = hashlib.sha256(blob).hexdigest()
    fd, path = tempfile.mkstemp(prefix="repro-pool-", suffix=".pkl")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
    except BaseException:  # pragma: no cover - disk full etc.
        os.unlink(path)
        raise
    return path, digest


_lock = threading.RLock()
_pool: Optional[WarmPool] = None
_spawn_failed = False


def get_pool(jobs: Optional[int] = None) -> Optional[WarmPool]:
    """The process-wide warm pool with at least ``jobs`` workers.

    Returns ``None`` where the host forbids subprocesses — the failed-spawn
    verdict is cached, so only the first call pays the discovery (and emits
    the one observable "running serially" warning).
    """
    global _pool, _spawn_failed
    want = resolve_jobs(jobs)
    with _lock:
        if _spawn_failed:
            return None
        if _pool is not None and _pool.alive and _pool.workers >= want:
            return _pool
        # Grow (or replace a broken pool): never shrink a healthy one.
        target = max(want, _pool.workers if _pool is not None else 1)
        old, _pool = _pool, None
        if old is not None:
            old.shutdown(wait=False)
        try:
            _pool = WarmPool(target)
        except (OSError, PermissionError, BrokenExecutor):
            _spawn_failed = True
            # The degradation must be observable: a caller who asked for
            # jobs=N should not attribute a serial run's wall time to the
            # tool.  Warned once per process by the cached verdict above.
            warnings.warn(
                "cannot spawn worker processes; running serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return _pool


def shutdown_pool(*, wait: bool = True) -> None:
    """Shut the process-wide pool down (tests, service drain, interpreter exit)."""
    global _pool
    with _lock:
        pool, _pool = _pool, None
    if pool is not None:
        pool.shutdown(wait=wait)


def pool_stats() -> dict[str, Any]:
    """Introspection for ``kcc-check serve`` stats frames and tests."""
    with _lock:
        if _pool is None:
            return {
                "workers": 0,
                "alive": False,
                "batches_run": 0,
                "spawn_failed": _spawn_failed,
            }
        stats = _pool.stats()
        stats["spawn_failed"] = _spawn_failed
        return stats


atexit.register(shutdown_pool, wait=False)


# ---------------------------------------------------------------------------
# Call-site conveniences (the run_pooled shape the rest of the tree uses)
# ---------------------------------------------------------------------------


def run_pooled(
    fn: Callable[[Any], Any],
    tasks: Sequence,
    *,
    jobs: Optional[int],
    chunksize: Optional[int] = None,
) -> list:
    """Map ``fn`` over ``tasks`` on the warm pool, preserving order.

    Falls back to the calling process when ``jobs`` resolves to 1 or the
    host cannot spawn workers.  ``fn`` and the tasks must be picklable.
    """
    worker_count = resolve_jobs(jobs)
    if worker_count <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    pool = get_pool(min(worker_count, len(tasks)))
    if pool is None:  # pragma: no cover - sandboxed hosts
        return [fn(task) for task in tasks]
    return pool.run_batched(fn, tasks, chunksize=chunksize)


def run_staged(
    fn: Callable[[Any, Any], Any],
    header: Any,
    items: Sequence,
    *,
    jobs: Optional[int],
    chunksize: Optional[int] = None,
) -> list:
    """Map ``fn(header, item)`` over ``items``, staging large item lists.

    The serial fallback (``jobs=1``, single item, or no subprocess support)
    applies ``fn`` in the calling process — verdicts are identical either
    way; only transport changes.
    """
    worker_count = resolve_jobs(jobs)
    if worker_count <= 1 or len(items) <= 1:
        return [fn(header, item) for item in items]
    pool = get_pool(min(worker_count, len(items)))
    if pool is None:  # pragma: no cover - sandboxed hosts
        return [fn(header, item) for item in items]
    return pool.run_staged(fn, header, items, chunksize=chunksize)
