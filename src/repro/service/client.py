"""Blocking client for the ``kcc-check serve`` checking service.

:class:`ServiceClient` connects to an endpoint string — ``unix:/path`` or
``tcp:host:port``, exactly what ``kcc-check serve`` prints and
:func:`repro.service.serve_in_background` yields — and exposes the three
job kinds as ordinary method calls that block until the job's terminal
``done`` frame::

    with ServiceClient(endpoint) as client:
        reports = client.check(["int main(void){return 0;}"])
        campaign = client.fuzz(seed=7, count=40)

Payloads are the service's JSON dicts (the same ``to_dict()`` shapes the
CLI prints); the client never rehydrates report objects.  ``on_event``
callbacks observe ``accepted``/``progress`` frames as they stream.

Sends are lock-protected, so :meth:`cancel` may be called from another
thread while a job call is blocked in its receive loop — the driving call
then raises :class:`JobCancelled` carrying whatever reports arrived before
the job stopped.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
from typing import Any, Callable, Iterable, Optional

from repro.core.config import CheckerOptions
from repro.service import protocol


class ServiceError(Exception):
    """The service reported an error, or the connection failed."""

    def __init__(self, message: str, *, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


class JobCancelled(ServiceError):
    """A job ended with ``status="cancelled"``; partial results attached."""

    def __init__(self, message: str, *, partial: list) -> None:
        super().__init__(message, code=protocol.STATUS_CANCELLED)
        self.partial = partial


def _connect(endpoint: str, timeout: Optional[float]) -> socket.socket:
    try:
        if endpoint.startswith("unix:"):
            if not hasattr(socket, "AF_UNIX"):
                raise ServiceError("unix-socket endpoints need AF_UNIX support")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(endpoint[len("unix:") :])
            return sock
        if endpoint.startswith("tcp:"):
            endpoint = endpoint[len("tcp:") :]
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            raise ServiceError(
                f"bad endpoint {endpoint!r}; expected unix:PATH or HOST:PORT",
            )
        return socket.create_connection((host, int(port)), timeout=timeout)
    except OSError as error:
        raise ServiceError(f"cannot connect to {endpoint!r}: {error}") from None


class ServiceClient:
    """A blocking NDJSON client; one in-flight job call per instance.

    The receive loop is single-threaded by design: drive one job at a time
    per client, and open more clients for concurrency (the service
    multiplexes all of them over one warm pool).  The only method safe to
    call concurrently with a running job is :meth:`cancel`.
    """

    def __init__(self, endpoint: str, *, timeout: Optional[float] = 300.0) -> None:
        self.endpoint = endpoint
        self._sock = _connect(endpoint, timeout)
        self._file = self._sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._ids = itertools.count(1)
        self.hello = self._read_frame()
        if self.hello.get("event") != "hello":
            raise ServiceError(f"expected hello frame, got {self.hello!r}")

    # -- plumbing -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, frame: dict[str, Any]) -> None:
        with self._send_lock:
            self._sock.sendall(protocol.encode_frame(frame))

    def _read_frame(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by the service")
        return json.loads(line)

    def next_job_id(self) -> str:
        return f"job-{next(self._ids)}"

    # -- the job receive loop ----------------------------------------------

    def _drive(
        self,
        job_id: str,
        *,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> tuple[list[dict[str, Any]], Optional[dict[str, Any]]]:
        """Read frames until ``job_id`` terminates; return (reports, result).

        Frames addressed to other jobs — e.g. a stale ``done`` left over
        from a cancelled call, or an ``error`` for a bad ``cancel`` — are
        skipped: this loop owns the connection only for its own job.
        """
        reports: dict[int, dict[str, Any]] = {}
        result: Optional[dict[str, Any]] = None
        while True:
            frame = self._read_frame()
            if frame.get("job") != job_id:
                continue
            event = frame.get("event")
            if on_event is not None and event in ("accepted", "progress"):
                on_event(frame)
            if event == "report":
                reports[frame["index"]] = frame["report"]
            elif event == "result":
                result = frame["result"]
            elif event == "error":
                raise ServiceError(frame.get("message", "?"), code=frame.get("code"))
            elif event == "done":
                ordered = [reports[index] for index in sorted(reports)]
                status = frame.get("status")
                if status == protocol.STATUS_OK:
                    return ordered, result
                if status == protocol.STATUS_CANCELLED:
                    raise JobCancelled(
                        f"job {job_id} cancelled after {len(ordered)} report(s)",
                        partial=ordered,
                    )
                raise ServiceError(f"job {job_id} failed", code=status)

    # -- job kinds ----------------------------------------------------------

    def check(
        self,
        sources: Iterable[Any],
        *,
        options: Optional[CheckerOptions] = None,
        search: bool = False,
        budget: Optional[str] = None,
        job: Optional[str] = None,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> list[dict[str, Any]]:
        """Check a batch; returns one report dict per input, in order."""
        job_id = job if job is not None else self.next_job_id()
        self._send(
            protocol.check_request(
                job_id,
                sources,
                options=options,
                search=search,
                budget=budget,
            ),
        )
        reports, _ = self._drive(job_id, on_event=on_event)
        return reports

    def fuzz(
        self,
        *,
        seed: int = 0,
        count: int = 100,
        inject: Optional[str] = "mixed",
        options: Optional[CheckerOptions] = None,
        job: Optional[str] = None,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> dict[str, Any]:
        """Run a fuzz campaign; returns the campaign result dict."""
        job_id = job if job is not None else self.next_job_id()
        self._send(
            protocol.fuzz_request(
                job_id,
                seed=seed,
                count=count,
                inject=inject,
                options=options,
            ),
        )
        _, result = self._drive(job_id, on_event=on_event)
        if result is None:
            raise ServiceError(f"fuzz job {job_id} returned no result")
        return result

    def search(
        self,
        source: str,
        *,
        filename: str = "<input>",
        strategy: str = "dfs",
        seed: int = 0,
        budget: Optional[str] = None,
        options: Optional[CheckerOptions] = None,
        job: Optional[str] = None,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> dict[str, Any]:
        """Search one program's evaluation orders; returns its report dict."""
        job_id = job if job is not None else self.next_job_id()
        self._send(
            protocol.search_request(
                job_id,
                source,
                filename=filename,
                strategy=strategy,
                seed=seed,
                budget=budget,
                options=options,
            ),
        )
        reports, _ = self._drive(job_id, on_event=on_event)
        if not reports:
            raise ServiceError(f"search job {job_id} returned no report")
        return reports[0]

    # -- control ops --------------------------------------------------------

    def cancel(self, job: str) -> None:
        """Ask the service to stop ``job`` at its next chunk boundary."""
        self._send({"op": "cancel", "id": job})

    def ping(self) -> bool:
        self._send({"op": "ping"})
        while True:
            if self._read_frame().get("event") == "pong":
                return True

    def stats(self) -> dict[str, Any]:
        self._send({"op": "stats"})
        while True:
            frame = self._read_frame()
            if frame.get("event") == "stats":
                return frame


__all__ = ["JobCancelled", "ServiceClient", "ServiceError"]
