"""Blocking client for the ``kcc-check serve`` checking service.

:class:`ServiceClient` connects to an endpoint string — ``unix:/path`` or
``tcp:host:port``, exactly what ``kcc-check serve`` prints and
:func:`repro.service.serve_in_background` yields — and exposes the job
kinds as ordinary method calls that block until the job's terminal
``done`` frame::

    with ServiceClient(endpoint) as client:
        reports = client.check(["int main(void){return 0;}"])
        campaign = client.fuzz(seed=7, count=40)

Payloads are the service's JSON dicts (the same ``to_dict()`` shapes the
CLI prints); the client never rehydrates report objects.  ``on_event``
callbacks observe ``accepted``/``progress``/``campaign-progress`` frames
as they stream.

Transport robustness: every job the service runs is deterministic and
idempotent (per-item seed derivation — re-running a job cannot produce a
different answer), so a **dropped connection** is recoverable by policy,
not a hard error.  A job method that loses its connection mid-stream
closes the dead socket, reconnects with capped exponential backoff
(``min(cap, base * 2**(attempt-1))``), and re-issues the request from
scratch, up to ``max_retries`` times; only then does
:class:`ServiceConnectionError` propagate.  A **per-request timeout**
(``request_timeout``) bounds how long any single frame read may block —
expiry raises :class:`ServiceTimeout` and is *not* retried, because a
slow job is not a broken one (retrying would double the work and hang
just the same).  Protocol-level errors (the service answered; the answer
is an ``error`` frame) are never retried either.

Sends are lock-protected, so :meth:`cancel` may be called from another
thread while a job call is blocked in its receive loop — the driving call
then raises :class:`JobCancelled` carrying whatever reports arrived before
the job stopped.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
import time
from typing import Any, Callable, Iterable, Optional

from repro.core.config import CheckerOptions
from repro.service import protocol


class ServiceError(Exception):
    """The service reported an error, or the connection failed."""

    def __init__(self, message: str, *, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


class ServiceConnectionError(ServiceError):
    """The transport failed (connect, send, or mid-stream EOF).

    Job methods retry this with capped exponential backoff before letting
    it propagate; deterministic jobs make whole-job re-issue safe.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, code="connection")


class ServiceTimeout(ServiceError):
    """A frame read exceeded ``request_timeout``.  Never retried."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="timeout")


class JobCancelled(ServiceError):
    """A job ended with ``status="cancelled"``; partial results attached."""

    def __init__(self, message: str, *, partial: list) -> None:
        super().__init__(message, code=protocol.STATUS_CANCELLED)
        self.partial = partial


def _connect(endpoint: str, timeout: Optional[float]) -> socket.socket:
    try:
        if endpoint.startswith("unix:"):
            if not hasattr(socket, "AF_UNIX"):
                raise ServiceError("unix-socket endpoints need AF_UNIX support")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(endpoint[len("unix:") :])
            return sock
        if endpoint.startswith("tcp:"):
            endpoint = endpoint[len("tcp:") :]
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            raise ServiceError(
                f"bad endpoint {endpoint!r}; expected unix:PATH or HOST:PORT",
            )
        return socket.create_connection((host, int(port)), timeout=timeout)
    except OSError as error:
        raise ServiceConnectionError(
            f"cannot connect to {endpoint!r}: {error}"
        ) from None


class ServiceClient:
    """A blocking NDJSON client; one in-flight job call per instance.

    The receive loop is single-threaded by design: drive one job at a time
    per client, and open more clients for concurrency (the service
    multiplexes all of them over one warm pool).  The only method safe to
    call concurrently with a running job is :meth:`cancel`.

    ``timeout`` bounds the initial TCP/unix connect; ``request_timeout``
    bounds each subsequent frame read (``None``: wait forever).
    ``max_retries`` whole-job reconnect attempts are made on transport
    failure before :class:`ServiceConnectionError` propagates; set
    ``max_retries=0`` to restore fail-fast behavior.
    """

    def __init__(
        self,
        endpoint: str,
        *,
        timeout: Optional[float] = 300.0,
        request_timeout: Optional[float] = None,
        max_retries: int = 3,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        self.endpoint = endpoint
        self.connect_timeout = timeout
        self.request_timeout = request_timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Transport reconnects performed so far (tests and telemetry).
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._send_lock = threading.Lock()
        self._ids = itertools.count(1)
        self.hello: dict[str, Any] = {}
        self._ensure_connected()

    # -- plumbing -----------------------------------------------------------

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = _connect(self.endpoint, self.connect_timeout)
        sock.settimeout(self.request_timeout)
        self._sock = sock
        self._file = sock.makefile("rb")
        self.hello = self._read_frame()
        if self.hello.get("event") != "hello":
            raise ServiceError(f"expected hello frame, got {self.hello!r}")

    def close(self) -> None:
        file, sock = self._file, self._sock
        self._file = self._sock = None
        try:
            if file is not None:
                file.close()
        finally:
            if sock is not None:
                sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, frame: dict[str, Any]) -> None:
        with self._send_lock:
            if self._sock is None:
                raise ServiceConnectionError("client is not connected")
            try:
                self._sock.sendall(protocol.encode_frame(frame))
            except socket.timeout:
                raise ServiceTimeout(
                    f"send timed out after {self.request_timeout}s"
                ) from None
            except OSError as error:
                raise ServiceConnectionError(f"send failed: {error}") from None

    def _read_frame(self) -> dict[str, Any]:
        if self._file is None:
            raise ServiceConnectionError("client is not connected")
        try:
            line = self._file.readline()
        except socket.timeout:
            raise ServiceTimeout(
                f"no frame within {self.request_timeout}s"
            ) from None
        except OSError as error:
            raise ServiceConnectionError(f"receive failed: {error}") from None
        if not line:
            raise ServiceConnectionError("connection closed by the service")
        return json.loads(line)

    def next_job_id(self) -> str:
        return f"job-{next(self._ids)}"

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))

    def _run_job(
        self,
        request: dict[str, Any],
        *,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> tuple[list[dict[str, Any]], Optional[dict[str, Any]]]:
        """Issue a job request; reconnect and re-issue on transport failure.

        The whole job restarts on each retry — the service keeps no state
        for a vanished connection, and deterministic jobs return the same
        bytes on every run, so re-issue is indistinguishable from a slow
        first attempt (minus the wasted work).
        """
        job_id = request["id"]
        attempt = 0
        while True:
            try:
                self._ensure_connected()
                self._send(request)
                return self._drive(job_id, on_event=on_event)
            except ServiceConnectionError:
                self.close()
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self.reconnects += 1
                time.sleep(self._backoff(attempt))

    # -- the job receive loop ----------------------------------------------

    def _drive(
        self,
        job_id: str,
        *,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> tuple[list[dict[str, Any]], Optional[dict[str, Any]]]:
        """Read frames until ``job_id`` terminates; return (reports, result).

        Frames addressed to other jobs — e.g. a stale ``done`` left over
        from a cancelled call, or an ``error`` for a bad ``cancel`` — are
        skipped: this loop owns the connection only for its own job.
        """
        reports: dict[int, dict[str, Any]] = {}
        result: Optional[dict[str, Any]] = None
        while True:
            frame = self._read_frame()
            if frame.get("job") != job_id:
                continue
            event = frame.get("event")
            if on_event is not None and event in (
                "accepted",
                "progress",
                "campaign-progress",
            ):
                on_event(frame)
            if event == "report":
                reports[frame["index"]] = frame["report"]
            elif event == "result":
                result = frame["result"]
            elif event == "error":
                raise ServiceError(frame.get("message", "?"), code=frame.get("code"))
            elif event == "done":
                ordered = [reports[index] for index in sorted(reports)]
                status = frame.get("status")
                if status == protocol.STATUS_OK:
                    return ordered, result
                if status == protocol.STATUS_CANCELLED:
                    raise JobCancelled(
                        f"job {job_id} cancelled after {len(ordered)} report(s)",
                        partial=ordered,
                    )
                raise ServiceError(f"job {job_id} failed", code=status)

    # -- job kinds ----------------------------------------------------------

    def check(
        self,
        sources: Iterable[Any],
        *,
        options: Optional[CheckerOptions] = None,
        search: bool = False,
        budget: Optional[str] = None,
        job: Optional[str] = None,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> list[dict[str, Any]]:
        """Check a batch; returns one report dict per input, in order."""
        job_id = job if job is not None else self.next_job_id()
        request = protocol.check_request(
            job_id,
            sources,
            options=options,
            search=search,
            budget=budget,
        )
        reports, _ = self._run_job(request, on_event=on_event)
        return reports

    def fuzz(
        self,
        *,
        seed: int = 0,
        count: int = 100,
        inject: Optional[str] = "mixed",
        options: Optional[CheckerOptions] = None,
        job: Optional[str] = None,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> dict[str, Any]:
        """Run a fuzz campaign; returns the campaign result dict."""
        job_id = job if job is not None else self.next_job_id()
        request = protocol.fuzz_request(
            job_id,
            seed=seed,
            count=count,
            inject=inject,
            options=options,
        )
        _, result = self._run_job(request, on_event=on_event)
        if result is None:
            raise ServiceError(f"fuzz job {job_id} returned no result")
        return result

    def search(
        self,
        source: str,
        *,
        filename: str = "<input>",
        strategy: str = "dfs",
        seed: int = 0,
        budget: Optional[str] = None,
        options: Optional[CheckerOptions] = None,
        job: Optional[str] = None,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> dict[str, Any]:
        """Search one program's evaluation orders; returns its report dict."""
        job_id = job if job is not None else self.next_job_id()
        request = protocol.search_request(
            job_id,
            source,
            filename=filename,
            strategy=strategy,
            seed=seed,
            budget=budget,
            options=options,
        )
        reports, _ = self._run_job(request, on_event=on_event)
        if not reports:
            raise ServiceError(f"search job {job_id} returned no report")
        return reports[0]

    def run_unit(
        self,
        spec: dict[str, Any],
        unit: dict[str, Any],
        *,
        options: Optional[CheckerOptions] = None,
        job: Optional[str] = None,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> dict[str, Any]:
        """Execute one campaign work unit remotely; returns its result dict.

        This is the primitive a distributed campaign scheduler dispatches:
        the unit's result is content-addressed and placement-independent,
        so the caller can journal it exactly as if it ran locally.
        """
        job_id = job if job is not None else self.next_job_id()
        request = protocol.unit_request(job_id, spec, unit, options=options)
        _, result = self._run_job(request, on_event=on_event)
        if result is None:
            raise ServiceError(f"unit job {job_id} returned no result")
        return result

    def campaign(
        self,
        spec: dict[str, Any],
        *,
        options: Optional[CheckerOptions] = None,
        job: Optional[str] = None,
        on_event: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> dict[str, Any]:
        """Run a whole campaign on the service; returns the canonical
        aggregate.  ``on_event`` sees one ``campaign-progress`` snapshot
        per completed unit — the live results plane."""
        job_id = job if job is not None else self.next_job_id()
        request = protocol.campaign_request(job_id, spec, options=options)
        _, result = self._run_job(request, on_event=on_event)
        if result is None:
            raise ServiceError(f"campaign job {job_id} returned no result")
        return result

    # -- control ops --------------------------------------------------------

    def cancel(self, job: str) -> None:
        """Ask the service to stop ``job`` at its next chunk boundary."""
        self._send({"op": "cancel", "id": job})

    def ping(self) -> bool:
        self._ensure_connected()
        self._send({"op": "ping"})
        while True:
            if self._read_frame().get("event") == "pong":
                return True

    def stats(self) -> dict[str, Any]:
        self._ensure_connected()
        self._send({"op": "stats"})
        while True:
            frame = self._read_frame()
            if frame.get("event") == "stats":
                return frame


__all__ = [
    "JobCancelled",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeout",
]
