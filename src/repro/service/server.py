"""``kcc-check serve``: the long-lived asyncio checking service.

:class:`CheckService` listens on a unix socket or a TCP port, speaks the
newline-delimited JSON protocol of :mod:`repro.service.protocol`, and runs
every job over the process-wide warm worker pool of
:mod:`repro.service.pool`.  The event loop never executes a program itself:
jobs are cut into small chunks and each chunk runs on a pool worker (or, on
hosts that cannot spawn processes, a thread), so the loop stays free to
accept connections, interleave frames from any number of concurrent jobs,
and act on ``cancel`` requests between chunks.

Job semantics match the one-shot CLI exactly — a ``check`` job streams the
same ``to_dict()`` reports ``kcc-check check --format json`` prints, a
``fuzz`` job returns the same campaign result, and both inherit the pooled
paths' byte-identical-to-serial guarantee (randomness is derived per case,
never per worker).

Shutdown is a drain, not an abort: on ``request_stop()`` (the CLI wires
SIGTERM and SIGINT to it) the listener closes, in-flight jobs run to their
terminal ``done`` frame, clients get an EOF, and the warm pool is shut down
with ``wait=True`` so no worker process outlives the service.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence

import repro
from repro.api.batch import check_header, check_pair
from repro.service import protocol
from repro.service.pool import get_pool, pool_stats, shutdown_pool

#: Programs per check chunk / cases per fuzz chunk: the granularity of
#: progress frames and of cancellation.
CHECK_CHUNK = 4
FUZZ_CHUNK = 8


class _Job:
    """One in-flight job on one connection."""

    def __init__(self, job_id: str, op: str, total: int) -> None:
        self.id = job_id
        self.op = op
        self.total = total
        self.cancelled = False
        self.task: Optional[asyncio.Task] = None


class _Connection:
    """Per-client state: a write lock and the live job registry."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.jobs: dict[str, _Job] = {}
        self._write_lock = asyncio.Lock()

    async def send(self, frame: dict[str, Any]) -> None:
        # Concurrent job tasks share one stream; the lock keeps each frame
        # on its own line.
        async with self._write_lock:
            self.writer.write(protocol.encode_frame(frame))
            await self.writer.drain()


def _chunk_spans(total: int, size: int) -> Iterator[tuple[int, int]]:
    for start in range(0, total, size):
        yield start, min(start + size, total)


class CheckService:
    """The asyncio front end over the warm worker pool.

    One of ``socket_path`` (a unix socket) or ``host``/``port`` (TCP) picks
    the listener; with neither given the service binds ``127.0.0.1`` on an
    ephemeral port.  ``jobs`` sizes the warm pool (``None`` — one worker
    per CPU).
    """

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        jobs: Optional[int] = None,
    ) -> None:
        if socket_path is None and host is None:
            host = "127.0.0.1"
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.jobs = jobs
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None
        self._connections: set[_Connection] = set()
        self._jobs_started = 0
        self._jobs_completed = 0
        self._draining = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def endpoint(self) -> str:
        """The connect string clients pass to :class:`ServiceClient`."""
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener (and learn the ephemeral port, if any)."""
        self._stop = asyncio.Event()
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.socket_path,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
            )
            self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Begin a graceful drain (signal-handler and thread safe)."""
        if self._stop is not None:
            self._stop.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_stop`, then drain and shut down."""
        if self._server is None:
            await self.start()
        assert self._stop is not None
        await self._stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight jobs, reap the worker pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [
            job.task
            for connection in list(self._connections)
            for job in list(connection.jobs.values())
            if job.task is not None and not job.task.done()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for connection in list(self._connections):
            connection.writer.close()
            with contextlib.suppress(Exception):
                await connection.writer.wait_closed()
        # The pool workers are our children; wait for them so the service
        # never leaves zombies behind (the serve-smoke CI job asserts this).
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: shutdown_pool(wait=True))

    def stats(self) -> dict[str, Any]:
        active = sum(len(connection.jobs) for connection in self._connections)
        return {
            "event": "stats",
            "connections": len(self._connections),
            "jobs_active": active,
            "jobs_started": self._jobs_started,
            "jobs_completed": self._jobs_completed,
            "pool": pool_stats(),
        }

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        try:
            await connection.send(
                protocol.hello_frame(version=repro.__version__, pool=pool_stats()),
            )
            while not self._draining:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(connection, line)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # A vanished client abandons its jobs: flag them cancelled so
            # their loops stop scheduling chunks at the next boundary.
            for job in connection.jobs.values():
                job.cancelled = True
            self._connections.discard(connection)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(self, connection: _Connection, line: bytes) -> None:
        job_id: Optional[str] = None
        try:
            frame = protocol.decode_frame(line)
            raw_id = frame.get("id")
            job_id = raw_id if isinstance(raw_id, str) else None
            request = protocol.validate_request(frame)
        except protocol.ProtocolError as error:
            await connection.send(
                protocol.error_frame(str(error), code=error.code, job=job_id),
            )
            return
        await self._dispatch(connection, request)

    async def _dispatch(
        self,
        connection: _Connection,
        request: dict[str, Any],
    ) -> None:
        op = request["op"]
        if op == "ping":
            await connection.send({"event": "pong"})
            return
        if op == "stats":
            await connection.send(self.stats())
            return
        if op == "cancel":
            job = connection.jobs.get(request["id"])
            if job is None:
                await connection.send(
                    protocol.error_frame(
                        f"unknown job {request['id']!r}",
                        job=request["id"],
                    ),
                )
                return
            job.cancelled = True
            return
        job_id = request["id"]
        if job_id in connection.jobs:
            await connection.send(
                protocol.error_frame(f"job id {job_id!r} already active", job=job_id),
            )
            return
        total = self._job_total(request)
        job = _Job(job_id, op, total)
        connection.jobs[job_id] = job
        self._jobs_started += 1
        job.task = asyncio.create_task(self._run_job(connection, job, request))

    @staticmethod
    def _job_total(request: dict[str, Any]) -> int:
        if request["op"] == "check":
            return len(request["sources"])
        if request["op"] == "fuzz":
            return request["count"]
        if request["op"] == "campaign":
            from repro.campaign.workunit import CampaignSpec

            return CampaignSpec.from_dict(request["spec"]).units_estimate()
        return 1

    # -- job execution ------------------------------------------------------

    async def _run_job(
        self,
        connection: _Connection,
        job: _Job,
        request: dict[str, Any],
    ) -> None:
        start = time.perf_counter()
        status = protocol.STATUS_OK
        try:
            await connection.send(protocol.accepted_frame(job.id, job.op, job.total))
            if job.op == "check":
                await self._job_check(connection, job, request)
            elif job.op == "fuzz":
                await self._job_fuzz(connection, job, request)
            elif job.op == "unit":
                await self._job_unit(connection, job, request)
            elif job.op == "campaign":
                await self._job_campaign(connection, job, request)
            else:
                await self._job_search(connection, job, request)
            if job.cancelled:
                status = protocol.STATUS_CANCELLED
        except asyncio.CancelledError:
            status = protocol.STATUS_CANCELLED
        except Exception as error:  # the job failed; the connection survives
            status = protocol.STATUS_ERROR
            with contextlib.suppress(Exception):
                await connection.send(
                    protocol.error_frame(
                        f"{type(error).__name__}: {error}",
                        code=protocol.ERROR_INTERNAL,
                        job=job.id,
                    ),
                )
        finally:
            connection.jobs.pop(job.id, None)
            self._jobs_completed += 1
            with contextlib.suppress(Exception):
                await connection.send(
                    protocol.done_frame(
                        job.id,
                        status,
                        elapsed_seconds=time.perf_counter() - start,
                    ),
                )

    async def _run_chunk(self, fn, header: Any, items: Sequence[Any]) -> list:
        """One chunk on a warm worker; a thread when spawning is impossible."""
        pool = get_pool(self.jobs)
        if pool is not None:
            return await asyncio.wrap_future(
                pool.submit_staged_chunk(fn, header, list(items)),
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            lambda: [fn(header, item) for item in items],
        )

    async def _job_check(
        self,
        connection: _Connection,
        job: _Job,
        request: dict[str, Any],
    ) -> None:
        from repro.kframework.search import SearchOptions

        search_options = None
        if request["search"] and request["budget"] is not None:
            search_options = SearchOptions(budget=request["budget"])
        header = check_header(
            request["options"],
            request["search"],
            True,
            search_options,
        )
        pairs = request["sources"]
        for start, stop in _chunk_spans(len(pairs), CHECK_CHUNK):
            if job.cancelled:
                return
            reports = await self._run_chunk(check_pair, header, pairs[start:stop])
            for offset, report in enumerate(reports):
                await connection.send(
                    protocol.report_frame(job.id, start + offset, report.to_dict()),
                )
            await connection.send(protocol.progress_frame(job.id, stop, len(pairs)))

    async def _job_fuzz(
        self,
        connection: _Connection,
        job: _Job,
        request: dict[str, Any],
    ) -> None:
        from repro.fuzz.campaign import (
            CampaignConfig,
            examine_case,
            finalize_campaign,
            worker_config,
        )

        started = time.perf_counter()
        config = CampaignConfig(
            seed=request["seed"],
            count=request["count"],
            inject=request["inject"],
        )
        header = (worker_config(config), request["options"])
        records = []
        for start, stop in _chunk_spans(config.count, FUZZ_CHUNK):
            if job.cancelled:
                return
            records.extend(
                await self._run_chunk(examine_case, header, range(start, stop)),
            )
            await connection.send(protocol.progress_frame(job.id, stop, config.count))
        result = finalize_campaign(
            config,
            records,
            options=request["options"],
            elapsed_seconds=time.perf_counter() - started,
        )
        await connection.send(protocol.result_frame(job.id, result.to_dict()))

    async def _job_unit(
        self,
        connection: _Connection,
        job: _Job,
        request: dict[str, Any],
    ) -> None:
        """Execute one campaign work unit — the remote scheduler's primitive."""
        from repro.campaign.workunit import execute_unit

        if job.cancelled:
            return
        header = (request["spec"], request.get("options_dict"))
        results = await self._run_chunk(execute_unit, header, [request["unit"]])
        await connection.send(protocol.result_frame(job.id, results[0]))
        await connection.send(protocol.progress_frame(job.id, 1, 1))

    async def _job_campaign(
        self,
        connection: _Connection,
        job: _Job,
        request: dict[str, Any],
    ) -> None:
        """Partition and run a whole campaign, streaming aggregate snapshots.

        Unit results fold into a :class:`CampaignAggregate` as they land;
        every completed unit emits a ``campaign-progress`` frame — the
        live results plane — and cancellation takes effect at the next
        unit boundary.  No journal is written server-side: journaled,
        resumable campaigns are the *client* scheduler's job (it dispatches
        ``unit`` ops); this op is the convenience form for one-shot runs.
        """
        from repro.campaign.aggregate import CampaignAggregate
        from repro.campaign.workunit import (
            CampaignSpec,
            campaign_units,
            execute_unit,
        )

        spec = CampaignSpec.from_dict(request["spec"])
        loop = asyncio.get_running_loop()
        # Partitioning a search campaign runs the root program; keep the
        # event loop free while it does.
        units = await loop.run_in_executor(None, lambda: campaign_units(spec))
        header = (request["spec"], request.get("options_dict"))
        aggregate = CampaignAggregate(spec.digest(), len(units))
        for unit in units:
            if job.cancelled:
                return
            results = await self._run_chunk(execute_unit, header, [unit.to_dict()])
            aggregate.add_unit(results[0])
            await connection.send(
                protocol.campaign_progress_frame(job.id, aggregate.snapshot()),
            )
            await connection.send(
                protocol.progress_frame(job.id, aggregate.units_done, len(units)),
            )
        await connection.send(protocol.result_frame(job.id, aggregate.to_dict()))

    async def _job_search(
        self,
        connection: _Connection,
        job: _Job,
        request: dict[str, Any],
    ) -> None:
        # A search is one engine invocation; it cannot be chunked, so a
        # cancel lands either before it starts or at its natural end.
        if job.cancelled:
            return
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(None, lambda: _search_blocking(request))
        await connection.send(protocol.report_frame(job.id, 0, report.to_dict()))
        await connection.send(protocol.progress_frame(job.id, 1, 1))


def _search_blocking(request: dict[str, Any]):
    """Run one full evaluation-order search (executor thread)."""
    from repro.api.session import compile_shared, tool_for
    from repro.kframework.search import SearchBudget, SearchOptions

    options = request["options"]
    budget = request["budget"]
    if budget is None:
        budget = SearchBudget(max_paths=options.max_search_paths)
    search_options = SearchOptions(
        strategy=request["strategy"],
        budget=budget,
        seed=request["seed"],
    )
    tool = tool_for(
        options,
        search_evaluation_order=True,
        search_options=search_options,
    )
    compiled = compile_shared(
        request["source"],
        filename=request["filename"],
        options=options,
    )
    return tool.run_unit(compiled)


# ---------------------------------------------------------------------------
# In-process background serving (docs examples, tests)
# ---------------------------------------------------------------------------

_BACKGROUND_COUNTER = itertools.count(1)


@contextlib.contextmanager
def serve_in_background(
    *,
    jobs: Optional[int] = None,
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: int = 0,
):
    """Run a :class:`CheckService` on a daemon thread; yield its endpoint.

    With no listener specified, the service binds a unix socket in a fresh
    temporary directory (removed on exit).  The context manager returns
    once the service is accepting connections, and on exit requests a
    graceful drain and joins the thread — in-flight jobs finish, the warm
    pool is reaped.
    """
    tempdir: Optional[tempfile.TemporaryDirectory] = None
    if socket_path is None and host is None:
        tempdir = tempfile.TemporaryDirectory(prefix="kcc-serve-")
        socket_path = str(Path(tempdir.name) / f"svc-{next(_BACKGROUND_COUNTER)}.sock")
    started = threading.Event()
    holder: dict[str, Any] = {}

    async def main_async() -> None:
        service = CheckService(
            socket_path=socket_path,
            host=host,
            port=port,
            jobs=jobs,
        )
        try:
            await service.start()
        except Exception as error:
            holder["error"] = error
            started.set()
            return
        holder["service"] = service
        holder["loop"] = asyncio.get_running_loop()
        holder["endpoint"] = service.endpoint
        started.set()
        await service.serve_forever()

    thread = threading.Thread(
        target=lambda: asyncio.run(main_async()),
        name="kcc-serve",
        daemon=True,
    )
    thread.start()
    try:
        if not started.wait(timeout=60.0):
            raise RuntimeError("checking service failed to start in time")
        if "error" in holder:
            raise holder["error"]
        yield holder["endpoint"]
    finally:
        if "service" in holder:
            holder["loop"].call_soon_threadsafe(holder["service"].request_stop)
            thread.join(timeout=60.0)
        if tempdir is not None:
            tempdir.cleanup()


__all__ = ["CHECK_CHUNK", "FUZZ_CHUNK", "CheckService", "serve_in_background"]
