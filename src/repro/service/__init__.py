"""repro.service — the warm worker pool and the long-lived checking service.

Two layers:

* :mod:`repro.service.pool` — the process-wide **warm worker pool** every
  parallel call site routes through (``check_many(jobs=N)``, fuzz
  campaigns, harness grids, search root-shards).  Long-lived workers
  pre-import the engine, keep the shared compile cache across batches,
  take work as chunked tasks, and receive large corpora by file-backed
  reference.

* :mod:`repro.service.server` / :mod:`repro.service.client` /
  :mod:`repro.service.protocol` — the **checking service**: ``kcc-check
  serve`` accepts check/fuzz/search jobs as newline-delimited JSON over a
  socket, multiplexes concurrent clients over the warm pool, streams
  per-job progress events, and drains gracefully on SIGTERM.
  :class:`ServiceClient` is the blocking, scriptable counterpart.

The heavy submodules load lazily: importing :mod:`repro.service` (which the
pool's call sites do implicitly) must not drag in asyncio server machinery,
and the server imports those very call sites back.
"""

from __future__ import annotations

from repro.service.pool import (
    WarmPool,
    get_pool,
    pool_stats,
    run_pooled,
    run_staged,
    shutdown_pool,
)

__all__ = [
    "CheckService",
    "JobCancelled",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeout",
    "WarmPool",
    "get_pool",
    "pool_stats",
    "run_pooled",
    "run_staged",
    "serve_in_background",
    "shutdown_pool",
]

_LAZY = {
    "CheckService": "repro.service.server",
    "serve_in_background": "repro.service.server",
    "JobCancelled": "repro.service.client",
    "ServiceClient": "repro.service.client",
    "ServiceConnectionError": "repro.service.client",
    "ServiceError": "repro.service.client",
    "ServiceTimeout": "repro.service.client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
