"""Delta-debugging reduction: shrink a mismatching program, keep its failure.

``reduce_source(source, predicate)`` returns the smallest program this
reducer can find for which ``predicate(smaller_source)`` still holds.  The
predicate is a property of the *source text alone* (typically "the oracle
stack still reports the same failure signature" —
:func:`make_failure_predicate`), which is what lets a fuzz finding land in
the repository as a minimal, self-contained regression case.

The reducer alternates two deterministic passes to a fixpoint:

* a **ddmin pass** (Zeller's delta debugging) over the removable statement
  slots of the AST — top-level declarations, statements in every compound —
  removing the largest subsets that preserve the failure;
* a **structural simplification pass** over single nodes: an ``if`` becomes
  its taken-or-either branch, a loop becomes its body, a binary expression
  becomes one operand, a return value becomes a literal, a call's arguments
  become literals.

Every candidate is re-rendered with :func:`repro.cfront.to_c_source`, must
re-parse, and must still satisfy the predicate; reduction therefore can
never "wander" into a different bug unless the predicate says that bug is
the same one.
"""

from __future__ import annotations

import copy
from typing import Callable, Optional

from repro.cfront import ast as c_ast
from repro.cfront import parse, to_c_source
from repro.cfront.printer import PrinterError
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.errors import CParseError, UnsupportedFeatureError

Predicate = Callable[[str], bool]


# ---------------------------------------------------------------------------
# Predicate factory: "the oracles still report this failure signature"
# ---------------------------------------------------------------------------


def make_failure_predicate(
    case,
    signature: str,
    *,
    options: CheckerOptions = DEFAULT_OPTIONS,
    oracle_config=None,
) -> Predicate:
    """A predicate holding a reduction to one oracle-failure signature.

    ``case`` is the original :class:`~repro.fuzz.generator.FuzzCase`; each
    candidate source is re-labeled with the case's ground truth **minus**
    the output prediction (statement removal legitimately changes stdout,
    and holding the reduction to the stale prediction would pin every
    print statement in place).  The candidate fails "the same way" when any
    of its oracle failures carries ``signature``.

    Consequence: the pure output-drift signatures (``clean-stdout-drift``,
    ``clean-exit-drift``) cannot be reduced — their failure *is* the
    dropped prediction — so the campaign driver skips reduction for them
    and keeps the full generated program as the repro.
    """
    import dataclasses

    from repro.fuzz.oracles import OracleConfig, run_oracles

    oracle_config = oracle_config if oracle_config is not None else OracleConfig()

    def predicate(source: str) -> bool:
        # Only the verdict-level ground truth survives reduction; the
        # stdout/exit predictions are dropped (see the docstring).
        candidate = dataclasses.replace(
            case,
            source=source,
            predicted_stdout=None,
            predicted_exit=None,
        )
        report = run_oracles(
            candidate,
            options=options,
            oracle_config=oracle_config,
        )
        return any(failure.signature == signature for failure in report.failures)

    return predicate


# ---------------------------------------------------------------------------
# Generic ddmin
# ---------------------------------------------------------------------------


def ddmin(items: list, test: Callable[[list], bool]) -> list:
    """Zeller's ddmin: a 1-minimal sublist of ``items`` still passing ``test``.

    ``test(subset)`` must be True for the full list; the result is a subset
    for which every single-element removal makes ``test`` fail.
    """
    assert test(items), "ddmin requires the full configuration to pass"
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        starts = range(0, len(items), chunk)
        subsets = [items[start : start + chunk] for start in starts]
        reduced = False
        for index, subset in enumerate(subsets):
            lo = index * chunk
            hi = lo + len(subset)
            complement = [
                item for position, item in enumerate(items) if not lo <= position < hi
            ]
            if complement and test(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


# ---------------------------------------------------------------------------
# AST surgery
# ---------------------------------------------------------------------------


def _compounds_of(unit: c_ast.TranslationUnit) -> list[c_ast.Compound]:
    compounds = []
    for node in c_ast.walk(unit):
        if isinstance(node, c_ast.Compound):
            compounds.append(node)
    return compounds


def _statement_slots(unit: c_ast.TranslationUnit) -> list[tuple]:
    """Every removable slot: ``("top", i)`` or ``("stmt", compound, i)``.

    ``main`` itself and the final ``return`` of each function body stay, so
    the reduced program remains a runnable program.
    """
    slots: list[tuple] = []
    for index, declaration in enumerate(unit.declarations):
        if isinstance(declaration, c_ast.FunctionDef) and declaration.name == "main":
            continue
        slots.append(("top", index))
    for compound in _compounds_of(unit):
        for index, item in enumerate(compound.items):
            if isinstance(item, c_ast.Return) and index == len(compound.items) - 1:
                continue
            slots.append(("stmt", id(compound), index))
    return slots


def _apply_removals(
    unit: c_ast.TranslationUnit,
    removed: set[tuple],
) -> c_ast.TranslationUnit:
    clone = copy.deepcopy(unit)
    # Rebuild the id() mapping on the clone by walking both trees in step.
    originals = _compounds_of(unit)
    clones = _compounds_of(clone)
    id_map = {id(original): cloned for original, cloned in zip(originals, clones)}
    by_compound: dict[int, list[int]] = {}
    top_level: list[int] = []
    for slot in removed:
        if slot[0] == "top":
            top_level.append(slot[1])
        else:
            by_compound.setdefault(slot[1], []).append(slot[2])
    for compound_id, indices in by_compound.items():
        compound = id_map.get(compound_id)
        if compound is None:
            continue
        for index in sorted(indices, reverse=True):
            if index < len(compound.items):
                del compound.items[index]
    for index in sorted(top_level, reverse=True):
        del clone.declarations[index]
    return clone


def _render(unit: c_ast.TranslationUnit) -> Optional[str]:
    try:
        text = to_c_source(unit)
        parse(text)  # must stay parseable
        return text
    except (PrinterError, CParseError, UnsupportedFeatureError, RecursionError):
        return None


# ---------------------------------------------------------------------------
# Structural single-node simplifications
# ---------------------------------------------------------------------------


def _simplification_candidates(unit: c_ast.TranslationUnit):
    """Yield one clone per applicable single-node simplification.

    Lazy on purpose: the caller stops at the first accepted candidate, and
    each clone is a whole-unit deepcopy — materializing all of them up
    front would pay O(nodes) tree copies per accepted step.
    """
    nodes = list(c_ast.walk(unit))
    for position, node in enumerate(nodes):
        for replacement in _replacements_for(node):
            clone = copy.deepcopy(unit)
            clone_nodes = list(c_ast.walk(clone))
            target = clone_nodes[position]
            _replace_node(clone, target, replacement(target))
            yield clone


_Replacement = Callable[[c_ast.Node], Optional[c_ast.Node]]


def _replacements_for(node: c_ast.Node) -> list[_Replacement]:
    out: list[_Replacement] = []
    if isinstance(node, c_ast.If):
        if node.then is not None:
            out.append(lambda n: n.then)
        if node.otherwise is not None:
            out.append(lambda n: n.otherwise)
    elif isinstance(node, (c_ast.While, c_ast.DoWhile, c_ast.For)):
        if node.body is not None:
            out.append(lambda n: n.body)
    elif isinstance(node, c_ast.BinaryOp):
        out.append(lambda n: n.left)
        out.append(lambda n: n.right)
    elif isinstance(node, c_ast.Conditional):
        out.append(lambda n: n.then)
        out.append(lambda n: n.otherwise)
    elif isinstance(node, c_ast.Call):
        interesting = any(
            not isinstance(argument, c_ast.IntegerLiteral)
            for argument in node.arguments
        )
        if node.arguments and interesting:

            def _literalize(n):
                n.arguments = [c_ast.IntegerLiteral(value=1) for _ in n.arguments]
                return n

            out.append(_literalize)
    elif isinstance(node, c_ast.Comma):
        if node.right is not None:
            out.append(lambda n: n.right)
    elif isinstance(node, c_ast.Return):
        if node.value is not None and not isinstance(node.value, c_ast.IntegerLiteral):

            def _zero(n):
                n.value = c_ast.IntegerLiteral(value=0)
                return n

            out.append(_zero)
    return out


_EXPR_FIELDS = {
    c_ast.UnaryOp: ("operand",),
    c_ast.BinaryOp: ("left", "right"),
    c_ast.Assignment: ("target", "value"),
    c_ast.Conditional: ("condition", "then", "otherwise"),
    c_ast.Comma: ("left", "right"),
    c_ast.Cast: ("operand",),
    c_ast.Call: ("function",),
    c_ast.ArraySubscript: ("array", "index"),
    c_ast.Member: ("object",),
    c_ast.ExpressionStmt: ("expression",),
    c_ast.If: ("condition", "then", "otherwise"),
    c_ast.While: ("condition", "body"),
    c_ast.DoWhile: ("body", "condition"),
    c_ast.For: ("init", "condition", "step", "body"),
    c_ast.Return: ("value",),
    c_ast.Switch: ("expression", "body"),
    c_ast.Case: ("expression", "statement"),
    c_ast.Default: ("statement",),
    c_ast.Label: ("statement",),
    c_ast.Declaration: ("initializer",),
    c_ast.StaticAssert: ("condition",),
}


def _replace_node(
    unit: c_ast.TranslationUnit,
    target: c_ast.Node,
    replacement: Optional[c_ast.Node],
) -> None:
    """Replace ``target`` with ``replacement`` wherever it hangs in ``unit``."""
    if replacement is None or replacement is target:
        return
    for node in c_ast.walk(unit):
        for field_name in _EXPR_FIELDS.get(type(node), ()):
            if getattr(node, field_name, None) is target:
                setattr(node, field_name, replacement)
                return
        items = getattr(node, "items", None)
        if isinstance(items, list):
            for index, item in enumerate(items):
                if item is target:
                    items[index] = replacement
                    return
        arguments = getattr(node, "arguments", None)
        if isinstance(arguments, list):
            for index, argument in enumerate(arguments):
                if argument is target:
                    arguments[index] = replacement
                    return


# ---------------------------------------------------------------------------
# The reducer
# ---------------------------------------------------------------------------


def reduce_source(source: str, predicate: Predicate, *, max_rounds: int = 8) -> str:
    """Shrink ``source`` while ``predicate`` keeps holding.

    Returns the smallest source found (the input itself if the predicate
    does not hold on it, so callers need not special-case unreducible
    input).  Deterministic: the same input and predicate always produce the
    same reduction.
    """
    if not predicate(source):
        return source
    current = source
    for _round in range(max_rounds):
        before = current
        current = _ddmin_statements(current, predicate)
        current = _simplify_nodes(current, predicate)
        if current == before:
            break
    return current


def _ddmin_statements(source: str, predicate: Predicate) -> str:
    unit = parse(source)
    slots = _statement_slots(unit)
    if not slots:
        return source

    render_cache: dict[frozenset, Optional[str]] = {}

    def render_without(removed: frozenset) -> Optional[str]:
        if removed not in render_cache:
            render_cache[removed] = _render(_apply_removals(unit, set(removed)))
        return render_cache[removed]

    def test(kept: list) -> bool:
        removed = frozenset(slot for slot in slots if slot not in set(kept))
        text = render_without(removed)
        return text is not None and predicate(text)

    kept = set(ddmin(slots, test))
    text = render_without(frozenset(slot for slot in slots if slot not in kept))
    return text if text is not None else source


def _simplify_nodes(source: str, predicate: Predicate) -> str:
    current = source
    progress = True
    while progress:
        progress = False
        unit = parse(current)
        for candidate in _simplification_candidates(unit):
            text = _render(candidate)
            if text is None or len(text) >= len(current):
                continue
            if predicate(text):
                current = text
                progress = True
                break
    return current


__all__ = ["ddmin", "make_failure_predicate", "reduce_source"]
