"""The differential oracle stack: every way a generated program can disagree.

Each generated case is pushed through a battery of *oracles*; any oracle
failure is a mismatch worth a corpus entry, because every one of them is a
hard invariant of the system:

* ``engine-differential`` — the lowered fast path, the compiled bytecode
  VM, and the legacy walker must produce the same verdict, the same
  structured diagnostics, the same stdout, and the same exit code (PR 2's
  two-engine guarantee, extended to three engines by PR 7, under generated
  load instead of the fixed suites).  The compiled leg runs *unprobed* —
  probed runs route to the instrumented lowered IR, so only an unprobed
  run actually exercises the register-bytecode VM;
* ``event-stream`` — with trace probes attached, the two engines must emit
  the identical execution-event sequence (PR 3's guarantee);
* ``ground-truth`` — a clean case must be DEFINED with exactly the stdout
  and exit code the generator's simulation predicted; an injected case must
  be flagged with one of its template's expected :class:`UBKind`\\ s;
* ``strict-observed`` — an observed run (a ``continue_past_ub`` probe
  attached) must reach the same verdict as the strict run, and the probe's
  own first-matched event must agree with it;
* ``ablation`` — disabling the planted defect's check family must
  *un-detect* it (the planted kinds disappear from the verdict), pinning
  the check-to-family wiring;
* ``search-agreement`` (optional, off by default in campaigns — it is the
  expensive oracle) — a bounded evaluation-order search must agree with
  the single-run verdict on flaggedness;
* ``symbolic-differential`` (optional; only meaningful for cases generated
  with ``GeneratorConfig.symbolic_hole``) — the abstract interval engine
  proves the case over the hole's declared range, and any PROVED verdict
  is re-checked against concrete runs at sampled hole values including
  both endpoints.  A clean case must never be PROVED_UNDEFINED, and a
  concrete counterexample to either proof is a soundness failure.

``diagnostic_signature`` collapses a failure to a small stable key used by
the campaign driver to dedup corpus entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analyzers.base import UBVerdictProbe
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.kcc import CheckReport, KccTool
from repro.errors import OutcomeKind
from repro.events import TraceRecorderProbe
from repro.fuzz.generator import FuzzCase
from repro.kframework.search import SearchBudget, SearchOptions


@dataclass(frozen=True)
class OracleConfig:
    """Which oracles run, and how hard the optional ones try."""

    check_events: bool = True
    check_observed: bool = True
    check_ablation: bool = True
    #: Bounded evaluation-order-search agreement; costs a search per case.
    check_search: bool = False
    search_max_paths: int = 16
    #: Symbolic range proof over the case's input hole, with PROVED
    #: verdicts re-checked concretely; no-op for cases without a hole.
    check_symbolic: bool = False
    symbolic_samples: int = 5

    def to_dict(self) -> dict[str, Any]:
        return {
            "check_events": self.check_events,
            "check_observed": self.check_observed,
            "check_ablation": self.check_ablation,
            "check_search": self.check_search,
            "search_max_paths": self.search_max_paths,
            "check_symbolic": self.check_symbolic,
            "symbolic_samples": self.symbolic_samples,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OracleConfig":
        return cls(**{key: data[key] for key in cls().to_dict() if key in data})


@dataclass(frozen=True)
class OracleFailure:
    """One oracle's mismatch on one program."""

    oracle: str
    detail: str
    signature: str

    def to_dict(self) -> dict[str, str]:
        return {
            "oracle": self.oracle,
            "detail": self.detail,
            "signature": self.signature,
        }


@dataclass
class OracleReport:
    """Everything the oracle stack learned about one case."""

    case: FuzzCase
    failures: list[OracleFailure] = field(default_factory=list)
    verdict: str = ""
    detected_kind: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def add(self, oracle: str, detail: str, *, signature: str = "") -> None:
        self.failures.append(
            OracleFailure(
                oracle=oracle,
                detail=detail,
                signature=signature or f"{oracle}:{detail[:60]}",
            )
        )


def _verdict_facts(report: CheckReport) -> dict[str, Any]:
    """The comparable essence of a report (what the oracles hold equal)."""
    outcome = report.outcome
    return {
        "kind": outcome.kind.value,
        "diagnostics": [d.to_dict() for d in outcome.diagnostics()],
        "exit_code": outcome.exit_code,
        "stdout": outcome.stdout,
    }


def diagnostic_signature(report: CheckReport) -> str:
    """A short, stable key for "the same finding": kind + first diagnostic."""
    outcome = report.outcome
    diagnostics = outcome.diagnostics()
    first = diagnostics[0] if diagnostics else None
    code = first.kind or first.code or first.stage if first else "none"
    return f"{outcome.kind.value}:{code}"


def run_oracles(
    case: FuzzCase,
    *,
    options: CheckerOptions = DEFAULT_OPTIONS,
    oracle_config: OracleConfig = OracleConfig(),
) -> OracleReport:
    """Run the full oracle stack over one generated case."""
    report = OracleReport(case=case)
    lowered_tool = KccTool(options.without(engine="lowered"))
    walker_tool = KccTool(options.without(enable_lowering=False))
    vm_tool = KccTool(options.without(engine="compiled"))

    compiled = lowered_tool.compile_unit(case.source, filename=case.name)
    if compiled.parse_error is not None:
        report.add(
            "generator-wellformed",
            f"generated program failed to parse: {compiled.parse_error}",
            signature="parse-error",
        )
        return report
    if compiled.static_violations:
        first = compiled.static_violations[0]
        report.add(
            "generator-wellformed",
            f"generated program has a static violation: {first.message}",
            signature=f"static:{first.kind.name}",
        )
        return report
    walker_compiled = walker_tool.compile_unit(case.source, filename=case.name)

    # One strict run per engine; trace probes are passive, so attaching them
    # leaves the verdicts identical to unprobed runs while also feeding the
    # event-stream oracle — two runs cover two oracles.
    lowered_probe = TraceRecorderProbe(filename=case.name)
    walker_probe = TraceRecorderProbe(filename=case.name)
    lowered_report = lowered_tool.run_unit(compiled, probes=[lowered_probe])
    walker_report = walker_tool.run_unit(walker_compiled, probes=[walker_probe])
    report.verdict = lowered_report.outcome.kind.value
    kinds = lowered_report.outcome.ub_kinds
    report.detected_kind = kinds[0].name if kinds else None

    lowered_facts = _verdict_facts(lowered_report)
    walker_facts = _verdict_facts(walker_report)
    if lowered_facts != walker_facts:
        drift = [
            key for key in lowered_facts if lowered_facts[key] != walker_facts[key]
        ]
        signature = f"engine:{','.join(drift)}:{diagnostic_signature(lowered_report)}"
        report.add(
            "engine-differential",
            f"walker and lowered engines disagree on {', '.join(drift)}: "
            f"lowered={lowered_report.outcome.describe()!r} "
            f"walker={walker_report.outcome.describe()!r}",
            signature=signature,
        )

    # The third leg: an unprobed run on the compiled VM (per-function
    # bytecode with closure fallback), held to the same walker facts.
    vm_report = vm_tool.run_unit(compiled)
    vm_facts = _verdict_facts(vm_report)
    if vm_facts != walker_facts:
        drift = [key for key in vm_facts if vm_facts[key] != walker_facts[key]]
        signature = (
            f"engine-compiled:{','.join(drift)}:{diagnostic_signature(vm_report)}"
        )
        report.add(
            "engine-differential",
            f"compiled VM disagrees with the walker on {', '.join(drift)}: "
            f"compiled={vm_report.outcome.describe()!r} "
            f"walker={walker_report.outcome.describe()!r}",
            signature=signature,
        )

    if oracle_config.check_events:
        lowered_events = lowered_probe.trace.events
        walker_events = walker_probe.trace.events
        if lowered_events != walker_events:
            index = _first_divergence(lowered_events, walker_events)
            report.add(
                "event-stream",
                f"engines diverge at event {index}: "
                f"lowered={_event_at(lowered_events, index)} "
                f"walker={_event_at(walker_events, index)}",
                signature=f"events:{_event_kind_at(lowered_events, index)}",
            )

    _ground_truth_oracle(report, lowered_report)

    if oracle_config.check_observed:
        _observed_oracle(report, lowered_tool, compiled, lowered_report, options)

    if oracle_config.check_ablation and case.is_bad and case.family is not None:
        _ablation_oracle(report, options)

    if oracle_config.check_search:
        _search_oracle(report, lowered_tool, compiled, lowered_report, oracle_config)

    if oracle_config.check_symbolic and case.hole_name is not None:
        _symbolic_oracle(report, options, oracle_config)
    return report


def _first_divergence(left: list, right: list) -> int:
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return index
    return min(len(left), len(right))


def _event_at(events: list, index: int) -> str:
    return repr(events[index]) if index < len(events) else "<end>"


def _event_kind_at(events: list, index: int) -> str:
    if index < len(events):
        return str(events[index].get("event", "?"))
    return "length"


def _ground_truth_oracle(report: OracleReport, strict: CheckReport) -> None:
    case = report.case
    outcome = strict.outcome
    if not case.is_bad:
        if outcome.kind is not OutcomeKind.DEFINED:
            report.add(
                "ground-truth",
                "well-defined-by-construction program was not DEFINED: "
                f"{outcome.describe()}",
                signature=f"clean-flagged:{diagnostic_signature(strict)}",
            )
            return
        predicted_exit = case.predicted_exit
        if predicted_exit is not None and outcome.exit_code != predicted_exit:
            report.add(
                "ground-truth",
                "exit code drifted from the simulation: predicted "
                f"{case.predicted_exit}, got {outcome.exit_code}",
                signature="clean-exit-drift",
            )
        predicted_stdout = case.predicted_stdout
        if predicted_stdout is not None and outcome.stdout != predicted_stdout:
            report.add(
                "ground-truth",
                "stdout drifted from the simulation: predicted "
                f"{case.predicted_stdout!r}, got {outcome.stdout!r}",
                signature="clean-stdout-drift",
            )
        return
    if not outcome.flagged:
        report.add(
            "ground-truth",
            f"planted {case.injected} defect was not flagged: "
            f"{outcome.describe()}",
            signature=f"missed:{case.injected}",
        )
        return
    expected_kinds = case.expected_kinds
    hit = any(kind in expected_kinds for kind in outcome.ub_kinds)
    if expected_kinds and not hit:
        got = ",".join(kind.name for kind in outcome.ub_kinds) or "nothing"
        expected = ",".join(kind.name for kind in expected_kinds)
        report.add(
            "ground-truth",
            f"planted {case.injected} defect detected as {got}, "
            f"expected one of {expected}",
            signature=f"wrong-kind:{case.injected}:{got}",
        )


def _observed_oracle(
    report: OracleReport,
    tool: KccTool,
    compiled,
    strict: CheckReport,
    options: CheckerOptions,
) -> None:
    probe = UBVerdictProbe("fuzz-oracle", options)
    observed = tool.run_unit(compiled, probes=[probe])
    strict_kind = strict.outcome.kind
    observed_kind = observed.outcome.kind
    if strict_kind is not observed_kind:
        report.add(
            "strict-observed",
            f"observed run changed the verdict: strict={strict_kind.value} "
            f"observed={observed_kind.value}",
            signature=f"observed-verdict:{strict_kind.value}->{observed_kind.value}",
        )
        return
    strict_kinds = strict.outcome.ub_kinds
    observed_kinds = observed.outcome.ub_kinds
    if strict_kinds and observed_kinds and strict_kinds[0] is not observed_kinds[0]:
        report.add(
            "strict-observed",
            f"observed run reports {observed_kinds[0].name}, strict run "
            f"{strict_kinds[0].name}",
            signature=f"observed-kind:{strict_kinds[0].name}",
        )
        return
    if strict_kind is OutcomeKind.UNDEFINED:
        matched = probe.matched[0].name if probe.matched else None
        if matched != strict_kinds[0].name:
            report.add(
                "strict-observed",
                f"the full-profile probe matched {matched}, the strict "
                f"verdict is {strict_kinds[0].name}",
                signature=f"probe-kind:{strict_kinds[0].name}",
            )
    elif strict_kind is OutcomeKind.DEFINED and probe.matched is not None:
        report.add(
            "strict-observed",
            f"probe matched {probe.matched[0].name} on a program the "
            "strict run completed",
            signature=f"probe-extra:{probe.matched[0].name}",
        )


def _ablation_oracle(report: OracleReport, options: CheckerOptions) -> None:
    case = report.case
    from repro.fuzz.generator import template_for

    template = template_for(case.injected)
    if not template.gated:
        return
    ablated_options = options.without(**{f"check_{case.family}": False})
    ablated = KccTool(ablated_options).check(case.source, filename=case.name)
    if any(kind in case.expected_kinds for kind in ablated.outcome.ub_kinds):
        report.add(
            "ablation",
            f"disabling check_{case.family} still reports the planted "
            f"defect: {ablated.outcome.describe()}",
            signature=f"ablation:{case.injected}",
        )


def _search_oracle(
    report: OracleReport,
    tool: KccTool,
    compiled,
    strict: CheckReport,
    oracle_config: OracleConfig,
) -> None:
    search_options = SearchOptions(
        budget=SearchBudget(max_paths=oracle_config.search_max_paths),
        checkpoint="replay",
    )
    searched = tool.search_unit(compiled, search=search_options)
    # A search may *discover* undefinedness a single order misses, but our
    # planted defects are order-independent: flaggedness must agree.
    if searched.flagged != strict.flagged:
        report.add(
            "search-agreement",
            f"bounded search verdict {searched.outcome.describe()!r} "
            f"disagrees with the single-run verdict "
            f"{strict.outcome.describe()!r}",
            signature=f"search:{diagnostic_signature(strict)}",
        )


def _symbolic_oracle(
    report: OracleReport,
    options: CheckerOptions,
    oracle_config: OracleConfig,
) -> None:
    """Prove the case over its hole range, then spot-check the proof.

    Clean cases are well-defined for *every* hole value by construction,
    so a PROVED_UNDEFINED verdict on one is an abstract-engine soundness
    bug even before sampling.  INCONCLUSIVE is always acceptable — the
    abstract domain is allowed to give up, never to lie.
    """
    from repro.symbolic import check_proved_report, prove_source
    from repro.symbolic.prove import PROVED_UNDEFINED

    case = report.case
    proved = prove_source(
        case.source,
        inputs={case.hole_name: case.hole_range},
        options=options,
        filename=case.name,
    )
    if not case.is_bad and proved.verdict == PROVED_UNDEFINED:
        kind = proved.kind.name if proved.kind else "?"
        report.add(
            "symbolic-differential",
            "abstract engine claims a well-defined-by-construction case "
            f"is undefined ({kind}): {proved.message}",
            signature=f"symbolic-unsound:{kind}",
        )
        return
    for mismatch in check_proved_report(
        case.source,
        proved,
        options=options,
        samples=oracle_config.symbolic_samples,
        filename=case.name,
    ):
        report.add(
            "symbolic-differential",
            f"range proof refuted concretely: {mismatch.describe()}",
            signature=f"symbolic-refuted:{proved.verdict}",
        )


__all__ = [
    "OracleConfig",
    "OracleFailure",
    "OracleReport",
    "diagnostic_signature",
    "run_oracles",
]
