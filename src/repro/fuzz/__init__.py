"""``repro.fuzz``: ground-truth program generation, oracles, campaigns.

The paper's evaluation rests on fixed, hand-written suites; this package
turns the repo's machinery — two differential engines, the probe bus, the
process pool — into an *unbounded, seedable* source of labeled C programs:

* :mod:`repro.fuzz.generator` — a seeded, grammar-directed generator that
  emits programs **well-defined by construction** (it simulates every
  generated statement concretely, so each clean program carries its own
  predicted stdout and exit code), plus a UB-injection mode that plants
  exactly one known defect from templates keyed to the undefinedness
  catalog's check families;
* :mod:`repro.fuzz.oracles` — the differential oracle stack run per
  program: walker-vs-lowered equality, strict-vs-observed consistency,
  event-stream equality, ground-truth verdicts, ablation monotonicity,
  optional bounded evaluation-order-search agreement;
* :mod:`repro.fuzz.campaign` — the corpus driver: fans a campaign out over
  the process pool (verdict-identical to serial), streams mismatches to a
  replayable JSON corpus, dedups by diagnostic signature;
* :mod:`repro.fuzz.reduce` — a ddmin-style statement/expression reducer
  that shrinks any mismatching program while preserving its oracle failure.
"""

from repro.fuzz.generator import (
    FuzzCase,
    GeneratorConfig,
    INJECTION_TEMPLATES,
    UNGENERATED,
    generate_case,
    generate_cases,
    injection_families,
    template_for,
)
from repro.fuzz.oracles import OracleConfig, OracleFailure, run_oracles
from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignResult,
    CaseRecord,
    run_campaign,
    write_corpus_entry,
)
from repro.fuzz.reduce import make_failure_predicate, reduce_source

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CaseRecord",
    "FuzzCase",
    "GeneratorConfig",
    "INJECTION_TEMPLATES",
    "OracleConfig",
    "OracleFailure",
    "UNGENERATED",
    "generate_case",
    "generate_cases",
    "injection_families",
    "make_failure_predicate",
    "reduce_source",
    "run_campaign",
    "run_oracles",
    "template_for",
    "write_corpus_entry",
]
