"""Generate the C-subset UB coverage reference (``docs/coverage.md``).

The document is *generated*, never hand-edited: it renders, for every dynamic
entry of :data:`repro.ub.catalog.UB_CATALOG`, either the injection templates
that exercise it or the allowlisted reason it cannot be generated (with its
blocker category).  CI regenerates the file and fails on any diff, so the
committed reference can never drift from the code.

Usage::

    python -m repro.fuzz.coverage_doc              # rewrite docs/coverage.md
    python -m repro.fuzz.coverage_doc --check      # exit 1 if it is stale
    python -m repro.fuzz.coverage_doc --stdout     # print to stdout
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.fuzz.generator import (
    GRADUATED,
    INJECTION_TEMPLATES,
    UNGENERATED,
    UNGENERATED_CATEGORIES,
)
from repro.ub.catalog import (
    PAPER_DYNAMIC_BEHAVIORS,
    PAPER_STATIC_BEHAVIORS,
    PAPER_TOTAL_BEHAVIORS,
    UB_CATALOG,
)

DEFAULT_PATH = Path("docs/coverage.md")

_HEADER = """\
# C-subset UB fuzz coverage

<!-- GENERATED FILE — do not edit.  Regenerate with:
         python -m repro.fuzz.coverage_doc
     CI regenerates this document and fails on any diff. -->

This reference maps every *dynamically detectable* undefined behavior of the
C11 catalog (`repro.ub.catalog`) to the fuzz generator's injection templates
(`repro.fuzz.generator.INJECTION_TEMPLATES`), or — when no template can
exercise it — to its allowlisted reason in `UNGENERATED`.  Every reason names
a blocker category, so the allowlist states *why* an entry cannot graduate.

Every template below is pinned verdict-equal across all three execution
engines (tree walker, lowered closures, compiled bytecode VM) by the engine
matrix (`tests/core/test_engine_matrix.py`), and exercised against the full
oracle stack — engine differential, event-stream identity, ground truth,
strict/observed agreement, and ablation monotonicity — by the fuzz suite.
"""


def _template_index() -> dict[str, list[str]]:
    """Catalog id -> names of the templates that exercise it."""
    index: dict[str, list[str]] = {}
    for template in INJECTION_TEMPLATES:
        for identifier in template.catalog_ids:
            index.setdefault(identifier, []).append(template.name)
    return index


def _split_reason(reason: str) -> tuple[str, str]:
    category, _, detail = reason.partition(":")
    return category.strip(), detail.strip()


def render() -> str:
    """Render the complete coverage document as markdown."""
    by_id = _template_index()
    dynamic = [entry for entry in UB_CATALOG if entry.is_dynamic]
    generated = [entry for entry in dynamic if entry.identifier in by_id]
    allowlisted = [entry for entry in dynamic if entry.identifier in UNGENERATED]

    lines: list[str] = [_HEADER]
    lines.append("## Summary")
    lines.append("")
    lines.append("| | count |")
    lines.append("|---|---|")
    lines.append(
        f"| catalog entries (paper total {PAPER_TOTAL_BEHAVIORS}: "
        f"{PAPER_STATIC_BEHAVIORS} static + {PAPER_DYNAMIC_BEHAVIORS} "
        f"dynamic) | {len(UB_CATALOG)} |"
    )
    lines.append(f"| dynamic entries | {len(dynamic)} |")
    lines.append(f"| generated (covered by injection templates) | {len(generated)} |")
    lines.append(f"| allowlisted (`UNGENERATED`) | {len(allowlisted)} |")
    lines.append(f"| injection templates | {len(INJECTION_TEMPLATES)} |")
    lines.append(f"| graduated out of `UNGENERATED` | {len(GRADUATED)} |")
    lines.append("")

    lines.append("## Generated entries")
    lines.append("")
    lines.append(
        "Dynamic catalog entries exercised by at least one injection "
        "template.  All templates run on all three engines."
    )
    lines.append("")
    lines.append("| catalog entry | §C11 | injection templates |")
    lines.append("|---|---|---|")
    for entry in generated:
        names = ", ".join(f"`{name}`" for name in by_id[entry.identifier])
        lines.append(f"| `{entry.identifier}` | {entry.section} | {names} |")
    lines.append("")

    lines.append("## Allowlisted entries (`UNGENERATED`)")
    lines.append("")
    lines.append(
        "Dynamic catalog entries no template can exercise.  Categories: "
        + ", ".join(f"`{c}`" for c in UNGENERATED_CATEGORIES)
        + "."
    )
    lines.append("")
    lines.append("| catalog entry | §C11 | category | reason |")
    lines.append("|---|---|---|---|")
    for entry in allowlisted:
        category, detail = _split_reason(UNGENERATED[entry.identifier])
        lines.append(
            f"| `{entry.identifier}` | {entry.section} | `{category}` | {detail} |"
        )
    lines.append("")

    lines.append("## Graduated entries")
    lines.append("")
    lines.append(
        "Entries that once sat in `UNGENERATED` and are now generated; "
        "the catalog-coverage test pins them out of the allowlist forever."
    )
    lines.append("")
    lines.append("| catalog entry | graduated into template |")
    lines.append("|---|---|")
    for identifier, template_name in GRADUATED.items():
        lines.append(f"| `{identifier}` | `{template_name}` |")
    lines.append("")

    lines.append("## Template inventory")
    lines.append("")
    lines.append("| template | check family | expected kinds | catalog entries |")
    lines.append("|---|---|---|---|")
    for template in INJECTION_TEMPLATES:
        family = template.family or "*terminal*"
        kinds = ", ".join(f"`{kind.name}`" for kind in template.expected_kinds)
        ids = ", ".join(f"`{identifier}`" for identifier in template.catalog_ids)
        lines.append(f"| `{template.name}` | {family} | {kinds} | {ids} |")
    lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.coverage_doc",
        description="Generate (or verify) the UB fuzz-coverage reference.",
    )
    parser.add_argument(
        "output",
        nargs="?",
        type=Path,
        default=DEFAULT_PATH,
        help=f"destination markdown file (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="do not write; exit 1 if the file is stale",
    )
    parser.add_argument(
        "--stdout",
        action="store_true",
        help="print the document to stdout instead of writing",
    )
    arguments = parser.parse_args(argv)

    document = render()
    if arguments.stdout:
        sys.stdout.write(document)
        return 0
    if arguments.check:
        on_disk = arguments.output.read_text() if arguments.output.exists() else None
        if on_disk != document:
            print(
                f"{arguments.output} is stale; regenerate with "
                "`python -m repro.fuzz.coverage_doc`",
                file=sys.stderr,
            )
            return 1
        print(f"{arguments.output} is up to date")
        return 0
    arguments.output.parent.mkdir(parents=True, exist_ok=True)
    arguments.output.write_text(document)
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
