"""Fuzzing campaigns: generate, oracle-check, fan out, stream mismatches.

A campaign is a deterministic function of ``(seed, count, configs)``: case
``i`` derives every random decision from ``(seed, "fuzz", "case", i)``, so
the campaign's result is **byte-identical** whether it runs serially or
sharded round-robin over the PR-1 process pool (``jobs=N``) — randomness is
per *item*, never per *worker*.  That identity is pinned by
``tests/fuzz/test_campaign.py``.

Mismatches stream to a corpus directory as replayable JSON (the generating
``(seed, index, config)`` triple plus the rendered source and the oracle
failures), deduplicated by diagnostic signature so a systematic bug yields
one corpus entry, not ``count`` of them.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.fuzz.generator import GeneratorConfig, generate_case, regenerate
from repro.fuzz.oracles import OracleConfig, OracleReport, run_oracles
from repro.reporting import render_table

#: Corpus entries carry a schema tag so future layout changes stay readable.
CORPUS_SCHEMA = "repro.fuzz.corpus/1"


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign run depends on (picklable)."""

    seed: int = 0
    count: int = 100
    #: None → clean programs only; a family/template name → always inject
    #: from it; "mixed" → ~40% clean, else a random template.
    inject: Optional[str] = "mixed"
    jobs: int = 1
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    oracles: OracleConfig = field(default_factory=OracleConfig)
    corpus_dir: Optional[str] = None
    reduce_failures: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "count": self.count,
            "inject": self.inject,
            "jobs": self.jobs,
            "generator": self.generator.to_dict(),
            "oracles": self.oracles.to_dict(),
            "corpus_dir": self.corpus_dir,
            "reduce_failures": self.reduce_failures,
        }


@dataclass
class CaseRecord:
    """The campaign-level record of one case (small and picklable)."""

    index: int
    name: str
    injected: Optional[str]
    family: Optional[str]
    verdict: str
    detected_kind: Optional[str]
    ok: bool
    failures: list[dict[str, str]] = field(default_factory=list)
    #: Present only on mismatching cases (bounds worker→parent IPC).
    source: Optional[str] = None
    reduced_source: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "index": self.index,
            "name": self.name,
            "injected": self.injected,
            "family": self.family,
            "verdict": self.verdict,
            "detected_kind": self.detected_kind,
            "ok": self.ok,
        }
        if self.failures:
            data["failures"] = self.failures
        if self.source is not None:
            data["source"] = self.source
        if self.reduced_source is not None:
            data["reduced_source"] = self.reduced_source
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CaseRecord":
        """Rehydrate a record from its ``to_dict`` form (journal replay)."""
        return cls(
            index=data["index"],
            name=data["name"],
            injected=data.get("injected"),
            family=data.get("family"),
            verdict=data["verdict"],
            detected_kind=data.get("detected_kind"),
            ok=data["ok"],
            failures=list(data.get("failures", ())),
            source=data.get("source"),
            reduced_source=data.get("reduced_source"),
        )


@dataclass
class CampaignResult:
    """The outcome of one campaign."""

    config: CampaignConfig
    records: list[CaseRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    corpus_entries: list[str] = field(default_factory=list)

    @property
    def mismatches(self) -> list[CaseRecord]:
        return [record for record in self.records if not record.ok]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def programs_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.records) / self.elapsed_seconds

    def family_table(self) -> dict[str, dict[str, int]]:
        """Ground-truth detection per injected family (clean under "clean")."""
        table: dict[str, dict[str, int]] = {}
        for record in self.records:
            key = record.family or ("terminal" if record.injected else "clean")
            row = table.setdefault(key, {"cases": 0, "correct": 0})
            row["cases"] += 1
            if record.injected:
                correct = record.verdict != "defined"
            else:
                correct = record.verdict == "defined"
            # A case is "correct" only when no oracle complained either.
            if correct and record.ok:
                row["correct"] += 1
        return table

    def to_dict(self) -> dict[str, Any]:
        # "timing" is the one machine-dependent key: comparisons asserting
        # the jobs=N-equals-serial byte identity drop it (and config.jobs)
        # before comparing.
        return {
            "config": self.config.to_dict(),
            "cases": len(self.records),
            "mismatches": [record.to_dict() for record in self.mismatches],
            "family_table": self.family_table(),
            "records": [record.to_dict() for record in self.records],
            "corpus_entries": list(self.corpus_entries),
            "timing": {
                "elapsed_seconds": self.elapsed_seconds,
                "programs_per_second": self.programs_per_second(),
            },
        }

    def render(self) -> str:
        rows = []
        for family, row in sorted(self.family_table().items()):
            rate = f"{row['correct'] / row['cases']:.0%}" if row["cases"] else "—"
            rows.append([family, row["cases"], row["correct"], rate])
        table = render_table(
            ["family", "cases", "ground truth upheld", "rate"],
            rows,
            title=(
                f"Fuzz campaign: seed={self.config.seed} "
                f"count={self.config.count} inject={self.config.inject}"
            ),
        )
        lines = [
            table,
            "",
            f"{len(self.records)} programs, "
            f"{len(self.mismatches)} oracle mismatch(es), "
            f"{self.programs_per_second():.1f} programs/sec "
            f"({self.elapsed_seconds:.2f}s)",
        ]
        if self.corpus_entries:
            lines.append("corpus entries written:")
            lines.extend(f"  {path}" for path in self.corpus_entries)
        return "\n".join(lines)


def _examine_case(
    config: CampaignConfig,
    index: int,
    options: CheckerOptions,
) -> CaseRecord:
    case = generate_case(
        config.seed,
        index,
        config=config.generator,
        inject=config.inject,
    )
    report = run_oracles(case, options=options, oracle_config=config.oracles)
    record = CaseRecord(
        index=index,
        name=case.name,
        injected=case.injected,
        family=case.family,
        verdict=report.verdict,
        detected_kind=report.detected_kind,
        ok=report.ok,
        failures=[failure.to_dict() for failure in report.failures],
    )
    if not report.ok:
        record.source = case.source
    return record


def worker_config(config: CampaignConfig) -> CampaignConfig:
    """The per-worker view of a campaign config.

    Workers examine cases; corpus streaming and reduction happen once, in
    the driver, so the worker copy drops them (and its ``jobs``, which only
    the driver interprets).
    """
    return replace(config, jobs=1, corpus_dir=None, reduce_failures=False)


def examine_case(task_header: tuple, index: int) -> CaseRecord:
    """Pool worker: examine one case (module-level, picklable).

    ``task_header`` is ``(config, options)`` — shipped once per chunk by the
    warm pool's staged submission, never once per case.  Case ``index``
    derives all of its randomness from ``(config.seed, index)``, so the
    record is identical whichever worker (or the driver itself) runs it.
    """
    config, options = task_header
    return _examine_case(config, index, options)


def finalize_campaign(
    config: CampaignConfig,
    records: list[CaseRecord],
    *,
    options: CheckerOptions = DEFAULT_OPTIONS,
    elapsed_seconds: float = 0.0,
) -> CampaignResult:
    """Assemble a result from examined records; reduce/stream the corpus.

    Split out of :func:`run_campaign` so drivers that schedule their own
    spans — the checking service streams progress and honors cancellation
    between chunks — share the exact corpus/reduction semantics.
    """
    result = CampaignResult(config=config, records=records)
    result.elapsed_seconds = elapsed_seconds
    if config.reduce_failures:
        _reduce_mismatches(result, options)
    if config.corpus_dir is not None:
        _write_corpus(result, options)
    return result


def run_campaign(
    config: CampaignConfig,
    *,
    options: CheckerOptions = DEFAULT_OPTIONS,
    journal: Optional[str] = None,
) -> CampaignResult:
    """Run one campaign; ``jobs=N`` output is byte-identical to serial.

    With ``journal`` set, the campaign routes through :mod:`repro.campaign`
    work units instead of the flat index sweep: progress is journaled to
    the given path, a journal left by a killed run is resumed (completed
    units are never re-executed), and the result is still byte-identical —
    per-case seed derivation makes the slicing invisible.
    """
    from repro.service.pool import run_staged

    if journal is not None:
        return run_journaled_campaign(config, journal, options=options)
    start = time.perf_counter()
    indices = list(range(config.count))
    jobs = max(1, int(config.jobs))
    header = (worker_config(config), options)
    if jobs <= 1:
        records = [examine_case(header, index) for index in indices]
    else:
        # Contiguous chunks over the warm pool: per-case seed derivation
        # makes placement irrelevant to the bytes, so the simple in-order
        # chunking both preserves record order and streams results early.
        records = run_staged(examine_case, header, indices, jobs=jobs)
    return finalize_campaign(
        config, records, options=options, elapsed_seconds=time.perf_counter() - start
    )


def run_journaled_campaign(
    config: CampaignConfig,
    journal_path: str | pathlib.Path,
    *,
    options: CheckerOptions = DEFAULT_OPTIONS,
) -> CampaignResult:
    """Run (or resume) a fuzz campaign through ``repro.campaign`` units.

    The campaign is partitioned into journaled work units; an existing
    journal at ``journal_path`` is resumed (only missing units execute).
    The per-case records are reconstructed from the journal in unit order,
    so the returned :class:`CampaignResult` is byte-identical (modulo the
    documented ``timing`` key) to :func:`run_campaign` without a journal.
    """
    from repro.campaign import CampaignSpec, resume_campaign, run_campaign_spec
    from repro.campaign.scheduler import ScheduleConfig
    from repro.service.protocol import options_to_dict

    start = time.perf_counter()
    spec = CampaignSpec(
        kind="fuzz",
        seed=config.seed,
        count=config.count,
        inject=config.inject,
        generator=config.generator.to_dict(),
        oracles=config.oracles.to_dict(),
        options=options_to_dict(options),
    )
    schedule = ScheduleConfig(jobs=max(1, int(config.jobs)))
    path = pathlib.Path(journal_path)
    if path.exists() and path.stat().st_size > 0:
        outcome = resume_campaign(path, schedule)
    else:
        outcome = run_campaign_spec(spec, path, schedule)
    records = [
        CaseRecord.from_dict(entry)
        for unit_id in outcome.state.units
        for entry in outcome.state.results[unit_id].get("records", ())
    ]
    return finalize_campaign(
        config, records, options=options, elapsed_seconds=time.perf_counter() - start
    )


# ---------------------------------------------------------------------------
# Corpus: replayable JSON mismatch entries, deduped by signature
# ---------------------------------------------------------------------------


def _entry_signature(record: CaseRecord) -> str:
    return record.failures[0]["signature"] if record.failures else "unknown"


def write_corpus_entry(
    directory: pathlib.Path,
    record: CaseRecord,
    config: CampaignConfig,
) -> pathlib.Path:
    """Write one mismatch as a replayable JSON corpus entry."""
    directory.mkdir(parents=True, exist_ok=True)
    signature = _entry_signature(record)
    safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in signature)
    safe = safe[:80]
    path = directory / f"{safe}.json"
    entry = {
        "schema": CORPUS_SCHEMA,
        "signature": signature,
        "seed": config.seed,
        "index": record.index,
        "inject_mode": config.inject,
        "config": config.generator.to_dict(),
        "oracles": config.oracles.to_dict(),
        "source": record.source,
        "reduced_source": record.reduced_source,
        "failures": record.failures,
        "verdict": record.verdict,
    }
    path.write_text(json.dumps(entry, indent=2) + "\n", encoding="utf-8")
    return path


def _write_corpus(result: CampaignResult, options: CheckerOptions) -> None:
    directory = pathlib.Path(result.config.corpus_dir)
    seen: set[str] = set()
    for record in result.mismatches:
        signature = _entry_signature(record)
        if signature in seen:
            continue
        seen.add(signature)
        path = write_corpus_entry(directory, record, result.config)
        result.corpus_entries.append(str(path))


def replay_corpus_entry(
    path: str | pathlib.Path,
    *,
    options: CheckerOptions = DEFAULT_OPTIONS,
) -> OracleReport:
    """Re-run the oracle stack on a corpus entry (regenerated from its seed)."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    case = regenerate(data)
    oracle_config = OracleConfig.from_dict(data.get("oracles", {}))
    return run_oracles(case, options=options, oracle_config=oracle_config)


#: Failure signatures the reducer cannot hold a shrinking program to: the
#: output-drift oracles compare against the generator's simulation of the
#: *original* IR, and any statement removal legitimately changes the output,
#: so no source-only predicate can preserve "drifts from the simulation".
_UNREDUCIBLE_SIGNATURES = ("clean-stdout-drift", "clean-exit-drift")


def _reduce_mismatches(result: CampaignResult, options: CheckerOptions) -> None:
    from repro.fuzz.reduce import make_failure_predicate, reduce_source

    reduced_signatures: set[str] = set()
    for record in result.mismatches:
        if record.source is None:
            continue
        signature = _entry_signature(record)
        if signature in _UNREDUCIBLE_SIGNATURES:
            continue
        if signature in reduced_signatures:
            # A systematic bug fails many cases the same way; reduce one
            # representative per signature — the first record, which is
            # also the one the deduped corpus keeps.
            continue
        reduced_signatures.add(signature)
        case = generate_case(
            result.config.seed,
            record.index,
            config=result.config.generator,
            inject=result.config.inject,
        )
        predicate = make_failure_predicate(
            case,
            signature,
            options=options,
            oracle_config=result.config.oracles,
        )
        record.reduced_source = reduce_source(record.source, predicate)


__all__ = [
    "CORPUS_SCHEMA",
    "CampaignConfig",
    "CampaignResult",
    "CaseRecord",
    "examine_case",
    "finalize_campaign",
    "replay_corpus_entry",
    "run_campaign",
    "run_journaled_campaign",
    "worker_config",
    "write_corpus_entry",
]
