"""Seeded, grammar-directed generation of ground-truth-labeled C programs.

The generator is built around one invariant borrowed from workload
generators for pluggable engines: **every emitted program carries its own
ground truth**.  Two mechanisms provide it:

* *Well-defined by construction.*  Clean programs are assembled from a
  mini-IR whose every operation is closed over a bounded non-negative value
  domain: sums, masked products, shifts by small literals, division and
  remainder by provably positive denominators, in-bounds (``% length``)
  array subscripts.  Each IR node both renders to C and *executes* in
  Python with C-identical semantics on that domain, so the generator
  concretely simulates the whole program while emitting it and records the
  exact stdout and exit code a defined execution must produce.  Any verdict
  other than DEFINED — or any output drift — is a checker (or generator)
  bug, which is precisely what the differential oracles exist to catch.

* *UB injection.*  ``inject="<family>"`` plants exactly **one** known
  defect, drawn from :data:`INJECTION_TEMPLATES` — self-contained snippets
  keyed to the check families of :mod:`repro.ub.catalog` /
  :mod:`repro.events` — at a random executed point of ``main``.  The case
  is then labeled like a suite ``BehaviorTest``: the expected
  :class:`~repro.errors.UBKind` set, the check family whose ablation must
  un-detect it, and the catalog identifiers it exercises.

Determinism: all randomness derives from ``(seed, "fuzz", "case", index)``
via :mod:`repro.seeding`, so a case is reproducible from its
``(seed, index, config)`` triple alone — that triple is what mismatch
corpus entries store.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import UBKind
from repro.events import (
    FAMILY_ARITHMETIC,
    FAMILY_CONST,
    FAMILY_EFFECTIVE_TYPES,
    FAMILY_FUNCTIONS,
    FAMILY_MEMORY,
    FAMILY_PROVENANCE,
    FAMILY_SEQUENCING,
    FAMILY_UNINITIALIZED,
)
from repro.seeding import derive_rng

#: Values stored in generated variables stay in ``[0, DOMAIN)``; the closed
#: expression grammar keeps every intermediate below ``2**26``, far from any
#: int overflow on every implementation profile.
DOMAIN = 1 << 16

_WRAP_MODULI = (251, 256, 1000, 1024, 4096, DOMAIN)


class GeneratorInvariantError(AssertionError):
    """The simulation left the closed value domain — a generator bug."""


# ---------------------------------------------------------------------------
# Expression mini-IR: render() to C, eval() in Python with C semantics
# ---------------------------------------------------------------------------


class _Expr:
    bound: int = DOMAIN  # static upper bound (exclusive) of the value

    def render(self) -> str:
        raise NotImplementedError

    def eval(self, env: "_Env") -> int:
        raise NotImplementedError


class _Lit(_Expr):
    def __init__(self, value: int) -> None:
        assert 0 <= value <= DOMAIN
        self.value = value
        self.bound = value + 1

    def render(self) -> str:
        return str(self.value)

    def eval(self, env: "_Env") -> int:
        return self.value


class _Var(_Expr):
    def __init__(self, name: str) -> None:
        self.name = name
        self.bound = DOMAIN

    def render(self) -> str:
        return self.name

    def eval(self, env: "_Env") -> int:
        return env.ints[self.name]


class _ArrRead(_Expr):
    def __init__(self, name: str, index: _Expr) -> None:
        self.name = name
        self.index = index
        self.bound = DOMAIN

    def render(self) -> str:
        return f"{self.name}[{self.index.render()}]"

    def eval(self, env: "_Env") -> int:
        return env.arrays[self.name][self.index.eval(env)]


class _Deref(_Expr):
    def __init__(self, name: str) -> None:
        self.name = name
        self.bound = DOMAIN

    def render(self) -> str:
        return f"(*{self.name})"

    def eval(self, env: "_Env") -> int:
        return env.read_pointer(self.name)


class _Call(_Expr):
    def __init__(self, helper: "_Helper", arguments: list[_Expr]) -> None:
        self.helper = helper
        self.arguments = arguments
        self.bound = DOMAIN

    def render(self) -> str:
        args = ", ".join(argument.render() for argument in self.arguments)
        return f"{self.helper.name}({args})"

    def eval(self, env: "_Env") -> int:
        values = [argument.eval(env) for argument in self.arguments]
        return self.helper.call(values)


class _Bin(_Expr):
    """A binary operation *closed* over the domain by construction.

    The builder (not this node) is responsible for masking operands so the
    static ``bound`` stays below ``2**26``; evaluation re-checks.
    """

    def __init__(self, op: str, left: _Expr, right: _Expr, bound: int) -> None:
        self.op = op
        self.left = left
        self.right = right
        self.bound = bound

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self, env: "_Env") -> int:
        a = self.left.eval(env)
        b = self.right.eval(env)
        op = self.op
        if op == "+":
            value = a + b
        elif op == "-":
            value = a - b
        elif op == "*":
            value = a * b
        elif op == "/":
            if b <= 0:
                raise GeneratorInvariantError("non-positive divisor")
            value = a // b  # a >= 0, b > 0: Python // == C /
        elif op == "%":
            if b <= 0:
                raise GeneratorInvariantError("non-positive modulus")
            value = a % b
        elif op == "&":
            value = a & b
        elif op == "|":
            value = a | b
        elif op == "^":
            value = a ^ b
        elif op == "<<":
            value = a << b
        elif op == ">>":
            value = a >> b
        elif op == "==":
            value = int(a == b)
        elif op == "!=":
            value = int(a != b)
        elif op == "<":
            value = int(a < b)
        elif op == ">":
            value = int(a > b)
        elif op == "<=":
            value = int(a <= b)
        elif op == ">=":
            value = int(a >= b)
        else:  # pragma: no cover - the builder only emits the ops above
            raise GeneratorInvariantError(f"unknown op {op!r}")
        if value < 0 or value >= (1 << 26):
            raise GeneratorInvariantError(
                f"{a} {op} {b} = {value} escaped the closed domain"
            )
        return value


class _Cond(_Expr):
    def __init__(self, condition: _Expr, then: _Expr, otherwise: _Expr) -> None:
        self.condition = condition
        self.then = then
        self.otherwise = otherwise
        self.bound = max(then.bound, otherwise.bound)

    def render(self) -> str:
        rendered_then = self.then.render()
        rendered_else = self.otherwise.render()
        return f"({self.condition.render()} ? {rendered_then} : {rendered_else})"

    def eval(self, env: "_Env") -> int:
        if self.condition.eval(env):
            return self.then.eval(env)
        return self.otherwise.eval(env)


class _Not(_Expr):
    def __init__(self, operand: _Expr) -> None:
        self.operand = operand
        self.bound = 2

    def render(self) -> str:
        return f"(!{self.operand.render()})"

    def eval(self, env: "_Env") -> int:
        return int(not self.operand.eval(env))


# ---------------------------------------------------------------------------
# Statement mini-IR
# ---------------------------------------------------------------------------


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _Env:
    """The concrete simulation state: exactly what the C program computes."""

    def __init__(self) -> None:
        self.ints: dict[str, int] = {}
        self.arrays: dict[str, list[int]] = {}
        # pointer name -> ("var", name) | ("elem", array, index)
        self.pointers: dict[str, tuple] = {}
        self.output: list[str] = []

    def read_pointer(self, name: str) -> int:
        target = self.pointers[name]
        if target[0] == "var":
            return self.ints[target[1]]
        return self.arrays[target[1]][target[2]]

    def write_pointer(self, name: str, value: int) -> None:
        target = self.pointers[name]
        if target[0] == "var":
            self.ints[target[1]] = value
        else:
            self.arrays[target[1]][target[2]] = value


class _Stmt:
    def render(self, depth: int) -> list[str]:
        raise NotImplementedError

    def execute(self, env: _Env) -> None:
        raise NotImplementedError


def _pad(depth: int) -> str:
    return "    " * depth


class _DeclInt(_Stmt):
    def __init__(self, name: str, expr: _Expr, compound: bool = False) -> None:
        self.name = name
        self.expr = expr
        # Spell the initializer as the compound literal ``(int){ expr }``
        # (§6.5.2.5) — same value, different route through the checker.
        self.compound = compound

    def render(self, depth: int) -> list[str]:
        init = self.expr.render()
        if self.compound:
            init = f"(int){{ {init} }}"
        return [f"{_pad(depth)}int {self.name} = {init};"]

    def execute(self, env: _Env) -> None:
        env.ints[self.name] = self.expr.eval(env)


class _DeclArr(_Stmt):
    def __init__(self, name: str, values: list[int]) -> None:
        self.name = name
        self.values = values

    def render(self, depth: int) -> list[str]:
        items = ", ".join(str(v) for v in self.values)
        return [f"{_pad(depth)}int {self.name}[{len(self.values)}] = {{{items}}};"]

    def execute(self, env: _Env) -> None:
        env.arrays[self.name] = list(self.values)


class _DeclPtr(_Stmt):
    def __init__(self, name: str, target: tuple) -> None:
        self.name = name
        self.target = target

    def render(self, depth: int) -> list[str]:
        if self.target[0] == "var":
            text = f"&{self.target[1]}"
        else:
            text = f"&{self.target[1]}[{self.target[2]}]"
        return [f"{_pad(depth)}int *{self.name} = {text};"]

    def execute(self, env: _Env) -> None:
        env.pointers[self.name] = self.target


class _Assign(_Stmt):
    # lhs is ("var", name) | ("elem", arr, index_expr) | ("deref", ptr)
    def __init__(self, lhs: tuple, expr: _Expr) -> None:
        self.lhs = lhs
        self.expr = expr

    def render(self, depth: int) -> list[str]:
        kind = self.lhs[0]
        if kind == "var":
            target = self.lhs[1]
        elif kind == "elem":
            target = f"{self.lhs[1]}[{self.lhs[2].render()}]"
        else:
            target = f"*{self.lhs[1]}"
        return [f"{_pad(depth)}{target} = {self.expr.render()};"]

    def execute(self, env: _Env) -> None:
        value = self.expr.eval(env)
        kind = self.lhs[0]
        if kind == "var":
            env.ints[self.lhs[1]] = value
        elif kind == "elem":
            env.arrays[self.lhs[1]][self.lhs[2].eval(env)] = value
        else:
            env.write_pointer(self.lhs[1], value)


class _If(_Stmt):
    def __init__(
        self,
        condition: _Expr,
        then: list[_Stmt],
        otherwise: Optional[list[_Stmt]],
    ) -> None:
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def render(self, depth: int) -> list[str]:
        lines = [f"{_pad(depth)}if ({self.condition.render()}) {{"]
        for stmt in self.then:
            lines.extend(stmt.render(depth + 1))
        if self.otherwise is not None:
            lines.append(f"{_pad(depth)}}} else {{")
            for stmt in self.otherwise:
                lines.extend(stmt.render(depth + 1))
        lines.append(f"{_pad(depth)}}}")
        return lines

    def execute(self, env: _Env) -> None:
        branch = self.then if self.condition.eval(env) else self.otherwise
        for stmt in branch or []:
            stmt.execute(env)


class _For(_Stmt):
    def __init__(self, var: str, count: int, body: list[_Stmt]) -> None:
        self.var = var
        self.count = count
        self.body = body

    def render(self, depth: int) -> list[str]:
        head = (
            f"{_pad(depth)}for ({self.var} = 0; {self.var} < {self.count}; "
            f"{self.var} = {self.var} + 1) {{"
        )
        lines = [head]
        for stmt in self.body:
            lines.extend(stmt.render(depth + 1))
        lines.append(f"{_pad(depth)}}}")
        return lines

    def execute(self, env: _Env) -> None:
        env.ints[self.var] = 0
        iterations = 0
        while env.ints[self.var] < self.count:
            iterations += 1
            if iterations > self.count + 1:
                # The builder bans every write to the loop variable (direct
                # assignment and pointer aliasing alike), so re-winding is a
                # generator bug; fail loudly instead of hanging.
                raise GeneratorInvariantError(
                    f"loop over {self.var} exceeded its {self.count} iterations"
                )
            try:
                for stmt in self.body:
                    stmt.execute(env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            env.ints[self.var] = env.ints[self.var] + 1


class _LoopEscape(_Stmt):
    """``if (cond) { break; }`` / ``if (cond) { continue; }``."""

    def __init__(self, condition: _Expr, kind: str) -> None:
        self.condition = condition
        self.kind = kind  # "break" | "continue"

    def render(self, depth: int) -> list[str]:
        return [f"{_pad(depth)}if ({self.condition.render()}) {{ {self.kind}; }}"]

    def execute(self, env: _Env) -> None:
        if self.condition.eval(env):
            raise _BreakSignal() if self.kind == "break" else _ContinueSignal()


class _Print(_Stmt):
    def __init__(self, expr: _Expr) -> None:
        self.expr = expr

    def render(self, depth: int) -> list[str]:
        return [f'{_pad(depth)}printf("%d\\n", {self.expr.render()});']

    def execute(self, env: _Env) -> None:
        env.output.append(f"{self.expr.eval(env)}\n")


class _Return(_Stmt):
    def __init__(self, expr: _Expr) -> None:
        self.expr = expr

    def render(self, depth: int) -> list[str]:
        return [f"{_pad(depth)}return {self.expr.render()};"]

    def execute(self, env: _Env) -> None:
        env.ints["__exit__"] = self.expr.eval(env)


class _Helper:
    """A pure straight-line helper function: int(int, int)."""

    def __init__(self, name: str, body: list[_Stmt], result: _Expr) -> None:
        self.name = name
        self.body = body
        self.result = result

    def render(self) -> list[str]:
        lines = [f"int {self.name}(int p0, int p1) {{"]
        for stmt in self.body:
            lines.extend(stmt.render(1))
        lines.append(f"    return {self.result.render()};")
        lines.append("}")
        return lines

    def call(self, arguments: list[int]) -> int:
        env = _Env()
        env.ints["p0"], env.ints["p1"] = arguments
        for stmt in self.body:
            stmt.execute(env)
        return self.result.eval(env)


#: Characters allowed as literal text inside a generated format string —
#: anything needing escapes (``%``, ``"``, ``\``) is deliberately absent.
_FMT_TEXT = "abcdefghijklmnopqrstuvwxyz0123456789 :=.-_"


class _PrintFmt(_Stmt):
    """``printf`` with a multi-conversion format string.

    Segments are ``("lit", text)`` for literal text or ``(conv, expr)`` for
    a conversion in ``d u x X o c``.  Every expression is closed over the
    non-negative domain, so the simulation below mirrors the interpreter's
    formatter byte for byte.
    """

    def __init__(self, segments: list[tuple[str, Any]]) -> None:
        self.segments = segments

    def render(self, depth: int) -> list[str]:
        fmt: list[str] = []
        arguments: list[str] = []
        for kind, payload in self.segments:
            if kind == "lit":
                fmt.append(payload)
            else:
                fmt.append(f"%{kind}")
                arguments.append(payload.render())
        tail = ", " + ", ".join(arguments) if arguments else ""
        return [f'{_pad(depth)}printf("{"".join(fmt)}\\n"{tail});']

    def execute(self, env: _Env) -> None:
        out: list[str] = []
        for kind, payload in self.segments:
            if kind == "lit":
                out.append(payload)
                continue
            value = payload.eval(env)
            if kind in ("d", "u"):
                out.append(str(value))
            elif kind in ("x", "X"):
                text = format(value, "x")
                out.append(text.upper() if kind == "X" else text)
            elif kind == "o":
                out.append(format(value, "o"))
            else:  # "c" — the builder pre-ranges the value to [32, 126]
                out.append(chr(value))
        env.output.append("".join(out) + "\n")


class _SignedSlice(_Stmt):
    """A self-contained negative-operand arithmetic slice.

    Declares ``int s = a - b`` (which may be negative) and exercises the
    C-specific signed edges — negation, truncating division, remainder with
    the sign of the dividend — then prints all four values.  The local names
    are never registered with the builder, so the non-negative closure
    invariant of the surrounding grammar is untouched: nothing else can read
    a possibly-negative variable.
    """

    def __init__(
        self, names: tuple[str, str, str, str], left: _Expr, right: _Expr, divisor: int
    ) -> None:
        self.names = names  # (difference, negation, quotient, remainder)
        self.left = left
        self.right = right
        self.divisor = divisor

    def render(self, depth: int) -> list[str]:
        s, n, q, r = self.names
        pad = _pad(depth)
        return [
            f"{pad}int {s} = ({self.left.render()}) - ({self.right.render()});",
            f"{pad}int {n} = -{s};",
            f"{pad}int {q} = {s} / {self.divisor};",
            f"{pad}int {r} = {s} % {self.divisor};",
            f'{pad}printf("%d %d %d %d\\n", {s}, {n}, {q}, {r});',
        ]

    def execute(self, env: _Env) -> None:
        s = self.left.eval(env) - self.right.eval(env)
        # C division truncates toward zero; % takes the dividend's sign.
        q = abs(s) // self.divisor
        if s < 0:
            q = -q
        r = s - q * self.divisor
        env.output.append(f"{s} {-s} {q} {r}\n")


class _FnPtrSlice(_Stmt):
    """``int (*fp)(int, int) = helper;`` — a clean function-pointer call.

    Self-contained like :class:`_SignedSlice`: the pointer and result names
    stay private to the slice, and the arguments are pre-masked to the
    helper's expected [0, 255] domain.
    """

    def __init__(
        self, names: tuple[str, str], helper: _Helper, left: _Expr, right: _Expr
    ) -> None:
        self.names = names  # (pointer, result)
        self.helper = helper
        self.left = left
        self.right = right

    def render(self, depth: int) -> list[str]:
        fp, result = self.names
        pad = _pad(depth)
        return [
            f"{pad}int (*{fp})(int, int) = {self.helper.name};",
            f"{pad}int {result} = "
            f"{fp}({self.left.render()}, {self.right.render()});",
            f'{pad}printf("%d\\n", {result});',
        ]

    def execute(self, env: _Env) -> None:
        value = self.helper.call([self.left.eval(env), self.right.eval(env)])
        env.output.append(f"{value}\n")


# ---------------------------------------------------------------------------
# UB-injection templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InjectionTemplate:
    """A self-contained defect snippet with its ground-truth label.

    ``family`` names the ``check_*`` flag gating detection (``None`` for
    terminal checks every profile reports); ``gated`` says whether the
    ablation-monotonicity oracle applies.  ``catalog_ids`` are the
    ``repro.ub.catalog`` entry identifiers this template exercises; the
    catalog-coverage test holds the union of these against the catalog.
    ``lines`` use ``{u}`` for a uniquifying suffix.
    """

    name: str
    family: Optional[str]
    expected_kinds: tuple[UBKind, ...]
    catalog_ids: tuple[str, ...]
    lines: tuple[str, ...]
    gated: bool = True

    def instantiate(self, suffix: str) -> tuple[str, ...]:
        return tuple(line.format(u=suffix) for line in self.lines)


INJECTION_TEMPLATES: tuple[InjectionTemplate, ...] = (
    # -- arithmetic ---------------------------------------------------------
    InjectionTemplate(
        "signed-overflow-add",
        FAMILY_ARITHMETIC,
        (UBKind.SIGNED_OVERFLOW,),
        ("arithmetic-exceptional-condition",),
        (
            "int inj_big_{u} = 2147483647;",
            "int inj_boom_{u} = inj_big_{u} + 1;",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "division-by-zero",
        FAMILY_ARITHMETIC,
        (UBKind.DIVISION_BY_ZERO,),
        ("division-by-zero",),
        (
            "int inj_zero_{u} = 0;",
            "int inj_boom_{u} = 19 / inj_zero_{u};",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "shift-too-far",
        FAMILY_ARITHMETIC,
        (UBKind.SHIFT_TOO_FAR,),
        ("shift-amount-out-of-range",),
        (
            "int inj_amount_{u} = 40;",
            "int inj_boom_{u} = 1 << inj_amount_{u};",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "shift-overflow",
        FAMILY_ARITHMETIC,
        (UBKind.SHIFT_OVERFLOW,),
        ("left-shift-negative-or-overflow",),
        (
            "int inj_wide_{u} = 70000;",
            "int inj_boom_{u} = inj_wide_{u} << 16;",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "division-quotient-unrepresentable",
        FAMILY_ARITHMETIC,
        (UBKind.SIGNED_OVERFLOW,),
        ("division-quotient-unrepresentable",),
        (
            "int inj_min_{u} = (-2147483647 - 1);",
            "int inj_boom_{u} = inj_min_{u} / -1;",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "abs-of-most-negative",
        FAMILY_ARITHMETIC,
        (UBKind.SIGNED_OVERFLOW,),
        ("abs-of-most-negative",),
        (
            "int inj_boom_{u} = abs(-2147483647 - 1);",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "pointer-difference-unrepresentable",
        FAMILY_ARITHMETIC,
        (UBKind.SIGNED_OVERFLOW,),
        ("pointer-difference-unrepresentable",),
        (
            "static char inj_vast_{u}[9223372036854775812];",
            "char *inj_lo_{u} = inj_vast_{u};",
            "char *inj_hi_{u} = inj_vast_{u} + 9223372036854775810;",
            "long inj_boom_{u} = inj_hi_{u} - inj_lo_{u};",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    # -- memory -------------------------------------------------------------
    InjectionTemplate(
        "oob-array-write",
        FAMILY_MEMORY,
        (UBKind.BUFFER_OVERFLOW,),
        ("array-access-out-of-bounds", "pointer-addition-outside-object"),
        (
            "int inj_arr_{u}[3] = {{1, 2, 3}};",
            "int inj_idx_{u} = 3;",
            "inj_arr_{u}[inj_idx_{u}] = 9;",
        ),
    ),
    InjectionTemplate(
        "oob-array-read",
        FAMILY_MEMORY,
        (UBKind.OUT_OF_BOUNDS,),
        ("array-access-out-of-bounds", "one-past-end-dereferenced"),
        (
            "int inj_arr_{u}[3] = {{1, 2, 3}};",
            "int inj_idx_{u} = 3;",
            "int inj_boom_{u} = inj_arr_{u}[inj_idx_{u}];",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "null-deref",
        FAMILY_MEMORY,
        (UBKind.NULL_DEREFERENCE,),
        ("invalid-pointer-dereference",),
        (
            "int *inj_null_{u} = 0;",
            "int inj_boom_{u} = *inj_null_{u};",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "use-after-free",
        FAMILY_MEMORY,
        (UBKind.USE_AFTER_FREE, UBKind.DANGLING_DEREFERENCE),
        (
            "allocated-object-used-after-free",
            "object-referred-outside-lifetime",
            "pointer-to-dead-object-used",
            "lvalue-designates-no-object",
        ),
        (
            "int *inj_heap_{u} = malloc(sizeof(int));",
            "*inj_heap_{u} = 5;",
            "free(inj_heap_{u});",
            "int inj_boom_{u} = *inj_heap_{u};",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "double-free",
        None,
        (UBKind.DOUBLE_FREE,),
        ("free-already-freed", "free-invalid-pointer"),
        (
            "int *inj_heap_{u} = malloc(sizeof(int));",
            "*inj_heap_{u} = 5;",
            "free(inj_heap_{u});",
            "free(inj_heap_{u});",
        ),
        gated=False,
    ),
    InjectionTemplate(
        "compound-literal-out-of-scope",
        FAMILY_MEMORY,
        (UBKind.DANGLING_DEREFERENCE,),
        ("compound-literal-in-function-call-return",),
        (
            "int *inj_ptr_{u};",
            "if (1) {{ inj_ptr_{u} = &(int){{21}}; }}",
            "int inj_boom_{u} = *inj_ptr_{u};",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "overlapping-assignment",
        FAMILY_MEMORY,
        (UBKind.OVERLAPPING_COPY,),
        ("assignment-overlapping-objects",),
        (
            "struct inj_pair_{u} {{ int a; int b; }};",
            "struct inj_pair_{u} inj_arr_{u}[3];",
            "inj_arr_{u}[0].a = 1;",
            "inj_arr_{u}[0].b = 2;",
            "inj_arr_{u}[1].a = 3;",
            "inj_arr_{u}[1].b = 4;",
            "struct inj_pair_{u} *inj_src_{u} ="
            " (struct inj_pair_{u} *)((char *)inj_arr_{u} + 4);",
            "inj_arr_{u}[0] = *inj_src_{u};",
        ),
    ),
    InjectionTemplate(
        "memcpy-overlapping",
        FAMILY_MEMORY,
        (UBKind.OVERLAPPING_COPY,),
        ("memcpy-overlapping",),
        (
            "char inj_buf_{u}[16];",
            "int inj_i_{u};",
            "for (inj_i_{u} = 0; inj_i_{u} < 16; inj_i_{u} = inj_i_{u} + 1)"
            " {{ inj_buf_{u}[inj_i_{u}] = inj_i_{u}; }}",
            "memcpy(inj_buf_{u} + 2, inj_buf_{u}, 8);",
        ),
    ),
    # -- sequencing ---------------------------------------------------------
    InjectionTemplate(
        "unsequenced-write-read",
        FAMILY_SEQUENCING,
        (UBKind.UNSEQUENCED_SIDE_EFFECT,),
        ("unsequenced-side-effects",),
        (
            "int inj_x_{u} = 1;",
            "int inj_boom_{u} = (inj_x_{u} = 5) + inj_x_{u};",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "unsequenced-two-writes",
        FAMILY_SEQUENCING,
        (UBKind.UNSEQUENCED_SIDE_EFFECT,),
        ("unsequenced-side-effects",),
        (
            "int inj_x_{u} = 0;",
            "int inj_boom_{u} = (inj_x_{u} = 1) + (inj_x_{u} = 2);",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    # -- const --------------------------------------------------------------
    InjectionTemplate(
        "write-to-const",
        FAMILY_CONST,
        (UBKind.CONST_VIOLATION,),
        ("const-object-modified",),
        (
            "const int inj_locked_{u} = 3;",
            "int *inj_alias_{u} = (int *)&inj_locked_{u};",
            "*inj_alias_{u} = 4;",
        ),
    ),
    InjectionTemplate(
        "modify-string-literal",
        FAMILY_CONST,
        (UBKind.MODIFY_STRING_LITERAL,),
        ("string-literal-modified",),
        (
            'char *inj_text_{u} = "hi";',
            "inj_text_{u}[0] = 'H';",
        ),
    ),
    # -- pointer provenance -------------------------------------------------
    InjectionTemplate(
        "compare-unrelated",
        FAMILY_PROVENANCE,
        (UBKind.POINTER_COMPARE_UNRELATED,),
        ("relational-comparison-unrelated-pointers",),
        (
            "int inj_a_{u} = 1;",
            "int inj_b_{u} = 2;",
            "int inj_boom_{u} = (&inj_a_{u} < &inj_b_{u});",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "subtract-unrelated",
        FAMILY_PROVENANCE,
        (UBKind.POINTER_SUBTRACT_UNRELATED,),
        ("pointer-subtraction-different-objects",),
        (
            "int inj_a_{u}[2] = {{1, 2}};",
            "int inj_b_{u}[2] = {{3, 4}};",
            "int inj_boom_{u} = (int)(&inj_a_{u}[1] - &inj_b_{u}[0]);",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    # -- uninitialized ------------------------------------------------------
    InjectionTemplate(
        "uninitialized-read",
        FAMILY_UNINITIALIZED,
        (UBKind.UNINITIALIZED_READ,),
        (
            "indeterminate-auto-object-used",
            "trap-representation-read",
            "trap-representation-produced",
        ),
        (
            "int inj_ghost_{u};",
            "int inj_boom_{u} = inj_ghost_{u} + 1;",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    # -- effective types ----------------------------------------------------
    InjectionTemplate(
        "aliasing-read",
        FAMILY_EFFECTIVE_TYPES,
        (UBKind.EFFECTIVE_TYPE_VIOLATION,),
        ("effective-type-violation",),
        (
            "int inj_cell_{u} = 42;",
            "float *inj_alias_{u} = (float *)&inj_cell_{u};",
            "float inj_boom_{u} = *inj_alias_{u};",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    # -- functions ----------------------------------------------------------
    InjectionTemplate(
        "wrong-arg-count",
        FAMILY_FUNCTIONS,
        (UBKind.BAD_FUNCTION_CALL,),
        (
            "call-arguments-mismatch-no-prototype",
            "library-invalid-argument",
            "function-called-wrong-type",
        ),
        (
            "int inj_boom_{u} = inj_pick({u} + 1);",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "fnptr-wrong-type-call",
        FAMILY_FUNCTIONS,
        (UBKind.BAD_FUNCTION_TYPE,),
        ("function-pointer-wrong-type-call",),
        (
            "int (*inj_fn_{u})(int, int) = (int (*)(int, int))inj_lone;",
            "int inj_boom_{u} = inj_fn_{u}(3, 4);",
            "inj_boom_{u} = inj_boom_{u};",
        ),
    ),
    InjectionTemplate(
        "printf-conversion-mismatch",
        FAMILY_FUNCTIONS,
        (UBKind.FORMAT_MISMATCH,),
        ("printf-conversion-mismatch",),
        (
            "int inj_x_{u} = 1;",
            'printf("%d\\n", &inj_x_{u});',
        ),
    ),
    InjectionTemplate(
        "printf-insufficient-arguments",
        FAMILY_FUNCTIONS,
        (UBKind.FORMAT_MISMATCH,),
        ("printf-insufficient-arguments",),
        (
            "int inj_x_{u} = 7;",
            'printf("%d %d\\n", inj_x_{u});',
        ),
    ),
)

#: The blocker categories an UNGENERATED reason must name.  Every reason is
#: ``"<category>: <free text>"`` with a category from this tuple, so the
#: allowlist states *why* an entry cannot graduate, in a form tests can check:
#:
#: * ``host-limit`` — exercising it would exhaust or depend on host resources
#:   (memory, stack, stdin) the fuzz harness cannot control.
#: * ``profile-dependent`` — whether the behavior is undefined depends on the
#:   implementation profile, so no single ground-truth label exists.
#: * ``out-of-subset`` — the construct is outside the checker's C subset
#:   (the front end rejects it or the interpreter does not model it).
#: * ``other-suite's-job`` — deliberately left to a curated suite (Juliet,
#:   ubsuite) that exercises it with realistic shapes.
UNGENERATED_CATEGORIES: tuple[str, ...] = (
    "host-limit",
    "profile-dependent",
    "out-of-subset",
    "other-suite's-job",
)

#: Dynamic catalog entries no injection template can exercise, with the
#: reason (``"<category>: <detail>"``; see :data:`UNGENERATED_CATEGORIES`).
#: The catalog-coverage test (tests/fuzz/test_catalog_coverage.py) fails when
#: a dynamic catalog entry is neither covered by a template's ``catalog_ids``
#: nor listed here — so new catalog entries cannot silently escape fuzz
#: coverage — and fails again if a reason's category is not a real blocker.
UNGENERATED: dict[str, str] = {
    "program-exceeds-limits": "host-limit: resource exhaustion exhausts the host too",
    "conversion-unrepresentable-fp-int": "out-of-subset: needs float inputs outside the domain",
    "demotion-unrepresentable-fp": "out-of-subset: long-double demotion is unsupported",
    "lvalue-with-incomplete-type": "out-of-subset: incomplete struct types are not emitted",
    "misaligned-pointer-conversion": "profile-dependent: alignment punning has no fixed verdict",
    "volatile-through-nonvolatile": "out-of-subset: volatile semantics are not modeled",
    "restrict-aliasing-violation": "out-of-subset: restrict is not modeled by the checker",
    "restrict-copy-between-overlapping": "out-of-subset: restrict is not modeled by the checker",
    "vla-size-not-positive": "out-of-subset: VLAs are rejected by the front end",
    "missing-return-value-used": "other-suite's-job: the ubsuite pins this uninitialized path",
    "recursive-main-exit": "out-of-subset: exit-handling semantics are not modeled",
    "setjmp-misused": "out-of-subset: setjmp/longjmp are outside the stdlib subset",
    "va-arg-type-mismatch": "out-of-subset: variadic access is outside the generated subset",
    "va-start-not-matched": "out-of-subset: variadic access is outside the generated subset",
    "library-array-too-small": "other-suite's-job: Juliet exercises library buffer contracts",
    "scanf-result-pointer-invalid": "host-limit: scanf needs stdin the fuzz harness lacks",
    "string-function-unterminated": "other-suite's-job: Juliet exercises string-buffer defects",
    "exit-called-twice": "out-of-subset: exit-handling semantics are not modeled",
    "getenv-result-modified": "out-of-subset: getenv is outside the stdlib subset",
    "signal-handler-bad-call": "out-of-subset: signals are outside the supported subset",
    "strtok-null-on-first-call": "out-of-subset: strtok is outside the stdlib subset",
    "fgets-null-or-closed-stream": "out-of-subset: streams are outside the supported subset",
    "fflush-input-stream": "out-of-subset: streams are outside the supported subset",
    "file-position-invalid": "out-of-subset: streams are outside the supported subset",
    "qsort-comparator-inconsistent": "out-of-subset: qsort is outside the stdlib subset",
    "ungetc-pushback-overflow": "out-of-subset: streams are outside the supported subset",
    "multibyte-invalid-sequence": "out-of-subset: multibyte conversion is unsupported",
    "locale-string-modified": "out-of-subset: locales are outside the supported subset",
    "time-conversion-out-of-range": "out-of-subset: time.h is outside the supported subset",
    "atexit-handler-longjmp": "out-of-subset: atexit/longjmp are outside the subset",
    "wide-char-null-pointer": "out-of-subset: wide characters are unsupported",
    "data-race": "out-of-subset: threads are outside the supported subset",
    "mutex-not-owned-unlock": "out-of-subset: threads are outside the supported subset",
    "thread-storage-after-exit": "out-of-subset: threads are outside the supported subset",
    "condition-variable-different-mutexes": "out-of-subset: threads are not supported",
}

#: Catalog entries that graduated out of :data:`UNGENERATED` — each is now
#: exercised by the named injection template and must never fall back into
#: the allowlist (pinned by the catalog-coverage test).
GRADUATED: dict[str, str] = {
    "division-quotient-unrepresentable": "division-quotient-unrepresentable",
    "abs-of-most-negative": "abs-of-most-negative",
    "pointer-difference-unrepresentable": "pointer-difference-unrepresentable",
    "function-pointer-wrong-type-call": "fnptr-wrong-type-call",
    "compound-literal-in-function-call-return": "compound-literal-out-of-scope",
    "assignment-overlapping-objects": "overlapping-assignment",
    "memcpy-overlapping": "memcpy-overlapping",
    "printf-conversion-mismatch": "printf-conversion-mismatch",
    "printf-insufficient-arguments": "printf-insufficient-arguments",
}


def injection_families() -> list[str]:
    """The check families with at least one injection template, in order."""
    seen: list[str] = []
    for template in INJECTION_TEMPLATES:
        family = template.family or "terminal"
        if family not in seen:
            seen.append(family)
    return seen


def template_for(name: str) -> InjectionTemplate:
    for template in INJECTION_TEMPLATES:
        if template.name == name:
            return template
    raise KeyError(f"no injection template named {name!r}")


def _templates_in_family(family: str) -> list[InjectionTemplate]:
    return [
        template
        for template in INJECTION_TEMPLATES
        if (template.family or "terminal") == family
    ]


# ---------------------------------------------------------------------------
# Configuration and the generated case
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape knobs for one generated program (picklable, hashable)."""

    max_helpers: int = 2
    min_statements: int = 4
    max_statements: int = 10
    max_depth: int = 3  # expression tree depth
    max_loop_count: int = 6
    max_array_length: int = 6
    #: When set, ``main`` opens with a declared *symbolic input hole*
    #: ``int hole = <default>;`` whose initializer may be replaced by any
    #: value in ``[0, symbolic_hole]`` (clamped to the closed domain).  The
    #: hole is registered as a readable-but-never-written variable, so the
    #: bound discipline keeps a clean program well-defined for **every**
    #: value in that range — which is exactly what the symbolic prover
    #: (:mod:`repro.symbolic`) is asked to establish and what its oracle
    #: samples concretely.
    symbolic_hole: Optional[int] = None
    #: Test/demo hook: deliberately corrupt the ground truth so the oracle
    #: stack *must* report a mismatch.  ``"mislabel"`` plants a defect but
    #: labels the case clean; ``"wrong-stdout"`` corrupts the predicted
    #: output of a clean case.  Used by the reducer tests and the example.
    sabotage: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_helpers": self.max_helpers,
            "min_statements": self.min_statements,
            "max_statements": self.max_statements,
            "max_depth": self.max_depth,
            "max_loop_count": self.max_loop_count,
            "max_array_length": self.max_array_length,
            "symbolic_hole": self.symbolic_hole,
            "sabotage": self.sabotage,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GeneratorConfig":
        return cls(**{key: data[key] for key in cls().to_dict() if key in data})


@dataclass
class FuzzCase:
    """One generated program with its ground-truth label."""

    name: str
    source: str
    seed: int
    index: int
    config: GeneratorConfig
    #: Injection template name, or None for a clean (well-defined) case.
    injected: Optional[str] = None
    family: Optional[str] = None
    expected_kinds: tuple[UBKind, ...] = ()
    #: Ground truth of a clean case: the simulated stdout and exit code.
    #: (With a symbolic hole these describe the *default* hole value.)
    predicted_stdout: Optional[str] = None
    predicted_exit: Optional[int] = None
    #: Symbolic input hole metadata (None unless the config declared one).
    hole_name: Optional[str] = None
    hole_range: Optional[tuple[int, int]] = None
    hole_default: Optional[int] = None

    @property
    def is_bad(self) -> bool:
        return self.injected is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "source": self.source,
            "seed": self.seed,
            "index": self.index,
            "config": self.config.to_dict(),
            "injected": self.injected,
            "family": self.family,
            "expected_kinds": [kind.name for kind in self.expected_kinds],
            "predicted_stdout": self.predicted_stdout,
            "predicted_exit": self.predicted_exit,
            "hole_name": self.hole_name,
            "hole_range": (
                list(self.hole_range) if self.hole_range is not None else None
            ),
            "hole_default": self.hole_default,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FuzzCase":
        kinds = tuple(UBKind[name] for name in data.get("expected_kinds", []))
        return cls(
            name=data["name"],
            source=data["source"],
            seed=data["seed"],
            index=data["index"],
            config=GeneratorConfig.from_dict(data.get("config", {})),
            injected=data.get("injected"),
            family=data.get("family"),
            expected_kinds=kinds,
            predicted_stdout=data.get("predicted_stdout"),
            predicted_exit=data.get("predicted_exit"),
            hole_name=data.get("hole_name"),
            hole_range=(
                tuple(data["hole_range"])
                if data.get("hole_range") is not None
                else None
            ),
            hole_default=data.get("hole_default"),
        )


# ---------------------------------------------------------------------------
# The generator proper
# ---------------------------------------------------------------------------


class _Builder:
    """Builds one program: helpers + main, concretely simulated."""

    def __init__(self, rng: random.Random, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.counter = 0
        self.helpers: list[_Helper] = []
        # Scopes of visible names, innermost last; each entry is
        # (int_names, array_names(->length), pointer_names).
        self.scopes: list[tuple[list[str], dict[str, int], list[str]]] = []
        #: Pointer name -> the int variable it aliases (None for array
        #: elements).  Needed to keep loop variables write-free: a direct
        #: assignment checks ``protected`` by name, and this map extends the
        #: same check through pointer dereferences.
        self.pointer_targets: dict[str, Optional[str]] = {}

    # -- scope bookkeeping --------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append(([], {}, []))

    def pop_scope(self) -> None:
        self.scopes.pop()

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    @property
    def int_names(self) -> list[str]:
        return [name for scope in self.scopes for name in scope[0]]

    @property
    def arrays(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for scope in self.scopes:
            merged.update(scope[1])
        return merged

    @property
    def pointer_names(self) -> list[str]:
        return [name for scope in self.scopes for name in scope[2]]

    # -- expressions --------------------------------------------------------
    def expr(self, depth: int = 0) -> _Expr:
        """A random expression, closed over the value domain."""
        rng = self.rng
        leaves = depth >= self.config.max_depth
        choices = ["lit", "lit", "var", "var", "var"]
        if self.arrays:
            choices.append("arr")
        if self.pointer_names:
            choices.append("ptr")
        if not leaves:
            choices += ["bin"] * 6 + ["cmp", "cond", "not"]
            if self.helpers:
                choices += ["call", "call"]
        kind = rng.choice(choices)
        if kind == "lit" or (kind == "var" and not self.int_names):
            return _Lit(rng.randrange(100))
        if kind == "var":
            return _Var(rng.choice(self.int_names))
        if kind == "arr":
            name, length = rng.choice(sorted(self.arrays.items()))
            return _ArrRead(name, self.index_expr(length, depth + 1))
        if kind == "ptr":
            return _Deref(rng.choice(self.pointer_names))
        if kind == "call":
            helper = rng.choice(self.helpers)
            arguments = [
                self.masked(self.expr(depth + 1), 255),
                self.masked(self.expr(depth + 1), 255),
            ]
            return _Call(helper, arguments)
        if kind == "cond":
            condition = self.comparison(depth + 1)
            return _Cond(condition, self.expr(depth + 1), self.expr(depth + 1))
        if kind == "not":
            return _Not(self.expr(depth + 1))
        if kind == "cmp":
            return self.comparison(depth + 1)
        return self.binary(depth)

    def comparison(self, depth: int) -> _Expr:
        op = self.rng.choice(("==", "!=", "<", ">", "<=", ">="))
        left = self.expr(depth)
        right = self.expr(depth)
        return _Bin(op, left, right, 2)

    def masked(self, expr: _Expr, mask: int) -> _Expr:
        """``expr & mask`` — but only when the bound actually requires it."""
        if expr.bound <= mask + 1:
            return expr
        return _Bin("&", expr, _Lit(mask), mask + 1)

    def binary(self, depth: int) -> _Expr:
        rng = self.rng
        op = rng.choice(("+", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"))
        left = self.expr(depth + 1)
        right = self.expr(depth + 1)
        if op == "+":
            return _Bin("+", left, right, left.bound + right.bound)
        if op == "-":
            # Closed subtraction: (a > b ? a - b : b - a) stays non-negative.
            bound = max(left.bound, right.bound)
            return _Cond(
                _Bin(">", left, right, 2),
                _Bin("-", left, right, bound),
                _Bin("-", right, left, bound),
            )
        if op == "*":
            left = self.masked(left, 1023)
            right = self.masked(right, 1023)
            return _Bin("*", left, right, left.bound * right.bound)
        if op in ("/", "%"):
            if rng.random() < 0.5:
                divisor: _Expr = _Lit(rng.randrange(1, 10))
            else:
                masked = self.masked(self.expr(depth + 1), 255)
                divisor = _Bin("|", masked, _Lit(1), 256)
            bound = left.bound if op == "/" else min(left.bound, divisor.bound)
            return _Bin(op, left, divisor, bound)
        if op in ("&", "|", "^"):
            if op == "&":
                bound = max(left.bound, right.bound)
            else:
                bound = _next_pow2(max(left.bound, right.bound))
            return _Bin(op, left, right, bound)
        if op == "<<":
            left = self.masked(left, 255)
            amount = rng.randrange(7)
            return _Bin("<<", left, _Lit(amount), left.bound << amount)
        amount = self.rng.randrange(9)
        return _Bin(">>", left, _Lit(amount), left.bound)

    def index_expr(self, length: int, depth: int) -> _Expr:
        if self.rng.random() < 0.4:
            return _Lit(self.rng.randrange(length))
        return _Bin("%", self.expr(depth), _Lit(length), length)

    def storable(self, depth: int = 0) -> _Expr:
        """An expression whose value provably fits the stored domain."""
        expr = self.expr(depth)
        if expr.bound <= DOMAIN:
            return expr
        modulus = self.rng.choice(_WRAP_MODULI)
        return _Bin("%", expr, _Lit(modulus), modulus)

    # -- statements ---------------------------------------------------------
    def declaration(self) -> _Stmt:
        rng = self.rng
        roll = rng.random()
        if roll < 0.55 or not (self.int_names or self.arrays):
            name = self.fresh("v")
            stmt: _Stmt = _DeclInt(name, self.storable(), compound=rng.random() < 0.2)
            self.scopes[-1][0].append(name)
            return stmt
        if roll < 0.8:
            name = self.fresh("arr")
            length = rng.randrange(2, self.config.max_array_length + 1)
            values = [rng.randrange(DOMAIN // 2) for _ in range(length)]
            self.scopes[-1][1][name] = length
            return _DeclArr(name, values)
        name = self.fresh("p")
        if self.arrays and (rng.random() < 0.5 or not self.int_names):
            array, length = rng.choice(sorted(self.arrays.items()))
            target = ("elem", array, rng.randrange(length))
            self.pointer_targets[name] = None
        else:
            target = ("var", rng.choice(self.int_names))
            self.pointer_targets[name] = target[1]
        self.scopes[-1][2].append(name)
        return _DeclPtr(name, target)

    def assignment(self, protected: frozenset[str]) -> Optional[_Stmt]:
        rng = self.rng
        targets: list[tuple] = [
            ("var", name) for name in self.int_names if name not in protected
        ]
        targets += [
            ("elem", name, self.index_expr(length, 1))
            for name, length in self.arrays.items()
        ]
        # A dereference write is a write to the aliased variable: protected
        # names (loop variables) stay write-free through pointers too.
        targets += [
            ("deref", name)
            for name in self.pointer_names
            if self.pointer_targets.get(name) not in protected
        ]
        if not targets:
            return None
        return _Assign(rng.choice(targets), self.storable())

    def statements(
        self,
        budget: int,
        *,
        depth: int,
        in_loop: bool,
        protected: frozenset[str],
    ) -> list[_Stmt]:
        """A block of up to ``budget`` statements in a fresh scope."""
        rng = self.rng
        self.push_scope()
        block: list[_Stmt] = []
        while len(block) < budget:
            roll = rng.random()
            if roll < 0.3:
                block.append(self.declaration())
            elif roll < 0.62:
                assign = self.assignment(protected)
                block.append(assign if assign is not None else self.declaration())
            elif roll < 0.72 and depth < 2:
                then = self.statements(
                    rng.randrange(1, 3),
                    depth=depth + 1,
                    in_loop=in_loop,
                    protected=protected,
                )
                otherwise = None
                if rng.random() < 0.5:
                    otherwise = self.statements(
                        rng.randrange(1, 3),
                        depth=depth + 1,
                        in_loop=in_loop,
                        protected=protected,
                    )
                block.append(_If(self.comparison(1), then, otherwise))
            elif roll < 0.84 and depth == 0 and not in_loop:
                var = self.fresh("i")
                self.scopes[-1][0].append(var)
                block.append(_DeclInt(var, _Lit(0)))
                count = rng.randrange(1, self.config.max_loop_count + 1)
                body = self.statements(
                    rng.randrange(1, 4),
                    depth=depth + 1,
                    in_loop=True,
                    protected=protected | {var},
                )
                if rng.random() < 0.3:
                    escape = _LoopEscape(
                        self.comparison(1),
                        rng.choice(("break", "continue")),
                    )
                    body.insert(rng.randrange(len(body) + 1), escape)
                block.append(_For(var, count, body))
            elif roll < 0.92 and in_loop:
                escape = _LoopEscape(
                    self.comparison(1),
                    rng.choice(("break", "continue")),
                )
                block.append(escape)
            else:
                block.append(self.output_statement())
        self.pop_scope()
        return block

    def output_statement(self) -> _Stmt:
        """One of the output-producing statement kinds."""
        pick = self.rng.random()
        if pick < 0.4:
            return _Print(self.expr())
        if pick < 0.65:
            return self.print_fmt()
        if pick < 0.85 or not self.helpers:
            return self.signed_slice()
        return self.fnptr_slice()

    def print_fmt(self) -> _PrintFmt:
        """A printf drawn from the format-string grammar."""
        rng = self.rng
        segments: list[tuple[str, Any]] = []
        for position in range(rng.randrange(1, 4)):
            if position > 0 or rng.random() < 0.5:
                text = "".join(
                    rng.choice(_FMT_TEXT) for _ in range(rng.randrange(1, 5))
                )
                segments.append(("lit", text))
            conv = rng.choice("duxXoc")
            if conv == "c":
                # Range the argument into printable ASCII [32, 126].
                expr: _Expr = _Bin(
                    "+",
                    _Lit(32),
                    _Bin("%", self.storable(1), _Lit(95), 95),
                    127,
                )
            else:
                expr = self.storable(1)
            segments.append((conv, expr))
        return _PrintFmt(segments)

    def signed_slice(self) -> _SignedSlice:
        names = (
            self.fresh("sd"),
            self.fresh("sn"),
            self.fresh("sq"),
            self.fresh("sr"),
        )
        divisor = self.rng.randrange(2, 10)
        return _SignedSlice(names, self.storable(1), self.storable(1), divisor)

    def fnptr_slice(self) -> _FnPtrSlice:
        helper = self.rng.choice(self.helpers)
        names = (self.fresh("fp"), self.fresh("fr"))
        left = self.masked(self.expr(1), 255)
        right = self.masked(self.expr(1), 255)
        return _FnPtrSlice(names, helper, left, right)

    def helper(self) -> _Helper:
        name = self.fresh("mix")
        self.push_scope()
        self.scopes[-1][0].extend(("p0", "p1"))
        body: list[_Stmt] = []
        for _ in range(self.rng.randrange(1, 4)):
            local = self.fresh("t")
            body.append(_DeclInt(local, self.storable(1)))
            self.scopes[-1][0].append(local)
        result = self.storable(1)
        self.pop_scope()
        return _Helper(name, body, result)

    def build_main(
        self, hole: Optional[tuple[str, int]] = None
    ) -> tuple[list[_Stmt], _Expr]:
        rng = self.rng
        self.push_scope()
        statements: list[_Stmt] = []
        protected: frozenset[str] = frozenset()
        if hole is not None:
            # The symbolic input: declared first so initializer substitution
            # is unambiguous, readable everywhere, never written (protected
            # like a loop variable) so the input range actually flows.
            hole_name, hole_default = hole
            statements.append(_DeclInt(hole_name, _Lit(hole_default)))
            self.scopes[-1][0].append(hole_name)
            protected = frozenset((hole_name,))
        for _ in range(rng.randrange(2, 4)):
            name = self.fresh("v")
            statements.append(_DeclInt(name, _Lit(rng.randrange(DOMAIN // 4))))
            self.scopes[-1][0].append(name)
        budget = rng.randrange(
            self.config.min_statements,
            self.config.max_statements + 1,
        )
        statements.extend(
            self.statements(budget, depth=0, in_loop=False, protected=protected)
        )
        statements.append(self.output_statement())
        result = _Bin("%", self.storable(), _Lit(100), 100)
        self.pop_scope()
        return statements, result


def _next_pow2(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


#: Helper definition required by the wrong-arg-count template; appended to
#: the program only when that template is planted.
_INJ_SUPPORT_FUNCTIONS = {
    "wrong-arg-count": (
        "int inj_pick(int a, int b) {",
        "    return a;",
        "}",
    ),
    "fnptr-wrong-type-call": (
        "int inj_lone(int a) {",
        "    return a + 1;",
        "}",
    ),
}


def generate_case(
    seed: int,
    index: int,
    *,
    config: GeneratorConfig = GeneratorConfig(),
    inject: Optional[str] = None,
) -> FuzzCase:
    """Generate one labeled program.

    ``inject`` is ``None`` (clean), a check-family name (a random template
    of that family), a template name, or ``"mixed"`` (random: ~40% clean,
    else a random template).  The same ``(seed, index, config, inject)``
    always yields the same case.
    """
    rng = derive_rng(seed, "fuzz", "case", index)
    builder = _Builder(rng, config)
    for _ in range(rng.randrange(0, config.max_helpers + 1)):
        builder.helpers.append(builder.helper())
    hole: Optional[tuple[str, int]] = None
    hole_name: Optional[str] = None
    hole_range: Optional[tuple[int, int]] = None
    hole_default: Optional[int] = None
    if config.symbolic_hole is not None:
        hi = max(0, min(config.symbolic_hole, DOMAIN - 1))
        hole_name = "sym0"
        hole_range = (0, hi)
        hole_default = rng.randrange(hi + 1)
        hole = (hole_name, hole_default)
    main_statements, result_expr = builder.build_main(hole)

    template: Optional[InjectionTemplate] = None
    mode = inject
    sabotage = config.sabotage
    if sabotage == "mislabel" and mode in (None, "none"):
        mode = "mixed"
    if mode == "mixed":
        if sabotage != "mislabel" and rng.random() < 0.4:
            template = None
        else:
            template = rng.choice(INJECTION_TEMPLATES)
    elif mode not in (None, "none"):
        candidates = _templates_in_family(mode)
        if candidates:
            template = rng.choice(candidates)
        else:
            template = template_for(mode)  # raises KeyError for unknown names

    # Simulate the clean program (the injected lines are not part of the
    # simulation: a strict run never gets past the defect).
    env = _Env()
    for statement in main_statements:
        statement.execute(env)
    exit_value = result_expr.eval(env)
    if exit_value >= 256:  # pragma: no cover - result is % 100 by construction
        raise GeneratorInvariantError("exit value escaped the exit-code range")

    lines: list[str] = []
    for helper in builder.helpers:
        lines.extend(helper.render())
        lines.append("")
    if template is not None and template.name in _INJ_SUPPORT_FUNCTIONS:
        lines.extend(_INJ_SUPPORT_FUNCTIONS[template.name])
        lines.append("")
    lines.append("int main(void) {")
    body_lines: list[str] = []
    for statement in main_statements:
        body_lines.extend(statement.render(1))
    if template is not None:
        slot_ends = [0]
        offset = 0
        for statement in main_statements:
            offset += len(statement.render(1))
            slot_ends.append(offset)
        insert_at = slot_ends[rng.randrange(len(slot_ends))]
        injected_lines = [
            _pad(1) + line for line in template.instantiate(str(index % 1000))
        ]
        body_lines[insert_at:insert_at] = injected_lines
    lines.extend(body_lines)
    lines.extend(_Return(result_expr).render(1))
    lines.append("}")
    source = "\n".join(lines) + "\n"

    predicted_stdout: Optional[str] = "".join(env.output)
    predicted_exit: Optional[int] = exit_value
    injected_name = template.name if template is not None else None
    family = template.family if template is not None else None
    expected = template.expected_kinds if template is not None else ()
    if template is not None:
        predicted_stdout = None
        predicted_exit = None
    if sabotage == "mislabel" and template is not None:
        # The defect is in the program, but the label says "clean": the
        # ground-truth oracle must fail on this case.
        injected_name = None
        family = None
        expected = ()
        predicted_stdout = ""
        predicted_exit = 0
    elif sabotage == "wrong-stdout" and template is None:
        predicted_stdout = (predicted_stdout or "") + "sabotaged\n"
    return FuzzCase(
        name=f"fuzz-{seed}-{index}",
        source=source,
        seed=seed,
        index=index,
        config=config,
        injected=injected_name,
        family=family,
        expected_kinds=tuple(expected),
        predicted_stdout=predicted_stdout,
        predicted_exit=predicted_exit,
        hole_name=hole_name,
        hole_range=hole_range,
        hole_default=hole_default,
    )


def generate_cases(
    seed: int,
    count: int,
    *,
    config: GeneratorConfig = GeneratorConfig(),
    inject: Optional[str] = "mixed",
    start_index: int = 0,
) -> list[FuzzCase]:
    """Generate ``count`` cases; case ``i`` depends only on ``(seed, i)``."""
    return [
        generate_case(seed, index, config=config, inject=inject)
        for index in range(start_index, start_index + count)
    ]


def regenerate(case_dict: dict[str, Any]) -> FuzzCase:
    """Rebuild a case from a corpus entry's ``(seed, index, config)`` triple."""
    config = GeneratorConfig.from_dict(case_dict.get("config", {}))
    inject = case_dict.get("inject_mode", "mixed")
    return generate_case(
        case_dict["seed"],
        case_dict["index"],
        config=config,
        inject=inject,
    )


__all__ = [
    "DOMAIN",
    "FuzzCase",
    "GeneratorConfig",
    "GeneratorInvariantError",
    "GRADUATED",
    "INJECTION_TEMPLATES",
    "InjectionTemplate",
    "UNGENERATED",
    "UNGENERATED_CATEGORIES",
    "generate_case",
    "generate_cases",
    "injection_families",
    "regenerate",
    "template_for",
]
