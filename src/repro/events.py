"""Execution-event instrumentation: the semantics engine as an event source.

The paper's central claim is that one executable semantics can subsume many
special-purpose analyzers.  This module is the structural expression of that
claim in our codebase: the dynamic semantics emits a typed stream of
**execution events** — memory traffic, sequence points, lvalue conversions,
arithmetic overflow checks, calls/returns, branches, interleave choices, and
(crucially) *fired undefinedness checks* — and any number of :class:`Probe`
subscribers observe one shared execution.  Runtime-verification systems scale
the same way (cf. detectEr's single event stream with cheap subscription):
one run, many observers, no per-observer interpretation cost.

Three pieces live here:

* the **event vocabulary** (:class:`Event` subclasses) and the
  :class:`Probe` / :class:`ProbeSet` subscriber machinery;
* the **undefinedness funnel** (:func:`report_undefined`): every
  option-gated check in the semantics reports through it.  In normal (strict)
  runs it raises — execution gets stuck exactly as before.  In *observed*
  runs (a :class:`UBRecorder` is active) it records a :class:`UBEvent` and
  returns, and the call site falls through to the same fallback the check's
  ``check_* = False`` ablation uses.  That is what lets one execution serve
  tools with different detection profiles: each probe decides which fired
  checks *its* model would have reported, while the trajectory is the one
  every profile shares;
* :class:`TraceRecorderProbe` / :class:`ExecutionTrace`: a probe that turns
  a run into a replayable JSON trace for post-hoc querying.

Checks that are **not** option-gated (calling an undeclared function,
``free()`` of a non-heap pointer, dereferencing an indeterminate pointer...)
are *terminal*: every detection profile reports them, so the run stops there
and the terminal error is delivered to all probes as a final
``family=None`` :class:`UBEvent`.

Performance contract: when no probe is attached, no event objects are
constructed — every emission site is guarded by an ``events is not None``
test, and the lowered fast path is *compile-time specialized*: the
uninstrumented lowered IR contains no emission code at all (see
``benchmarks/test_bench_interp_speed.py``, which gates the null-probe
overhead at 5% on the arith-loop benchmark).
"""

from __future__ import annotations

import contextvars
import json
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

from repro.errors import UBKind, UndefinedBehaviorError

# ---------------------------------------------------------------------------
# Check families
# ---------------------------------------------------------------------------

#: Families of option-gated checks; each maps to a ``check_<family>`` flag on
#: :class:`repro.core.config.CheckerOptions`.  A :class:`UBEvent` whose
#: ``family`` is ``None`` came from an ungated (terminal) check.
FAMILY_ARITHMETIC = "arithmetic"
FAMILY_MEMORY = "memory"
FAMILY_SEQUENCING = "sequencing"
FAMILY_CONST = "const"
FAMILY_PROVENANCE = "pointer_provenance"
FAMILY_UNINITIALIZED = "uninitialized"
FAMILY_EFFECTIVE_TYPES = "effective_types"
FAMILY_FUNCTIONS = "functions"

FAMILIES = (FAMILY_ARITHMETIC, FAMILY_MEMORY, FAMILY_SEQUENCING, FAMILY_CONST,
            FAMILY_PROVENANCE, FAMILY_UNINITIALIZED, FAMILY_EFFECTIVE_TYPES,
            FAMILY_FUNCTIONS)


# ---------------------------------------------------------------------------
# Event vocabulary
# ---------------------------------------------------------------------------

class Event:
    """Base class of all execution events.

    Events are plain slotted objects (not dataclasses) because the observed
    hot path constructs one per memory access; ``to_dict`` renders a
    JSON-ready view and ``key`` a hashable tuple used by the golden-trace
    equality tests.
    """

    __slots__ = ()
    kind = "event"

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"event": self.kind}
        for name in self.__slots__:
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, tuple):
                value = list(value)  # JSON has no tuples; keep round-trips exact
            data[name] = value if isinstance(value, (int, float, bool, str, list, dict)) \
                else str(value)
        return data

    def key(self) -> tuple:
        """A hashable identity used to compare event streams across engines."""
        return (self.kind,) + tuple(
            str(getattr(self, name)) for name in self.__slots__)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{n}={getattr(self, n)!r}" for n in self.__slots__)
        return f"<{type(self).__name__} {fields}>"


class AllocEvent(Event):
    """An object came into existence (``mem[base] = obj(len, bytes)``)."""

    __slots__ = ("base", "size", "storage", "name")
    kind = "alloc"

    def __init__(self, base: int, size: int, storage: str, name: str) -> None:
        self.base = base
        self.size = size
        self.storage = storage
        self.name = name


class FreeEvent(Event):
    """A heap object's lifetime was ended by ``free()``."""

    __slots__ = ("base", "line")
    kind = "free"

    def __init__(self, base: int, line: Optional[int]) -> None:
        self.base = base
        self.line = line


class ReadEvent(Event):
    """Bytes were read through a pointer (the paper's ``readByte``)."""

    __slots__ = ("base", "offset", "size", "line")
    kind = "read"

    def __init__(self, base: Optional[int], offset: int, size: int,
                 line: Optional[int]) -> None:
        self.base = base
        self.offset = offset
        self.size = size
        self.line = line


class WriteEvent(Event):
    """Bytes were written through a pointer (the paper's ``writeByte``)."""

    __slots__ = ("base", "offset", "size", "line")
    kind = "write"

    def __init__(self, base: Optional[int], offset: int, size: int,
                 line: Optional[int]) -> None:
        self.base = base
        self.offset = offset
        self.size = size
        self.line = line


class SequencePointEvent(Event):
    """A sequence point: the ``locsWrittenTo`` cell was emptied (§4.2.1)."""

    __slots__ = ()
    kind = "seq-point"


class LvalueConvertEvent(Event):
    """Lvalue conversion: an lvalue was read for its value (§6.3.2.1:2)."""

    __slots__ = ("ctype", "line")
    kind = "lvalue-convert"

    def __init__(self, ctype: object, line: Optional[int]) -> None:
        self.ctype = ctype
        self.line = line


class ArithCheckEvent(Event):
    """An integer arithmetic result passed through the overflow check
    (§6.5:5) — the integer conversion/overflow side condition of §4.1.1."""

    __slots__ = ("value", "ctype", "line")
    kind = "arith-check"

    def __init__(self, value: int, ctype: object, line: Optional[int]) -> None:
        self.value = value
        self.ctype = ctype
        self.line = line


class CallEvent(Event):
    """A function call (user-defined or builtin) is about to execute."""

    __slots__ = ("function", "line")
    kind = "call"

    def __init__(self, function: str, line: Optional[int]) -> None:
        self.function = function
        self.line = line


class ReturnEvent(Event):
    """A function call completed normally."""

    __slots__ = ("function", "line")
    kind = "return"

    def __init__(self, function: str, line: Optional[int]) -> None:
        self.function = function
        self.line = line


class BranchEvent(Event):
    """A two-way control decision (``if``/loop condition, ``?:``, ``&&``/``||``)."""

    __slots__ = ("taken", "line")
    kind = "branch"

    def __init__(self, taken: bool, line: Optional[int]) -> None:
        self.taken = taken
        self.line = line


class ChoiceEvent(Event):
    """An interleaving point: the strategy ordered unsequenced siblings."""

    __slots__ = ("count", "order", "line")
    kind = "choice"

    def __init__(self, count: int, order: tuple, line: Optional[int]) -> None:
        self.count = count
        self.order = order
        self.line = line


class UBEvent(Event):
    """An undefinedness check fired.

    ``family`` names the ``check_*`` option gating the check, or ``None``
    for a terminal (ungated) check every profile reports.  ``check``
    distinguishes sites inside a family that tools model differently
    (``"access"`` and ``"alignment"`` for the memory model); ``data``
    carries the site facts a custom model needs to re-judge the check
    (storage kind, object size, offset, ...).
    """

    __slots__ = ("ub_kind", "message", "line", "function", "family", "check",
                 "data")
    kind = "ub"

    def __init__(self, ub_kind: UBKind, message: str, line: Optional[int],
                 function: Optional[str], family: Optional[str],
                 check: Optional[str] = None,
                 data: Optional[dict[str, Any]] = None) -> None:
        self.ub_kind = ub_kind
        self.message = message
        self.line = line
        self.function = function
        self.family = family
        self.check = check
        self.data = data

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"event": self.kind, "kind": self.ub_kind.name,
                                "code": self.ub_kind.error_code,
                                "message": self.message}
        for name in ("line", "function", "family", "check", "data"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data

    def to_error(self) -> UndefinedBehaviorError:
        return UndefinedBehaviorError(self.ub_kind, self.message,
                                      function=self.function, line=self.line)


class RunEnd:
    """How the observed execution terminated; passed to ``Probe.finish``."""

    __slots__ = ("status", "exit_code", "detail", "error")

    def __init__(self, status: str, *, exit_code: Optional[int] = None,
                 detail: str = "",
                 error: Optional[UndefinedBehaviorError] = None) -> None:
        #: "defined" | "undefined" (terminal check) | "inconclusive"
        self.status = status
        self.exit_code = exit_code
        self.detail = detail
        self.error = error


# ---------------------------------------------------------------------------
# Probes
# ---------------------------------------------------------------------------

class Probe:
    """Subscriber protocol for execution events.

    A probe observes one run: override :meth:`on_event`; optionally override
    :meth:`finish` to learn how the run terminated.  Set
    ``continue_past_ub = True`` to request *observed* execution — gated
    undefinedness checks then record a :class:`UBEvent` and continue with
    the check-disabled semantics instead of stopping the run, which is what
    lets several detection profiles share one execution.  Passive probes
    (tracing, profiling, coverage) leave it ``False`` so the engine's
    verdict — and its report — are byte-identical to an unprobed run.
    """

    name = "probe"
    #: Whether this probe needs execution to continue past gated checks.
    continue_past_ub = False
    #: Event kinds this probe wants (a tuple of ``Event.kind`` strings), or
    #: None for everything.  Subscription is pay-per-use: kinds outside the
    #: set are never delivered to :meth:`on_event`, and a probe subscribing
    #: to *no* kinds (``subscribes = ()``) lets the checker keep the
    #: uninstrumented engine — only :meth:`finish` is called.
    subscribes: Optional[tuple[str, ...]] = None

    def on_event(self, event: Event) -> None:
        """Called for every event, in execution order."""

    def finish(self, end: RunEnd) -> None:
        """Called once when the run terminates."""


class ProbeSet:
    """A fan-out of events to an ordered set of probes.

    The engine holds at most one ProbeSet (``interpreter.events``); emission
    is a plain loop, so the per-event cost is one attribute test when no
    probes are attached and one call per probe otherwise.  A probe that
    raises aborts the run — probes are trusted in-process observers, not
    sandboxed plugins.
    """

    __slots__ = ("probes", "_broadcast", "_by_kind")

    def __init__(self, probes: Sequence[Probe]) -> None:
        self.probes = list(probes)
        # Pre-split the fan-out by subscription so emit() stays a plain
        # loop: probes subscribing to everything, then a kind-keyed map of
        # selective subscribers.
        self._broadcast = [probe for probe in self.probes
                           if getattr(probe, "subscribes", None) is None]
        self._by_kind: dict[str, list[Probe]] = {}
        for probe in self.probes:
            subscribes = getattr(probe, "subscribes", None)
            if subscribes is not None:
                for kind in subscribes:
                    self._by_kind.setdefault(kind, []).append(probe)

    def __len__(self) -> int:
        return len(self.probes)

    def __iter__(self) -> Iterator[Probe]:
        return iter(self.probes)

    def subscribed_kinds(self) -> Optional[frozenset]:
        """The union of the probes' subscriptions; None means everything."""
        if self._broadcast:
            return None
        return frozenset(self._by_kind)

    def emit(self, event: Event) -> None:
        for probe in self._broadcast:
            probe.on_event(event)
        selective = self._by_kind.get(event.kind)
        if selective is not None:
            for probe in selective:
                probe.on_event(event)

    def finish(self, end: RunEnd) -> None:
        for probe in self.probes:
            # Probes are duck-typed: anything with on_event qualifies, and
            # finish is optional.
            finish = getattr(probe, "finish", None)
            if finish is not None:
                finish(end)

    @property
    def wants_ub_continuation(self) -> bool:
        return any(getattr(probe, "continue_past_ub", False)
                   for probe in self.probes)


# ---------------------------------------------------------------------------
# The undefinedness funnel (strict raise vs observed record-and-continue)
# ---------------------------------------------------------------------------

_UB_SINK: contextvars.ContextVar[Optional["UBRecorder"]] = \
    contextvars.ContextVar("repro_ub_sink", default=None)


def report_undefined(error: UndefinedBehaviorError, family: Optional[str], *,
                     check: Optional[str] = None,
                     data: Optional[dict[str, Any]] = None) -> None:
    """Report a fired undefinedness check.

    Strict mode (no active recorder): raises ``error`` — identical to the
    seed semantics.  Observed mode: records a :class:`UBEvent` and returns,
    and the caller **must** fall through to the behavior the corresponding
    ``check_* = False`` ablation exhibits (that fallthrough is what keeps
    the shared trajectory equal to every individual profile's trajectory).
    Ungated checks pass ``family=None`` and always raise: they are terminal
    for every detection profile.
    """
    sink = _UB_SINK.get()
    if sink is not None and family is not None:
        sink.record(error, family, check, data)
        return
    raise error


@contextmanager
def observed_execution(recorder: Optional["UBRecorder"]):
    """Activate ``recorder`` as the UB sink for the dynamic extent of a run."""
    if recorder is None:
        yield
        return
    token = _UB_SINK.set(recorder)
    try:
        yield
    finally:
        _UB_SINK.reset(token)


class UBRecorder:
    """The observed-mode sink: annotates fired checks and feeds the probes.

    ``first_error`` keeps the first recorded error; because a check only
    runs when its ``check_*`` flag is enabled, the first recorded event is
    exactly where a strict run of the same options would have stopped, so
    the engine's own verdict is preserved under observation.
    """

    __slots__ = ("interp", "events", "first_error")

    def __init__(self, interp, events: ProbeSet) -> None:
        self.interp = interp
        self.events = events
        self.first_error: Optional[UndefinedBehaviorError] = None

    def record(self, error: UndefinedBehaviorError, family: Optional[str],
               check: Optional[str], data: Optional[dict[str, Any]]) -> None:
        interp = self.interp
        if error.function is None:
            error.function = interp.current_function
        if error.line is None:
            error.line = interp.current_line
        if self.first_error is None:
            self.first_error = error
        self.events.emit(UBEvent(error.kind, error.message, error.line,
                                 error.function, family, check, data))


# ---------------------------------------------------------------------------
# Trace recording (the post-hoc querying workload)
# ---------------------------------------------------------------------------

class ExecutionTrace:
    """A replayable, queryable record of one execution's event stream."""

    def __init__(self, events: Optional[list[dict[str, Any]]] = None, *,
                 end: Optional[dict[str, Any]] = None,
                 filename: str = "<input>") -> None:
        self.events = events if events is not None else []
        self.end = end
        self.filename = filename

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.events)

    # -- querying -----------------------------------------------------------
    def select(self, kind: Optional[str] = None, **fields: Any) -> list[dict[str, Any]]:
        """Events matching a kind and/or exact field values."""
        out = []
        for event in self.events:
            if kind is not None and event.get("event") != kind:
                continue
            if any(event.get(name) != value for name, value in fields.items()):
                continue
            out.append(event)
        return out

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.get("event") == kind)

    def summary(self) -> dict[str, int]:
        """Event counts per kind — the cheapest post-hoc query."""
        counts: dict[str, int] = {}
        for event in self.events:
            name = event.get("event", "?")
            counts[name] = counts.get(name, 0) + 1
        return counts

    def lines_touched(self) -> list[int]:
        """Source lines that produced at least one event, sorted."""
        return sorted({event["line"] for event in self.events
                       if isinstance(event.get("line"), int) and event["line"]})

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"filename": self.filename, "events": self.events}
        if self.end is not None:
            data["end"] = self.end
        return data

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionTrace":
        data = json.loads(text)
        return cls(list(data.get("events", [])), end=data.get("end"),
                   filename=data.get("filename", "<input>"))


class TraceRecorderProbe(Probe):
    """Record every event of a run as a replayable JSON trace.

    Passive by default (``continue_past_ub = False``): the engine's verdict
    is untouched and the trace simply ends where the run ends.  Construct
    with ``continue_past_ub=True`` to trace *through* gated undefinedness
    (the trace then follows the all-checks-disabled trajectory, with every
    fired check recorded as a ``ub`` event).
    """

    name = "trace-recorder"

    def __init__(self, *, filename: str = "<input>",
                 continue_past_ub: bool = False) -> None:
        self.filename = filename
        self.continue_past_ub = continue_past_ub
        self._events: list[dict[str, Any]] = []
        self._end: Optional[dict[str, Any]] = None

    def on_event(self, event: Event) -> None:
        self._events.append(event.to_dict())

    def finish(self, end: RunEnd) -> None:
        self._end = {"status": end.status}
        if end.exit_code is not None:
            self._end["exit_code"] = end.exit_code
        if end.detail:
            self._end["detail"] = end.detail
        if end.error is not None:
            self._end["error"] = {"kind": end.error.kind.name,
                                  "message": end.error.message,
                                  "line": end.error.line}

    @property
    def trace(self) -> ExecutionTrace:
        return ExecutionTrace(self._events, end=self._end, filename=self.filename)


__all__ = [
    "AllocEvent", "ArithCheckEvent", "BranchEvent", "CallEvent", "ChoiceEvent",
    "Event", "ExecutionTrace", "FreeEvent", "LvalueConvertEvent", "Probe",
    "ProbeSet", "ReadEvent", "ReturnEvent", "RunEnd", "SequencePointEvent",
    "TraceRecorderProbe", "UBEvent", "UBRecorder", "WriteEvent",
    "FAMILIES", "FAMILY_ARITHMETIC", "FAMILY_CONST", "FAMILY_EFFECTIVE_TYPES",
    "FAMILY_FUNCTIONS", "FAMILY_MEMORY", "FAMILY_PROVENANCE",
    "FAMILY_SEQUENCING", "FAMILY_UNINITIALIZED",
    "observed_execution", "report_undefined",
]
