"""Deterministic seed derivation shared by every seeded subsystem.

Both user-facing ``--seed`` knobs — ``kcc-check search --seed`` (the random
search frontier) and ``kcc-check fuzz --seed`` (the program generator and
campaign driver) — derive their PRNG streams through this module, so one
master seed expands into an arbitrary tree of *independent, reproducible*
streams:

* the same ``(master, labels...)`` pair always yields the same stream, on
  every platform and Python version (the derivation is SHA-256, not
  ``hash()``);
* distinct label paths yield statistically independent streams, so a
  campaign can hand shard ``i`` the stream ``derive_rng(seed, "case", i)``
  and the result is byte-identical whether the shards run serially, or
  round-robin over ``jobs=N`` worker processes, or in any other partition.

That per-*item* (not per-*worker*) derivation is the whole trick behind the
``jobs=N``-equals-serial guarantees: a work item's randomness depends only
on its identity, never on which worker popped it.
"""

from __future__ import annotations

import hashlib
import random

#: Streams are derived as 64-bit integers; plenty for seeding ``random.Random``.
_SEED_BITS = 64


def derive_seed(master: int, *labels: object) -> int:
    """A 64-bit seed deterministically derived from ``master`` and a label path.

    Labels may be strings or integers (anything with a stable ``repr`` of
    those two types); the derivation is collision-resistant in the label
    path, so ``derive_seed(s, "case", 12)`` and ``derive_seed(s, "case", 1, 2)``
    are unrelated streams.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(master)).encode("ascii"))
    for label in labels:
        if not isinstance(label, (str, int)):
            raise TypeError(
                f"seed labels must be str or int, got {type(label).__name__}"
            )
        # Length-prefix each label so ("ab", "c") != ("a", "bc").
        text = f"{type(label).__name__}:{label}"
        hasher.update(f"\x1f{len(text)}\x1f".encode("ascii"))
        hasher.update(text.encode("utf-8"))
    return int.from_bytes(hasher.digest()[: _SEED_BITS // 8], "big")


def derive_rng(master: int, *labels: object) -> random.Random:
    """A fresh :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(master, *labels))


def spawn_seeds(master: int, label: str, count: int) -> list[int]:
    """``count`` independent child seeds under one label (one per work item)."""
    return [derive_seed(master, label, index) for index in range(count)]
